//! Offline, dependency-free stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! vendored into the workspace because the build environment has no network
//! access.
//!
//! It supports the subset the `svgic` bench targets use — `criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, `sample_size` / `warm_up_time` / `measurement_time`,
//! [`BenchmarkId`] and [`black_box`] — and reports mean/median wall-clock time
//! per iteration on stdout. It performs real measurements (warm-up, then timed
//! batches), just without criterion's statistical machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// An identifier for one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `"{name}/{parameter}"`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording one wall-clock sample per call,
    /// until both the configured sample count and measurement budget are spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call.
        black_box(routine());
        let budget_start = Instant::now();
        for i in 0..self.sample_size.max(1) {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if i >= 2 && budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let median = sorted[sorted.len() / 2];
    println!(
        "{label:<48} mean {mean:>12?}  median {median:>12?}  ({} samples)",
        sorted.len()
    );
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget (accepted for API compatibility; the stub warms
    /// up with a single untimed call instead).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<ID: Display, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<ID: Display, I: ?Sized, F>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher.samples);
        self
    }

    /// Ends the group (prints a trailing newline, mirroring criterion's
    /// per-group output separation).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("--- bench group: {name} ---");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        };
        f(&mut bencher);
        report(name, &bencher.samples);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        let mut calls = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert!(calls >= 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("AVG", 30).to_string(), "AVG/30");
    }
}
