//! Offline, dependency-free stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored into the
//! workspace because the build environment has no network access.
//!
//! Supported subset (exactly what the workspace's property tests use):
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn name(arg in range, ...) { ... } }`
//!   where every strategy is a primitive integer/float [`Range`];
//! * [`ProptestConfig::with_cases`];
//! * `prop_assume!`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`.
//!
//! Cases are generated from a deterministic SplitMix64 stream seeded from the
//! test name, so failures are reproducible run-to-run. There is no shrinking:
//! a failing case reports its arguments and panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is skipped, not counted as a failure.
    Reject(String),
    /// `prop_assert!`-family failure — the whole test fails.
    Fail(String),
}

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; property tests derive the seed from the test name.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator. Only primitive ranges are supported.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Hashes a test name into a seed (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Declares property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while passed < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(message)) => {
                            panic!(
                                "property `{}` failed: {}\n  inputs: {}",
                                stringify!($name),
                                message,
                                vec![$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", "),
                            );
                        }
                    }
                }
                assert!(
                    passed >= config.cases,
                    "property `{}` ran only {}/{} cases before exhausting {} attempts \
                     (prop_assume! rejects too many inputs — widen the strategies)",
                    stringify!($name),
                    passed,
                    config.cases,
                    attempts,
                );
            }
        )*
    };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                stringify!($cond).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(a in 2usize..9, b in 0u64..100) {
            prop_assume!(a != 5);
            prop_assert!((2..9).contains(&a));
            prop_assert!(b < 100);
            prop_assert_eq!(a + 1, a + 1);
            prop_assert_ne!(a, 99);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        let range = 0usize..1000;
        for _ in 0..32 {
            assert_eq!(range.sample(&mut a), range.sample(&mut b));
        }
    }
}
