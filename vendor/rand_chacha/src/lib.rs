//! Offline, dependency-free stand-in for the
//! [`rand_chacha`](https://crates.io/crates/rand_chacha) crate, vendored into
//! the workspace because the build environment has no network access.
//!
//! [`ChaCha8Rng`] here is a genuine (if compact) implementation of the
//! ChaCha stream cipher with 8 rounds (4 double-rounds), exposed through the vendored
//! `rand` traits. It is deterministic per seed; it is not guaranteed to be
//! bit-compatible with upstream `rand_chacha` seed expansion, which nothing in
//! this workspace relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A ChaCha PRNG with 8 rounds (4 column/diagonal double-rounds).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds total: 4 column rounds + 4 diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for ((slot, &mixed), &initial) in self
            .buffer
            .iter_mut()
            .zip(working.iter())
            .zip(self.state.iter())
        {
            *slot = mixed.wrapping_add(initial);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64.
        let mut sm = seed;
        let mut split = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..4 {
            let word = split();
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // counter = 0, nonce = 0.
        let mut rng = ChaCha8Rng {
            state,
            buffer: [0u32; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.index + 2 > 16 {
            self.refill();
        }
        let lo = self.buffer[self.index] as u64;
        let hi = self.buffer[self.index + 1] as u64;
        self.index += 2;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(0xB1A5);
        let mut b = ChaCha8Rng::seed_from_u64(0xB1A5);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        let v = rng.gen_range(0usize..10);
        assert!(v < 10);
    }
}
