//! Offline, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, vendored into the workspace because the build environment has no
//! network access to a crates registry.
//!
//! Only the API subset actually used by the `svgic` workspace is provided:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`]. The generators are
//! deterministic, high-quality xorshift-family PRNGs (`xoshiro256**` seeded
//! through SplitMix64) — they are *not* bit-compatible with upstream `rand`,
//! which is fine: nothing in this workspace depends on upstream streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (top half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A PRNG that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the "standard" distribution
/// (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Widen before subtracting: the span of an i32/i64 range can
                // exceed the signed type's own width.
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = rng.next_u64() % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i64, i32);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: `xoshiro256**` seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    pub(crate) fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::RngCore;

    /// Extension trait adding in-place shuffling to slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
