//! Fig. 9 bench target: (a) time-boxed exact MIP strategies vs AVG-D and
//! (b) the effect of the advanced LP transformation / focal sampling, plus a
//! Criterion comparison of the LP backends themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_algorithms::factors::{solve_relaxation_with, LpBackend};
use svgic_bench::{bench_scale, print_report};
use svgic_datasets::{DatasetProfile, InstanceSpec};
use svgic_experiments::fig_ablation;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    print_report(&fig_ablation::fig9a(scale));
    print_report(&fig_ablation::fig9b(scale));

    let mut rng = StdRng::seed_from_u64(9);
    let inst = InstanceSpec {
        num_users: 12,
        num_items: 20,
        num_slots: 3,
        ..InstanceSpec::small(DatasetProfile::TimikLike)
    }
    .build(&mut rng);
    let mut group = c.benchmark_group("fig9_lp_backends");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("LP_SIMP (exact simplex)", |b| {
        b.iter(|| solve_relaxation_with(&inst, LpBackend::ExactSimplex))
    });
    group.bench_function("LP_SVGIC (no transformation)", |b| {
        b.iter(|| solve_relaxation_with(&inst, LpBackend::FullLpSvgic))
    });
    group.bench_function("structured coordinate ascent", |b| {
        b.iter(|| solve_relaxation_with(&inst, LpBackend::Structured))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
