//! Workload-scenario bench: drives every named `svgic-workload` scenario
//! through the serving engine and compares them — both wall-clock (criterion
//! timing of the full drive) and the engine-economics table each traffic
//! shape produces (solves per event, cache hit rate, coalesce rate).
//!
//! `SVGIC_BENCH_SMOKE=1` (set in CI) shrinks every scenario to smoke size;
//! the default runs the scenarios as shipped.

use criterion::{criterion_group, criterion_main, Criterion};
use svgic_bench::bench_scale;
use svgic_experiments::ExperimentScale;
use svgic_workload::prelude::*;

const SEED: u64 = 0x10AD_6E4E;

fn scenarios() -> Vec<Scenario> {
    Scenario::all()
        .into_iter()
        .map(|scenario| match bench_scale() {
            ExperimentScale::Smoke => {
                let mut scenario = scenario.smoke();
                scenario.ticks = scenario.ticks.min(4);
                scenario
            }
            _ => scenario,
        })
        .collect()
}

fn workload_scenarios(c: &mut Criterion) {
    // Generation is cheap; do it once so criterion times only the drive.
    let traces: Vec<(Scenario, Trace)> = scenarios()
        .into_iter()
        .map(|scenario| {
            let trace = generate(&scenario, SEED);
            (scenario, trace)
        })
        .collect();

    println!(
        "{:<14} {:>8} {:>9} {:>8} {:>11} {:>10} {:>10}",
        "scenario", "sessions", "events", "solves", "solves/evt", "cache-hit", "coalesced"
    );
    let driver = LoadDriver::new(DriverConfig::default());
    for (scenario, trace) in &traces {
        let outcome = driver.run(trace);
        let stats = &outcome.engine;
        println!(
            "{:<14} {:>8} {:>9} {:>8} {:>11.3} {:>9.1}% {:>9.1}%",
            scenario.name,
            outcome.sessions,
            stats.events_submitted,
            stats.solves(),
            if stats.events_submitted == 0 {
                0.0
            } else {
                stats.solves() as f64 / stats.events_submitted as f64
            },
            100.0 * stats.cache_hit_rate(),
            100.0 * stats.coalesce_rate(),
        );
    }
    println!();

    let mut group = c.benchmark_group("workload_scenarios");
    group.sample_size(10);
    for (scenario, trace) in &traces {
        group.bench_with_input(scenario.name.as_str(), trace, |b, trace| {
            b.iter(|| {
                let outcome = driver.run(trace);
                assert!(outcome.requests > 0);
                outcome.config_digest
            })
        });
    }
    group.finish();
}

criterion_group!(benches, workload_scenarios);
criterion_main!(benches);
