//! What observability costs: the same churn-heavy trace served with
//! tracing off (the default) and on, plus the per-call price of a span
//! site in both states.
//!
//! Four gates run **before** any timing:
//!
//! 1. **read-side contract** — the traced run's configuration digest and
//!    solve count equal the untraced run's (tracing observes the engine,
//!    it never steers it);
//! 2. **disabled overhead < 1%** — the measured cost of a disabled span
//!    site (one relaxed atomic load), multiplied by the number of spans
//!    the *enabled* run recorded, must project to less than 1% of the
//!    untraced run's wall time. That is the price every production engine
//!    pays for having the instrumentation compiled in;
//! 3. **sampler overhead < 2%** — the telemetry ring samples one stats
//!    snapshot per flush tick (on by default). The measured cost of one
//!    snapshot, multiplied by the number of samples the default run
//!    pushed, must project to less than 2% of a sampling-disabled run's
//!    wall time — and sampling must not change the digest or solve count
//!    either;
//! 4. **profiler overhead < 2%** — the solve ledger folds one record per
//!    solve (on by default at capacity 128). The measured cost of one
//!    ledger fold, multiplied by the run's solve count, must project to
//!    less than 2% of a profiler-disabled run's wall time — and the
//!    profiled run's digest and solve count must equal the baseline's.
//!
//! Criterion then times the smallest units: one disabled `begin`/`finish`
//! pair vs. one enabled pair (clock read + ring insert).
//!
//! `SVGIC_BENCH_SMOKE=1` (set in CI) shrinks the scenario to smoke size.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use svgic_bench::bench_scale;
use svgic_engine::prelude::*;
use svgic_experiments::ExperimentScale;
use svgic_obs::{ObsConfig, Phase, Tracer};
use svgic_workload::prelude::*;
use svgic_workload::DriverConfig;

const SEED: u64 = 0x0B5E_0BED;

fn scenario() -> Scenario {
    let scenario = Scenario::churn_heavy();
    match bench_scale() {
        ExperimentScale::Smoke => {
            let mut scenario = scenario.smoke();
            scenario.ticks = 6;
            scenario
        }
        _ => scenario,
    }
}

/// Pinned engine shape so solve counters match between the runs. The
/// baseline runs with everything off (telemetry and profiler capacity 0),
/// so each gate below toggles exactly one read-side feature.
fn engine_config(
    obs: ObsConfig,
    telemetry_capacity: usize,
    profile_capacity: usize,
) -> EngineConfig {
    EngineConfig {
        workers: 2,
        shards: 2,
        auto_flush_pending: 0,
        obs,
        telemetry_capacity,
        profile_capacity,
        ..EngineConfig::default()
    }
}

fn driver(obs: ObsConfig) -> LoadDriver {
    LoadDriver::new(DriverConfig {
        engine: engine_config(obs, 0, 0),
        ..DriverConfig::default()
    })
}

/// Measures one `begin`/`finish` pair on `tracer`, averaged over `calls`.
fn span_site_seconds(tracer: &Tracer, calls: u32) -> f64 {
    // lint: allow(wall-clock, benchmark timing is the measurement itself)
    let started = Instant::now();
    for i in 0..calls {
        let span = tracer.begin();
        tracer.finish(span, Phase::Submit, u64::from(i), 0, 0);
    }
    started.elapsed().as_secs_f64() / f64::from(calls)
}

fn obs_overhead(c: &mut Criterion) {
    let trace = generate(&scenario(), SEED);

    // --- Run 1: tracing off (the production default) ---
    let off = driver(ObsConfig::disabled()).run(&trace);

    // --- Run 2: tracing on, same trace, spans kept for the projection ---
    let mut engine = Engine::new(engine_config(ObsConfig::enabled(), 0, 0));
    let on = driver(ObsConfig::disabled()).run_on(&mut engine, &trace);
    let spans_recorded = engine.tracer().recorded();

    // --- Gate 1: tracing never changes what is served ---
    assert_eq!(
        off.config_digest, on.config_digest,
        "tracing must not change the served configurations"
    );
    assert_eq!(
        off.engine.solves(),
        on.engine.solves(),
        "tracing must add zero solver work"
    );
    assert!(
        spans_recorded > 0,
        "the enabled run must actually record spans"
    );

    // --- Gate 2: the disabled path projects to < 1% of wall time ---
    let disabled_tracer = Tracer::new(ObsConfig::disabled());
    let per_call = span_site_seconds(&disabled_tracer, 1_000_000);
    let projected = per_call * spans_recorded as f64;
    let budget = off.wall_seconds * 0.01;
    println!("{:<22} {:>14} {:>14}", "run", "wall (s)", "spans");
    println!("{:<22} {:>14.4} {:>14}", "tracing off", off.wall_seconds, 0);
    println!(
        "{:<22} {:>14.4} {:>14}",
        "tracing on", on.wall_seconds, spans_recorded
    );
    println!(
        "disabled span site ≈ {:.2} ns/call; {} sites project to {:.3} µs \
         ({:.4}% of the untraced run)",
        per_call * 1e9,
        spans_recorded,
        projected * 1e6,
        100.0 * projected / off.wall_seconds.max(1e-12),
    );
    assert!(
        projected < budget,
        "disabled-path overhead projects to {projected:.6}s, over the 1% budget \
         ({budget:.6}s) for this run"
    );

    // --- Run 3: telemetry sampling at the default capacity, same trace ---
    let default_capacity = EngineConfig::default().telemetry_capacity;
    let mut sampled_engine = Engine::new(engine_config(ObsConfig::disabled(), default_capacity, 0));
    let sampled = driver(ObsConfig::disabled()).run_on(&mut sampled_engine, &trace);
    let samples = sampled_engine.telemetry();

    // --- Gate 3: sampling is read-side and projects to < 2% of wall time ---
    assert_eq!(
        off.config_digest, sampled.config_digest,
        "telemetry sampling must not change the served configurations"
    );
    assert_eq!(
        off.engine.solves(),
        sampled.engine.solves(),
        "telemetry sampling must add zero solver work"
    );
    assert!(
        !samples.is_empty(),
        "the sampled run must actually push telemetry samples"
    );
    assert!(
        samples.windows(2).all(|pair| pair[0].tick < pair[1].tick),
        "the ring's tick axis must be strictly increasing"
    );
    // One sample costs one stats snapshot (the ring push is a memcpy);
    // measure the snapshot on the engine the run just filled, so the
    // per-sample price reflects a realistically-populated session store.
    let per_sample = {
        let calls = 1_000u32;
        // lint: allow(wall-clock, benchmark timing is the measurement itself)
        let started = Instant::now();
        for _ in 0..calls {
            std::hint::black_box(sampled_engine.stats());
        }
        started.elapsed().as_secs_f64() / f64::from(calls)
    };
    let sampler_projected = per_sample * samples.len() as f64;
    let sampler_budget = off.wall_seconds * 0.02;
    println!(
        "telemetry sample ≈ {:.2} µs/snapshot; {} samples project to {:.3} µs \
         ({:.4}% of the sampling-off run)",
        per_sample * 1e6,
        samples.len(),
        sampler_projected * 1e6,
        100.0 * sampler_projected / off.wall_seconds.max(1e-12),
    );
    assert!(
        sampler_projected < sampler_budget,
        "telemetry sampling projects to {sampler_projected:.6}s, over the 2% budget \
         ({sampler_budget:.6}s) for this run"
    );

    // --- Run 4: the solve ledger at the default capacity, same trace ---
    let default_profile = EngineConfig::default().profile_capacity;
    let mut profiled_engine = Engine::new(engine_config(ObsConfig::disabled(), 0, default_profile));
    let profiled = driver(ObsConfig::disabled()).run_on(&mut profiled_engine, &trace);
    let ledger = profiled_engine.profile();

    // --- Gate 4: profiling is read-side and projects to < 2% of wall time ---
    assert_eq!(
        off.config_digest, profiled.config_digest,
        "the solve ledger must not change the served configurations"
    );
    assert_eq!(
        off.engine.solves(),
        profiled.engine.solves(),
        "the solve ledger must add zero solver work"
    );
    assert!(
        !ledger.entries.is_empty(),
        "the profiled run must actually attribute solves"
    );
    let attributed: u64 = ledger
        .entries
        .iter()
        .map(|entry| entry.warm_solves + entry.cold_solves)
        .sum();
    assert_eq!(
        attributed,
        profiled.engine.solves(),
        "every solve must land in the ledger"
    );
    // One solve costs one ledger fold; measure it on a ledger warmed to the
    // run's real template population so the BTreeMap depth is realistic.
    let per_record = {
        let mut warmed = svgic_engine::SolveLedger::new(default_profile);
        for entry in &ledger.entries {
            warmed.record(entry.template_fingerprint, 1, false, 1);
        }
        let calls = 1_000_000u32;
        // lint: allow(wall-clock, benchmark timing is the measurement itself)
        let started = Instant::now();
        for i in 0..calls {
            let fp = ledger.entries[i as usize % ledger.entries.len()].template_fingerprint;
            warmed.record(fp, u64::from(i), i % 2 == 0, 100);
        }
        std::hint::black_box(&warmed);
        started.elapsed().as_secs_f64() / f64::from(calls)
    };
    let profiler_projected = per_record * profiled.engine.solves() as f64;
    let profiler_budget = off.wall_seconds * 0.02;
    println!(
        "ledger fold ≈ {:.2} ns/solve; {} solves project to {:.3} µs \
         ({:.4}% of the profiler-off run)",
        per_record * 1e9,
        profiled.engine.solves(),
        profiler_projected * 1e6,
        100.0 * profiler_projected / off.wall_seconds.max(1e-12),
    );
    assert!(
        profiler_projected < profiler_budget,
        "ledger folding projects to {profiler_projected:.6}s, over the 2% budget \
         ({profiler_budget:.6}s) for this run"
    );

    // --- Criterion: the smallest units ---
    c.bench_function("span_site_disabled", |b| {
        b.iter(|| {
            let span = disabled_tracer.begin();
            disabled_tracer.finish(span, Phase::Submit, 0, 0, 0);
        })
    });
    let enabled_tracer = Tracer::new(ObsConfig::enabled());
    c.bench_function("span_site_enabled", |b| {
        b.iter(|| {
            let span = enabled_tracer.begin();
            enabled_tracer.finish(span, Phase::Submit, 0, 0, 0);
        })
    });
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
