//! Fig. 3 bench target: prints the utility / runtime sweeps vs n, m, k on
//! small datasets (panels (a)–(f)) and measures AVG / AVG-D / IP with
//! Criterion on a representative small instance (the figure's time panels).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_algorithms::avg::{solve_avg, AvgConfig};
use svgic_algorithms::avg_d::{solve_avg_d, AvgDConfig};
use svgic_algorithms::exact::{solve_exact, ExactConfig, ExactStrategy};
use svgic_bench::{bench_scale, print_report};
use svgic_datasets::{DatasetProfile, InstanceSpec};
use svgic_experiments::fig_small;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    print_report(&fig_small::fig3(scale));

    let mut rng = StdRng::seed_from_u64(3);
    let instance = InstanceSpec {
        num_users: 8,
        num_items: 12,
        num_slots: 3,
        ..InstanceSpec::small(DatasetProfile::TimikLike)
    }
    .build(&mut rng);

    let mut group = c.benchmark_group("fig3_small_time");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("AVG", |b| {
        b.iter(|| solve_avg(&instance, &AvgConfig::default()))
    });
    group.bench_function("AVG-D", |b| {
        b.iter(|| solve_avg_d(&instance, &AvgDConfig::default()))
    });
    group.bench_function("IP (node-limited)", |b| {
        b.iter(|| {
            solve_exact(
                &instance,
                &ExactConfig {
                    strategy: ExactStrategy::IpDual,
                    max_nodes: 200,
                    ..Default::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
