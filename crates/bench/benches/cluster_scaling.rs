//! Cluster scale-out on the `flash-sale` scenario: 1 vs 2 vs 4 nodes, plus
//! the cost of a live migration.
//!
//! Every node runs a **fixed-capacity** engine (1 worker, 4 pinned shards) —
//! the scale-out question is "does adding nodes add capacity", not "does one
//! node parallelize internally" (PR 3's sharding already covers that).
//! Because the fabric is in-process, the nodes of this simulation share one
//! host; the driver therefore accounts a per-node **busy clock**, and
//! aggregate throughput is projected over the critical path
//! (`requests / (max node busy + fabric)`), exactly as independent machines
//! would serve. Wall-clock numbers are reported alongside for honesty.
//!
//! Gates, before any timing:
//!
//! * digest equality across all topologies (the 2- and 4-node runs include a
//!   live mid-run migration + rebalance) — topology must never change what
//!   is served;
//! * identical fleet-wide solve counts — partitioning neither duplicates nor
//!   drops work;
//! * ≥ 2x aggregate throughput at 4 nodes vs 1 at full scale (the smoke run
//!   keeps a softer > 1.2x bar: with only a handful of sessions the hash
//!   ring cannot balance four nodes evenly).
//!
//! The run writes `target/cluster_scaling.json` (committed as
//! `BENCH_cluster_scaling.json` at the repo root) with per-topology rows and
//! the migration-overhead measurement.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use svgic_bench::bench_scale;
use svgic_cluster::prelude::*;
use svgic_engine::{CreateSession, EngineConfig};
use svgic_experiments::ExperimentScale;
use svgic_workload::prelude::*;

const SEED: u64 = 0xF1A5_4541;

fn scenario() -> (Scenario, bool) {
    let mut scenario = Scenario::flash_sale();
    match bench_scale() {
        ExperimentScale::Smoke => {
            let mut scenario = scenario.smoke();
            scenario.ticks = 10;
            (scenario, true)
        }
        _ => {
            // Scale-out is a law-of-large-numbers story: with only ~30
            // sessions one expensive group dominates a node's busy clock.
            // Stretch the run so the hash ring has enough sessions to
            // balance *cost*, not just counts.
            scenario.ticks = 48;
            (scenario, false)
        }
    }
}

/// Fixed per-node capacity: one worker, pinned shard count (deterministic
/// counters on any machine).
fn node_engine() -> EngineConfig {
    EngineConfig {
        workers: 1,
        shards: 4,
        auto_flush_pending: 0,
        ..EngineConfig::default()
    }
}

fn drive(trace: &Trace, nodes: usize) -> ClusterLoadOutcome {
    // Steady-state fabric posture: a load-aware rebalance every other tick
    // (sessions arrive and leave constantly — one mid-run pass goes stale),
    // plus one guaranteed explicit migration so even a perfectly balanced
    // run exercises live migration before the digest comparison.
    let plan = if nodes > 1 {
        let mut plan = NodePlan::periodic_rebalance(trace.ticks, 2, PolicyKind::QueueDepth);
        plan.actions
            .push((trace.ticks / 2, NodeAction::MigrateLowest));
        plan
    } else {
        NodePlan::none()
    };
    ClusterDriver::new(ClusterDriverConfig {
        nodes,
        engine: node_engine(),
        plan,
        ..ClusterDriverConfig::default()
    })
    .run(trace)
}

/// Mean live-migration round trip (export → import, warm capital included),
/// measured over repeated there-and-back moves of real solved sessions.
fn migration_overhead_seconds(trace: &Trace) -> (f64, usize) {
    let instance = trace.templates[0].build();
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        vnodes: 64,
        engine: node_engine(),
        ..ClusterConfig::default()
    });
    let sessions = 8u64;
    for key in 0..sessions {
        cluster
            .open_session(
                key,
                CreateSession {
                    instance: instance.clone(),
                    initial_present: Vec::new(),
                    seed: SEED ^ key,
                },
            )
            .expect("opens");
    }
    let nodes = cluster.node_ids();
    let rounds = 25usize;
    // lint: allow(wall-clock, benchmark timing is the measurement itself)
    let started = Instant::now();
    for round in 0..rounds {
        let to = nodes[round % 2];
        for key in 0..sessions {
            let _ = cluster.migrate_session(key, to).expect("live session");
        }
    }
    let migrations = cluster.stats().migrations as usize;
    (
        started.elapsed().as_secs_f64() / migrations as f64,
        migrations,
    )
}

fn cluster_scaling(c: &mut Criterion) {
    let (scenario, smoke) = scenario();
    let trace = generate(&scenario, SEED);

    let topologies = [1usize, 2, 4];
    // LP wall times on a shared host are noisy; keep, per topology, the rep
    // with the smallest makespan (min-over-trials — the least-interference
    // estimate of the true critical path). The hard contracts — digest
    // equality, solve-count parity, migrations-present — are asserted on
    // EVERY rep before the min is taken, so a nondeterministic rep can
    // never hide behind a slow makespan.
    let reps = if smoke { 1 } else { 3 };
    let mut expected: Option<(u64, u64)> = None; // (digest, solves)
    let outcomes: Vec<ClusterLoadOutcome> = topologies
        .iter()
        .map(|&nodes| {
            (0..reps)
                .map(|_| {
                    let outcome = drive(&trace, nodes);
                    let (digest, solves) =
                        *expected.get_or_insert((outcome.config_digest, outcome.merged.solves()));
                    assert_eq!(
                        outcome.config_digest, digest,
                        "{nodes}-node rep served different configurations"
                    );
                    assert_eq!(
                        outcome.merged.solves(),
                        solves,
                        "{nodes}-node rep changed the amount of solve work"
                    );
                    if nodes > 1 {
                        assert!(
                            outcome.cluster.migrations > 0,
                            "multi-node runs must include a live migration"
                        );
                    }
                    outcome
                })
                .min_by(|a, b| {
                    a.makespan_seconds()
                        .partial_cmp(&b.makespan_seconds())
                        .expect("finite makespans")
                })
                .expect("at least one rep")
        })
        .collect();
    let baseline = &outcomes[0];

    println!(
        "{:<6} {:>9} {:>12} {:>12} {:>12} {:>10} {:>11}",
        "nodes", "requests", "wall-rps", "agg-rps", "busiest(s)", "speedup", "migrations"
    );
    let base_rps = baseline.aggregate_throughput_rps();
    for (nodes, outcome) in topologies.iter().zip(&outcomes) {
        println!(
            "{:<6} {:>9} {:>12.0} {:>12.0} {:>12.4} {:>9.2}x {:>11}",
            nodes,
            outcome.requests,
            outcome.throughput_rps(),
            outcome.aggregate_throughput_rps(),
            outcome.makespan_seconds(),
            outcome.aggregate_throughput_rps() / base_rps,
            outcome.cluster.migrations,
        );
    }

    let (migration_seconds, migrations) = migration_overhead_seconds(&trace);
    println!(
        "migration overhead: {:.1}µs per live migration (over {} migrations, warm capital carried)",
        migration_seconds * 1e6,
        migrations
    );

    let speedup4 = outcomes[2].aggregate_throughput_rps() / base_rps;
    // The acceptance bar: ≥ 2x aggregate throughput at 4 nodes. At smoke
    // scale a handful of sessions cannot hash-balance four nodes, so CI only
    // sanity-checks that scaling is real.
    let bar = if smoke { 1.2 } else { 2.0 };
    assert!(
        speedup4 >= bar,
        "expected >= {bar}x aggregate throughput at 4 nodes, got {speedup4:.2}x"
    );

    // Record the scaling table for the perf trajectory.
    let mut rows = String::new();
    for (index, (nodes, outcome)) in topologies.iter().zip(&outcomes).enumerate() {
        if index > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"nodes\": {}, \"requests\": {}, \"wall_rps\": {:.1}, \"aggregate_rps\": {:.1}, \
             \"makespan_seconds\": {:.6}, \"speedup_vs_1\": {:.3}, \"migrations\": {}, \
             \"warm_capital_preserved\": {}}}",
            nodes,
            outcome.requests,
            outcome.throughput_rps(),
            outcome.aggregate_throughput_rps(),
            outcome.makespan_seconds(),
            outcome.aggregate_throughput_rps() / base_rps,
            outcome.cluster.migrations,
            outcome.cluster.warm_capital_preserved,
        ));
    }
    let json = format!(
        "{{\n  \"schema\": \"svgic-bench-cluster-scaling/v1\",\n  \"scenario\": \"{}\",\n  \
         \"seed\": {},\n  \"smoke\": {},\n  \"per_node_engine\": {{\"workers\": 1, \"shards\": 4}},\n  \
         \"config_digest\": \"0x{:016x}\",\n  \"migration_overhead_us\": {:.2},\n  \
         \"topologies\": [\n{}\n  ]\n}}\n",
        trace.scenario,
        SEED,
        smoke,
        baseline.config_digest,
        migration_seconds * 1e6,
        rows
    );
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/cluster_scaling.json", &json).expect("write scaling json");
    println!("scaling table written to target/cluster_scaling.json");

    let mut group = c.benchmark_group("cluster_scaling");
    group.sample_size(10);
    for nodes in topologies {
        group.bench_function(format!("flash_sale_{nodes}_nodes"), |b| {
            b.iter(|| drive(&trace, nodes).config_digest)
        });
    }
    group.finish();
}

criterion_group!(benches, cluster_scaling);
criterion_main!(benches);
