//! Warm vs. cold LP re-solves on the `churn-heavy` scenario.
//!
//! Drives the same churn-heavy trace through two engines that differ only in
//! the warm-start policy: the default (re-solves reuse previously computed
//! factors via the session-affine layer, the per-shard fingerprint caches and
//! the component cache) and the cold baseline (`warm_start_lp: false` — every
//! re-solve recomputes its LP from scratch). Warm starting is a pure
//! optimization, so the run **asserts byte-identical served-configuration
//! digests** before timing anything; the economics table then shows how much
//! LP work the warm path avoids. Three gates: digest equality and
//! strictly-fewer-LP-computations are deterministic counters (the shard
//! count is pinned), while the ≥2x mean re-solve latency bar is wall-clock —
//! acceptable in CI because the observed margin is orders of magnitude
//! (warm re-solves skip the LP entirely).
//!
//! `SVGIC_BENCH_SMOKE=1` (set in CI) shrinks the scenario to smoke size.

use criterion::{criterion_group, criterion_main, Criterion};
use svgic_bench::bench_scale;
use svgic_engine::{EngineConfig, ResolvePolicy};
use svgic_experiments::ExperimentScale;
use svgic_workload::prelude::*;

const SEED: u64 = 0xC0_1DCAFE;

fn scenario() -> Scenario {
    let scenario = Scenario::churn_heavy();
    match bench_scale() {
        ExperimentScale::Smoke => {
            // Smoke shrinks the group/catalogue sizes; keep enough ticks that
            // sessions actually live through churn and re-solve.
            let mut scenario = scenario.smoke();
            scenario.ticks = 10;
            scenario
        }
        _ => scenario,
    }
}

fn driver(warm: bool) -> LoadDriver {
    LoadDriver::new(DriverConfig {
        engine: EngineConfig {
            // Pin the shard count so the cache-reuse counters are identical
            // on every machine regardless of core count.
            shards: 4,
            auto_flush_pending: 0,
            policy: ResolvePolicy {
                warm_start_lp: warm,
                ..ResolvePolicy::default()
            },
            ..EngineConfig::default()
        },
        ..DriverConfig::default()
    })
}

fn churn_warm(c: &mut Criterion) {
    let trace = generate(&scenario(), SEED);

    let warm = driver(true).run(&trace);
    let cold = driver(false).run(&trace);

    // The hard contract: warm starting never changes what is served.
    assert_eq!(
        warm.config_digest, cold.config_digest,
        "warm-started serving must be byte-identical to cold"
    );

    let ws = &warm.engine;
    let cs = &cold.engine;
    println!(
        "{:<6} {:>7} {:>9} {:>10} {:>10} {:>12} {:>14} {:>14}",
        "run", "solves", "lp-comps", "warm-rate", "sess-hits", "lp-time", "mean-warm", "mean-cold"
    );
    for (label, stats) in [("warm", ws), ("cold", cs)] {
        println!(
            "{:<6} {:>7} {:>9} {:>9.1}% {:>10} {:>12.3?} {:>14.3?} {:>14.3?}",
            label,
            stats.solves(),
            stats.cache_misses,
            100.0 * stats.warm_start_rate(),
            stats.session_reuse,
            stats.lp_time,
            stats.mean_warm_solve_time(),
            stats.mean_cold_solve_time(),
        );
    }
    let latency_ratio = cs.mean_cold_solve_time().as_secs_f64()
        / ws.mean_warm_solve_time().as_secs_f64().max(1e-12);
    println!(
        "churn-heavy: warm re-solves {:.0}x faster than cold ({:.3?} vs {:.3?}), \
         {} vs {} LP computations, warm_start_rate {:.1}%, digest 0x{:016x} identical",
        latency_ratio,
        ws.mean_warm_solve_time(),
        cs.mean_cold_solve_time(),
        ws.cache_misses,
        cs.cache_misses,
        100.0 * ws.warm_start_rate(),
        warm.config_digest
    );
    assert!(
        ws.warm_start_rate() > 0.0,
        "churn-heavy must exercise warm starts"
    );
    assert_eq!(
        cs.warm_start_rate(),
        0.0,
        "the cold baseline must not warm-start"
    );
    // Both runs solve the same sessions the same way — the difference is pure
    // reuse, so the warm run must strictly skip LP computations (counters are
    // deterministic: the shard count is pinned).
    assert_eq!(ws.solves(), cs.solves());
    assert!(
        ws.cache_misses < cs.cache_misses,
        "warm must compute fewer LPs ({} vs {})",
        ws.cache_misses,
        cs.cache_misses
    );
    assert_eq!(cs.cache_misses, cs.solves(), "cold recomputes per re-solve");
    // The acceptance bar: a warm-started re-solve is at least 2x faster than
    // a cold one (in practice the gap is orders of magnitude — reused factors
    // skip the LP entirely and go straight to rounding).
    assert!(
        latency_ratio >= 2.0,
        "expected warm re-solves >=2x faster, got {latency_ratio:.2}x"
    );

    let mut group = c.benchmark_group("churn_warm");
    group.sample_size(10);
    group.bench_function("warm", |b| {
        let driver = driver(true);
        b.iter(|| driver.run(&trace).config_digest)
    });
    group.bench_function("cold", |b| {
        let driver = driver(false);
        b.iter(|| driver.run(&trace).config_digest)
    });
    group.finish();
}

criterion_group!(benches, churn_warm);
criterion_main!(benches);
