//! Fig. 16 bench target: the simulated hTC VIVE user study — prints the
//! utility / satisfaction / correlation panels and measures the study
//! simulation plus one AVG solve on the study population.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_algorithms::avg::{solve_avg, AvgConfig};
use svgic_bench::{bench_scale, print_report};
use svgic_datasets::{simulate_user_study, UserStudyConfig};
use svgic_experiments::fig_user_study;

fn bench(c: &mut Criterion) {
    print_report(&fig_user_study::fig16(bench_scale()));

    let mut group = c.benchmark_group("fig16_user_study");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("simulate 44 participants + AVG", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(16);
            let study = simulate_user_study(&UserStudyConfig::default(), &mut rng);
            solve_avg(&study.instance, &AvgConfig::default())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
