//! What the wire costs: the same trace driven in-process vs. over a real
//! loopback TCP connection to a `svgic-net` server.
//!
//! Three runs of the identical steady-mall trace:
//!
//! 1. **in-process** — `LoadDriver::run` against a bare engine (the
//!    function-call baseline);
//! 2. **tcp** — `LoadDriver::run_on` over a `NetClient` to a `NetServer`
//!    thread on 127.0.0.1 (one codec round trip + one framed socket round
//!    trip per request);
//! 3. **tcp ×2 nodes** — `ClusterDriver::run_with` across two servers,
//!    including a live migration whose session export crosses the wire.
//!
//! The digest-equality gates run **before** any timing: the wire must not
//! change what is served, in any topology. The table then reports the
//! throughput ratio and the per-request overhead the framing + loopback
//! socket adds — the honest price of `--connect` on one host (cross-host,
//! the network replaces the loopback; the protocol cost is the same).
//!
//! Criterion additionally times the smallest unit: one framed
//! `QueryConfiguration` round trip vs. one in-process `handle` call.
//!
//! `SVGIC_BENCH_SMOKE=1` (set in CI) shrinks the scenario to smoke size.

use criterion::{criterion_group, criterion_main, Criterion};
use svgic_bench::bench_scale;
use svgic_engine::prelude::*;
use svgic_experiments::ExperimentScale;
use svgic_net::{NetClient, NetServer};
use svgic_workload::prelude::*;
use svgic_workload::DriverConfig;

const SEED: u64 = 0x4EE7_C0DE;

fn scenario() -> Scenario {
    let scenario = Scenario::steady_mall();
    match bench_scale() {
        ExperimentScale::Smoke => {
            let mut scenario = scenario.smoke();
            scenario.ticks = 6;
            scenario
        }
        _ => scenario,
    }
}

/// Pinned engine shape so solve counters match across all three runs.
fn engine_config() -> EngineConfig {
    EngineConfig {
        workers: 2,
        shards: 2,
        auto_flush_pending: 0,
        ..EngineConfig::default()
    }
}

fn driver() -> LoadDriver {
    LoadDriver::new(DriverConfig {
        engine: engine_config(),
        ..DriverConfig::default()
    })
}

fn net_overhead(c: &mut Criterion) {
    let trace = generate(&scenario(), SEED);

    // --- Run 1: in-process baseline ---
    let local = driver().run(&trace);

    // --- Run 2: one TCP server on loopback ---
    let server = NetServer::bind("127.0.0.1:0", Engine::new(engine_config())).expect("binds");
    let mut client = NetClient::connect(server.local_addr()).expect("connects");
    let tcp = driver().run_on(&mut client, &trace);

    // --- Run 3: two TCP servers, live migration over the wire ---
    let servers: Vec<NetServer> = (0..2)
        .map(|_| NetServer::bind("127.0.0.1:0", Engine::new(engine_config())).expect("binds"))
        .collect();
    let addresses: Vec<std::net::SocketAddr> = servers.iter().map(|s| s.local_addr()).collect();
    let mut handed_out = 0usize;
    let cluster = ClusterDriver::new(ClusterDriverConfig {
        nodes: 2,
        plan: NodePlan::for_trace(&trace, 2),
        ..ClusterDriverConfig::default()
    })
    .run_with(&trace, move |_cfg: &EngineConfig| {
        let addr = addresses[handed_out % addresses.len()];
        handed_out += 1;
        NetClient::connect(addr).expect("node reachable")
    });

    // --- Gates: the wire never changes what is served ---
    assert_eq!(
        local.config_digest, tcp.config_digest,
        "one TCP server must serve byte-identically to the in-process engine"
    );
    assert_eq!(
        local.config_digest, cluster.config_digest,
        "a 2-process cluster must serve byte-identically too"
    );
    assert_eq!(local.requests, tcp.requests);
    assert_eq!(
        local.engine.solves(),
        tcp.engine.solves(),
        "the transport must add zero solver work"
    );
    assert!(
        cluster.cluster.migrations > 0,
        "the mid-run plan must migrate a session export across the wire"
    );

    // --- Economics table ---
    println!(
        "{:<14} {:>10} {:>12} {:>14} {:>16}",
        "run", "requests", "wall (s)", "req/s", "vs in-process"
    );
    let rows = [
        ("in-process", local.requests, local.wall_seconds),
        ("tcp x1", tcp.requests, tcp.wall_seconds),
        ("tcp x2 nodes", cluster.requests, cluster.wall_seconds),
    ];
    for (label, requests, wall) in rows {
        let rps = requests as f64 / wall.max(1e-12);
        println!(
            "{:<14} {:>10} {:>12.4} {:>14.0} {:>15.2}x",
            label,
            requests,
            wall,
            rps,
            (local.requests as f64 / local.wall_seconds.max(1e-12)) / rps,
        );
    }
    let per_request_overhead =
        (tcp.wall_seconds - local.wall_seconds) / local.requests.max(1) as f64;
    println!(
        "framing + loopback overhead ≈ {:.1} µs/request",
        per_request_overhead * 1e6
    );

    // --- Criterion: the smallest unit, one round trip ---
    let mut engine = Engine::new(engine_config());
    let view = engine
        .create_session(CreateSession {
            instance: svgic_core::example::running_example(),
            initial_present: vec![],
            seed: 1,
        })
        .expect("creates");
    let local_id = view.session;
    c.bench_function("query_in_process", |b| {
        b.iter(|| {
            engine
                .handle(EngineRequest::QueryConfiguration(local_id))
                .expect("serves")
        })
    });

    let remote_view = client
        .create_session(CreateSession {
            instance: svgic_core::example::running_example(),
            initial_present: vec![],
            seed: 1,
        })
        .expect("creates");
    let remote_id = remote_view.session;
    c.bench_function("query_over_tcp_loopback", |b| {
        b.iter(|| {
            client
                .request(EngineRequest::QueryConfiguration(remote_id))
                .expect("serves")
        })
    });
    client.close_session(remote_id).expect("closes");

    // --- Teardown ---
    client.shutdown_server().expect("shuts down");
    server.join();
    for server in servers {
        NetClient::connect(server.local_addr())
            .expect("connects")
            .shutdown_server()
            .expect("shuts down");
        server.join();
    }
}

criterion_group!(benches, net_overhead);
criterion_main!(benches);
