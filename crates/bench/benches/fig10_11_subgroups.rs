//! Fig. 10 / Fig. 11 bench target: subgroup metrics, regret CDFs and the
//! ego-network case study; Criterion measures the metric computation itself
//! (it is part of the evaluation loop at large n).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_algorithms::avg::{solve_avg, AvgConfig};
use svgic_bench::{bench_scale, print_report};
use svgic_datasets::{DatasetProfile, InstanceSpec};
use svgic_experiments::fig_subgroup;
use svgic_metrics::{regret_ratios, subgroup_metrics};

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    print_report(&fig_subgroup::fig10(scale));
    print_report(&fig_subgroup::fig11(scale));

    let mut rng = StdRng::seed_from_u64(10);
    let inst = InstanceSpec {
        num_users: 30,
        num_items: 50,
        num_slots: 5,
        ..InstanceSpec::small(DatasetProfile::YelpLike)
    }
    .build(&mut rng);
    let cfg = solve_avg(&inst, &AvgConfig::default()).configuration;
    let mut group = c.benchmark_group("fig10_metrics");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("subgroup_metrics", |b| {
        b.iter(|| subgroup_metrics(&inst, &cfg))
    });
    group.bench_function("regret_ratios", |b| b.iter(|| regret_ratios(&inst, &cfg)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
