//! Engine-throughput bench: the batched `svgic-engine` against the naive
//! baseline that re-runs a full AVG solve (LP relaxation + rounding) after
//! every single event — the serving strategy the workspace had before the
//! engine existed.
//!
//! Both sides process the *same* deterministic event stream over the same
//! shopping groups and both must serve only valid configurations; the bench
//! reports the wall-clock ratio. The engine wins by (a) coalescing events per
//! batch, (b) reusing cached LP factors across re-solves and sessions, and
//! (c) re-rounding incrementally instead of re-solving the LP.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svgic_algorithms::avg::{solve_avg, AvgConfig};
use svgic_core::extensions::DynamicEvent;
use svgic_core::SvgicInstance;
use svgic_datasets::{DatasetProfile, InstanceSpec};
use svgic_engine::prelude::*;

const SEED: u64 = 0xE7C1_BE4C;
const GROUPS: usize = 8;
const ROUNDS: usize = 6;
const EVENTS_PER_ROUND: usize = 3;

fn template(seed: u64) -> SvgicInstance {
    InstanceSpec {
        num_users: 7,
        num_items: 12,
        num_slots: 3,
        ..InstanceSpec::small(DatasetProfile::TimikLike)
    }
    .build(&mut StdRng::seed_from_u64(seed))
}

/// The deterministic event stream both strategies must serve:
/// `(group, round, event)` triples.
fn event_stream() -> Vec<(usize, usize, DynamicEvent)> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut events = Vec::new();
    for round in 0..ROUNDS {
        for group in 0..GROUPS {
            for _ in 0..EVENTS_PER_ROUND {
                let user = rng.gen_range(0..7);
                let event = if rng.gen::<f64>() < 0.5 {
                    DynamicEvent::Join(user)
                } else {
                    DynamicEvent::Leave(user)
                };
                events.push((group, round, event));
            }
        }
    }
    events
}

/// Batched engine: events of a round are submitted, then one flush serves
/// every group. Returns `(served utility sum, solve count)`.
fn run_engine(stream: &[(usize, usize, DynamicEvent)]) -> (f64, u64) {
    let shared = template(SEED);
    let mut engine = Engine::new(EngineConfig {
        workers: 1, // level the field: measure batching/caching, not cores
        auto_flush_pending: 0,
        ..EngineConfig::default()
    });
    let ids: Vec<SessionId> = (0..GROUPS)
        .map(|group| {
            engine
                .create_session(CreateSession {
                    instance: shared.clone(),
                    initial_present: Vec::new(),
                    seed: SEED ^ group as u64,
                })
                .expect("create")
                .session
        })
        .collect();
    let mut utility_sum = 0.0;
    for round in 0..ROUNDS {
        for (group, _, event) in stream.iter().filter(|(_, r, _)| *r == round) {
            engine
                .submit_event(ids[*group], SessionEvent::Membership(*event))
                .expect("valid event");
        }
        engine.flush();
        for &id in &ids {
            let view = engine.query_configuration(id).expect("live");
            assert!(
                view.present.is_empty() || view.configuration.is_valid(view.catalog.len()),
                "engine served an invalid configuration"
            );
            utility_sum += view.utility;
        }
    }
    (utility_sum, engine.stats().solves())
}

/// Naive baseline: every event triggers a full AVG solve (LP + rounding) on
/// the restricted instance. Returns `(served utility sum, solve count)`.
fn run_naive(stream: &[(usize, usize, DynamicEvent)]) -> (f64, u64) {
    let shared = template(SEED);
    let mut present: Vec<Vec<usize>> = (0..GROUPS).map(|_| (0..7).collect()).collect();
    let mut utility_sum = 0.0;
    let mut solves = 0u64;
    for (group, _, event) in stream {
        let crew = &mut present[*group];
        match event {
            DynamicEvent::Join(user) => {
                if !crew.contains(user) {
                    crew.push(*user);
                    crew.sort_unstable();
                }
            }
            DynamicEvent::Leave(user) => crew.retain(|member| member != user),
        }
        if crew.is_empty() {
            continue;
        }
        let restricted = shared.restrict_users(crew);
        let solution = solve_avg(&restricted, &AvgConfig::default());
        solves += 1;
        assert!(
            solution.configuration.is_valid(restricted.num_items()),
            "naive baseline produced an invalid configuration"
        );
        utility_sum += solution.utility;
    }
    (utility_sum, solves)
}

fn bench(c: &mut Criterion) {
    let stream = event_stream();

    // Headline numbers outside the sampling loop: one timed pass each.
    // lint: allow(wall-clock, benchmark timing is the measurement itself)
    let started = std::time::Instant::now();
    let (engine_utility, engine_solves) = run_engine(&stream);
    let engine_elapsed = started.elapsed();
    // lint: allow(wall-clock, benchmark timing is the measurement itself)
    let started = std::time::Instant::now();
    let (naive_utility, naive_solves) = run_naive(&stream);
    let naive_elapsed = started.elapsed();
    println!(
        "\nengine_throughput: {} events / {} groups / {} rounds",
        stream.len(),
        GROUPS,
        ROUNDS
    );
    println!(
        "  batched engine : {engine_elapsed:>12?}  ({engine_solves} solves, served utility sum {engine_utility:.3})"
    );
    println!(
        "  naive per-event: {naive_elapsed:>12?}  ({naive_solves} solves, served utility sum {naive_utility:.3})"
    );
    println!(
        "  speedup        : {:.2}x wall-clock, {:.2}x fewer solves",
        naive_elapsed.as_secs_f64() / engine_elapsed.as_secs_f64().max(1e-9),
        naive_solves as f64 / engine_solves.max(1) as f64
    );
    // Wall-clock on a single pass is load-dependent; the stable invariant is
    // that batching+coalescing serves the same stream with far fewer solves.
    assert!(
        engine_solves < naive_solves,
        "batched engine must re-solve less often than naive per-event solving \
         ({engine_solves} vs {naive_solves})"
    );

    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("batched_engine", |b| b.iter(|| run_engine(&stream)));
    group.bench_function("naive_per_event_full_resolve", |b| {
        b.iter(|| run_naive(&stream))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
