//! Fig. 8 bench target: execution-time scalability of AVG on Yelp-like data —
//! the figure's y-axis *is* runtime, so this target both prints the harness
//! table and measures the solver with Criterion across the `n` sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_algorithms::avg::{solve_avg, AvgConfig};
use svgic_baselines::{solve_grf, solve_per, GrfConfig};
use svgic_bench::{bench_scale, print_report};
use svgic_datasets::{DatasetProfile, InstanceSpec};
use svgic_experiments::fig_large;

fn bench(c: &mut Criterion) {
    print_report(&fig_large::fig8(bench_scale()));

    let mut group = c.benchmark_group("fig8_time_vs_n");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [10usize, 20, 30] {
        let mut rng = StdRng::seed_from_u64(8 + n as u64);
        let inst = InstanceSpec {
            num_users: n,
            num_items: 50,
            num_slots: 5,
            ..InstanceSpec::small(DatasetProfile::YelpLike)
        }
        .build(&mut rng);
        group.bench_with_input(BenchmarkId::new("AVG", n), &inst, |b, inst| {
            b.iter(|| solve_avg(inst, &AvgConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("PER", n), &inst, |b, inst| {
            b.iter(|| solve_per(inst))
        });
        group.bench_with_input(BenchmarkId::new("GRF", n), &inst, |b, inst| {
            b.iter(|| solve_grf(inst, &GrfConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
