//! Bench target for the running example (Tables 1, 6–9 of the paper):
//! prints the golden comparison table and measures the end-to-end latency of
//! AVG, AVG-D and the exact IP on the 4-user instance.

use criterion::{criterion_group, criterion_main, Criterion};
use svgic_algorithms::avg::{solve_avg, AvgConfig};
use svgic_algorithms::avg_d::{solve_avg_d, AvgDConfig};
use svgic_algorithms::exact::{solve_exact, ExactConfig};
use svgic_bench::print_report;
use svgic_core::example::running_example;
use svgic_experiments::fig_small::running_example_table;
use svgic_experiments::FigureReport;

fn bench(c: &mut Criterion) {
    // Print the paper-shaped table once.
    let mut report = FigureReport::new("running-example", "Tables 1, 6-9 of the paper");
    report.tables.push(running_example_table());
    print_report(&report);

    let instance = running_example();
    let mut group = c.benchmark_group("running_example");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("AVG", |b| {
        b.iter(|| solve_avg(&instance, &AvgConfig::default()))
    });
    group.bench_function("AVG-D", |b| {
        b.iter(|| solve_avg_d(&instance, &AvgDConfig::default()))
    });
    group.bench_function("IP", |b| {
        b.iter(|| solve_exact(&instance, &ExactConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
