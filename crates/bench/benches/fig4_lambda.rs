//! Fig. 4 bench target: prints the Personal%/Social% split across λ and
//! measures how λ affects AVG's end-to-end latency.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_algorithms::avg::{solve_avg, AvgConfig};
use svgic_bench::{bench_scale, print_report};
use svgic_datasets::{DatasetProfile, InstanceSpec};
use svgic_experiments::fig_small;

fn bench(c: &mut Criterion) {
    print_report(&fig_small::fig4(bench_scale()));

    let mut rng = StdRng::seed_from_u64(4);
    let base = InstanceSpec {
        num_users: 10,
        num_items: 16,
        num_slots: 3,
        ..InstanceSpec::small(DatasetProfile::TimikLike)
    }
    .build(&mut rng);

    let mut group = c.benchmark_group("fig4_lambda");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for lambda in [0.33, 0.5, 0.67] {
        let inst = base.with_lambda(lambda).unwrap();
        group.bench_function(format!("AVG lambda={lambda}"), |b| {
            b.iter(|| solve_avg(&inst, &AvgConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
