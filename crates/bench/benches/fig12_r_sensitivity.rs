//! Fig. 12 bench target: AVG-D sensitivity to the balancing ratio `r`
//! (utility, runtime, subgroup density / Intra%), with Criterion measuring
//! AVG-D at the extreme and recommended `r` values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_algorithms::avg_d::{solve_avg_d, AvgDConfig};
use svgic_bench::{bench_scale, print_report};
use svgic_datasets::{DatasetProfile, InstanceSpec};
use svgic_experiments::fig_ablation;

fn bench(c: &mut Criterion) {
    print_report(&fig_ablation::fig12(bench_scale()));

    let mut rng = StdRng::seed_from_u64(12);
    let inst = InstanceSpec {
        num_users: 12,
        num_items: 24,
        num_slots: 4,
        ..InstanceSpec::small(DatasetProfile::TimikLike)
    }
    .build(&mut rng);
    let mut group = c.benchmark_group("fig12_avg_d_vs_r");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for r in [0.05f64, 0.25, 1.0] {
        group.bench_with_input(BenchmarkId::new("AVG-D", format!("r={r}")), &r, |b, &r| {
            b.iter(|| solve_avg_d(&inst, &AvgDConfig::with_ratio(r)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
