//! Fig. 5 / Fig. 6 / Fig. 7 bench target: prints the larger-scale quality
//! sweeps (n sweep, dataset families, input utility models) and measures AVG
//! on the largest instance of the sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_algorithms::avg::{solve_avg, AvgConfig};
use svgic_bench::{bench_scale, print_report};
use svgic_datasets::{DatasetProfile, InstanceSpec};
use svgic_experiments::fig_large;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    print_report(&fig_large::fig5(scale));
    print_report(&fig_large::fig6(scale));
    print_report(&fig_large::fig7(scale));

    let mut rng = StdRng::seed_from_u64(5);
    let inst = InstanceSpec {
        num_users: 30,
        num_items: 60,
        num_slots: 5,
        ..InstanceSpec::small(DatasetProfile::TimikLike)
    }
    .build(&mut rng);
    let mut group = c.benchmark_group("fig5_quality");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("AVG n=30 m=60 k=5", |b| {
        b.iter(|| solve_avg(&inst, &AvgConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
