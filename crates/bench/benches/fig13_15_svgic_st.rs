//! Fig. 13 / Fig. 14 / Fig. 15 bench target: SVGIC-ST size-constraint
//! violations and utility vs the cap `M`, with Criterion measuring the
//! ST-aware AVG under a tight and a loose cap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_algorithms::avg::{solve_avg_st, AvgConfig};
use svgic_bench::{bench_scale, print_report};
use svgic_core::StParams;
use svgic_datasets::{DatasetProfile, InstanceSpec};
use svgic_experiments::fig_st;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    print_report(&fig_st::fig13(scale));
    print_report(&fig_st::fig14_15(scale));

    let mut rng = StdRng::seed_from_u64(13);
    let inst = InstanceSpec {
        num_users: 20,
        num_items: 40,
        num_slots: 4,
        ..InstanceSpec::small(DatasetProfile::TimikLike)
    }
    .build(&mut rng);
    let mut group = c.benchmark_group("fig13_15_avg_st");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for cap in [3usize, 10] {
        let st = StParams::new(0.5, cap);
        group.bench_with_input(
            BenchmarkId::new("AVG-ST", format!("M={cap}")),
            &st,
            |b, st| b.iter(|| solve_avg_st(&inst, st, &AvgConfig::default())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
