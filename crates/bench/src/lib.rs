//! # svgic-bench
//!
//! Criterion benchmark harness.  Each bench target under `benches/` regenerates
//! one figure/table family of the paper (see `DESIGN.md` for the full index):
//! it prints the same rows/series the paper reports and, where the figure's
//! y-axis is execution time, additionally measures the solver with Criterion.
//!
//! The library part only hosts small shared helpers so the bench targets stay
//! declarative.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use svgic_experiments::{ExperimentScale, FigureReport};

/// Scale used by the bench targets: `SVGIC_BENCH_SMOKE=1` switches to the tiny
/// smoke sizes (useful in CI), otherwise the default experiment scale is used.
pub fn bench_scale() -> ExperimentScale {
    if std::env::var("SVGIC_BENCH_SMOKE").is_ok() {
        ExperimentScale::Smoke
    } else {
        ExperimentScale::Default
    }
}

/// Prints a figure report to stdout with a separating banner so the series are
/// easy to locate in `cargo bench` output.
pub fn print_report(report: &FigureReport) {
    println!("\n================ {} ================", report.id);
    println!("{}", report.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_switch() {
        // The default (no env var in the test environment unless set) must be
        // one of the two valid scales.
        let scale = bench_scale();
        assert!(matches!(
            scale,
            ExperimentScale::Smoke | ExperimentScale::Default
        ));
    }
}
