//! Chrome trace-event JSON export.
//!
//! [`chrome_trace_json`] renders spans into the JSON object format consumed
//! by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//! complete (`"ph": "X"`) event per span, timestamps and durations in
//! microseconds, the node as the process id and the shard as the thread id —
//! so a churn run opens as a per-node, per-shard swimlane diagram with
//! request/session correlation in each event's `args`. The exact shape is
//! specified (and conformance-tested) in `docs/FORMATS.md`.

use crate::telemetry::TelemetrySample;
use crate::tracer::SpanRecord;

/// Renders spans (typically [`crate::Tracer::spans`], already start-sorted)
/// as a Chrome trace-event JSON object. The output is deterministic for a
/// given span list; timestamps are the spans' offsets from their tracer's
/// epoch, in microseconds with nanosecond precision kept as decimals.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    chrome_trace_json_with_counters(spans, &[], 0)
}

/// [`chrome_trace_json`] plus counter (`"ph": "C"`) events from a telemetry
/// ring: three stacked counter tracks per node — `mem_bytes`
/// (session/pending/served/cache), `load` (requests/solves/queue depth) and
/// `rates` (warm-start and shard-imbalance, parts per million) — appended
/// after the span events. Counter timestamps sit on the deterministic tick
/// axis (one tick renders as one millisecond), not the span clock, so the
/// export never reads wall time. With an empty sample list the output is
/// byte-identical to [`chrome_trace_json`].
pub fn chrome_trace_json_with_counters(
    spans: &[SpanRecord],
    samples: &[TelemetrySample],
    node: u64,
) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 128 + samples.len() * 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for span in spans {
        if !first {
            out.push(',');
        }
        first = false;
        // tid must be a plain integer lane; engine-level spans (NO_SHARD)
        // get their own lane above the real shards.
        let tid = if span.shard == SpanRecord::NO_SHARD {
            0
        } else {
            span.shard as u64 + 1
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"svgic\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"request_id\":{},\"session\":{}}}}}",
            span.phase.name(),
            micros(span.start_nanos),
            micros(span.duration_nanos),
            span.node,
            tid,
            span.request_id,
            span.session,
        ));
    }
    for sample in samples {
        // One tick = 1000 µs on the display axis: purely positional, the
        // ring records no wall-clock at all.
        let ts = sample.tick * 1000;
        for (name, args) in [
            (
                "mem_bytes",
                format!(
                    "{{\"session\":{},\"pending\":{},\"served\":{},\"cache\":{}}}",
                    sample.mem_session_bytes,
                    sample.mem_pending_bytes,
                    sample.mem_served_bytes,
                    sample.mem_cache_bytes
                ),
            ),
            (
                "load",
                format!(
                    "{{\"requests\":{},\"solves\":{},\"queue_depth\":{}}}",
                    sample.requests, sample.solves, sample.queue_depth
                ),
            ),
            (
                "rates",
                format!(
                    "{{\"warm_ppm\":{},\"imbalance_ppm\":{}}}",
                    sample.warm_rate_ppm, sample.imbalance_ppm
                ),
            ),
        ] {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"cat\":\"svgic\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{node},\"args\":{args}}}"
            ));
        }
    }
    out.push_str("]}");
    out
}

/// Nanoseconds as a microsecond decimal with no trailing zeros (Perfetto
/// accepts fractional `ts`/`dur`; `1234` ns renders as `1.234`).
fn micros(nanos: u64) -> String {
    let whole = nanos / 1000;
    let frac = nanos % 1000;
    if frac == 0 {
        format!("{whole}")
    } else {
        format!("{whole}.{frac:03}")
            .trim_end_matches('0')
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn sample() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                request_id: 1,
                session: 7,
                phase: Phase::Serve,
                shard: SpanRecord::NO_SHARD,
                node: 0,
                start_nanos: 500,
                duration_nanos: 42_000,
            },
            SpanRecord {
                request_id: 0,
                session: 7,
                phase: Phase::LpCold,
                shard: 1,
                node: 0,
                start_nanos: 1_000,
                duration_nanos: 30_000,
            },
        ]
    }

    #[test]
    fn renders_complete_events_with_correlation_args() {
        let json = chrome_trace_json(&sample());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"Serve\""));
        assert!(json.contains("\"name\":\"LpCold\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0.5"));
        assert!(json.contains("\"dur\":42"));
        assert!(json.contains("\"request_id\":1"));
        assert!(json.contains("\"session\":7"));
        // NO_SHARD lands in lane 0, shard 1 in lane 2.
        assert!(json.contains("\"tid\":0"));
        assert!(json.contains("\"tid\":2"));
    }

    #[test]
    fn empty_span_list_is_a_valid_trace() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn counter_events_append_after_spans_on_the_tick_axis() {
        use crate::telemetry::TelemetrySample;
        let samples = [
            TelemetrySample {
                tick: 0,
                requests: 10,
                solves: 4,
                queue_depth: 2,
                warm_rate_ppm: 500_000,
                imbalance_ppm: 1_250_000,
                mem_session_bytes: 1000,
                mem_pending_bytes: 64,
                mem_served_bytes: 128,
                mem_cache_bytes: 2000,
                mem_total_bytes: 3192,
            },
            TelemetrySample {
                tick: 3,
                requests: 30,
                ..TelemetrySample::default()
            },
        ];
        let json = chrome_trace_json_with_counters(&sample(), &samples, 1);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // Span events first, then six counter events (3 tracks × 2 samples).
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 6);
        assert!(json.contains(
            "{\"name\":\"mem_bytes\",\"cat\":\"svgic\",\"ph\":\"C\",\"ts\":0,\"pid\":1,\
             \"args\":{\"session\":1000,\"pending\":64,\"served\":128,\"cache\":2000}}"
        ));
        assert!(json.contains("\"ts\":3000"));
        assert!(json.contains("\"args\":{\"requests\":10,\"solves\":4,\"queue_depth\":2}"));
        assert!(json.contains("\"args\":{\"warm_ppm\":500000,\"imbalance_ppm\":1250000}"));
    }

    #[test]
    fn with_counters_and_no_samples_is_byte_identical_to_plain() {
        assert_eq!(
            chrome_trace_json_with_counters(&sample(), &[], 0),
            chrome_trace_json(&sample())
        );
        // Counters alone (no spans) are still a valid trace.
        let only_counters = chrome_trace_json_with_counters(
            &[],
            &[crate::telemetry::TelemetrySample::default()],
            0,
        );
        assert!(only_counters.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{"));
        assert!(!only_counters.contains("[,"));
    }

    #[test]
    fn micros_keeps_nanosecond_precision_without_trailing_zeros() {
        assert_eq!(micros(0), "0");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(1_200), "1.2");
        assert_eq!(micros(42_000), "42");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(5), "0.005");
    }
}
