//! Chrome trace-event JSON export.
//!
//! [`chrome_trace_json`] renders spans into the JSON object format consumed
//! by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//! complete (`"ph": "X"`) event per span, timestamps and durations in
//! microseconds, the node as the process id and the shard as the thread id —
//! so a churn run opens as a per-node, per-shard swimlane diagram with
//! request/session correlation in each event's `args`. The exact shape is
//! specified (and conformance-tested) in `docs/FORMATS.md`.

use crate::tracer::SpanRecord;

/// Renders spans (typically [`crate::Tracer::spans`], already start-sorted)
/// as a Chrome trace-event JSON object. The output is deterministic for a
/// given span list; timestamps are the spans' offsets from their tracer's
/// epoch, in microseconds with nanosecond precision kept as decimals.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // tid must be a plain integer lane; engine-level spans (NO_SHARD)
        // get their own lane above the real shards.
        let tid = if span.shard == SpanRecord::NO_SHARD {
            0
        } else {
            span.shard as u64 + 1
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"svgic\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"request_id\":{},\"session\":{}}}}}",
            span.phase.name(),
            micros(span.start_nanos),
            micros(span.duration_nanos),
            span.node,
            tid,
            span.request_id,
            span.session,
        ));
    }
    out.push_str("]}");
    out
}

/// Nanoseconds as a microsecond decimal with no trailing zeros (Perfetto
/// accepts fractional `ts`/`dur`; `1234` ns renders as `1.234`).
fn micros(nanos: u64) -> String {
    let whole = nanos / 1000;
    let frac = nanos % 1000;
    if frac == 0 {
        format!("{whole}")
    } else {
        format!("{whole}.{frac:03}")
            .trim_end_matches('0')
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn sample() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                request_id: 1,
                session: 7,
                phase: Phase::Serve,
                shard: SpanRecord::NO_SHARD,
                node: 0,
                start_nanos: 500,
                duration_nanos: 42_000,
            },
            SpanRecord {
                request_id: 0,
                session: 7,
                phase: Phase::LpCold,
                shard: 1,
                node: 0,
                start_nanos: 1_000,
                duration_nanos: 30_000,
            },
        ]
    }

    #[test]
    fn renders_complete_events_with_correlation_args() {
        let json = chrome_trace_json(&sample());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"Serve\""));
        assert!(json.contains("\"name\":\"LpCold\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0.5"));
        assert!(json.contains("\"dur\":42"));
        assert!(json.contains("\"request_id\":1"));
        assert!(json.contains("\"session\":7"));
        // NO_SHARD lands in lane 0, shard 1 in lane 2.
        assert!(json.contains("\"tid\":0"));
        assert!(json.contains("\"tid\":2"));
    }

    #[test]
    fn empty_span_list_is_a_valid_trace() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn micros_keeps_nanosecond_precision_without_trailing_zeros() {
        assert_eq!(micros(0), "0");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(1_200), "1.2");
        assert_eq!(micros(42_000), "42");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(5), "0.005");
    }
}
