//! # svgic-obs — observability primitives for the serving fabric
//!
//! The engine, the cluster fabric and the wire transport all answer *what*
//! happened through counters; this crate answers **where a request spent its
//! time**. It is deliberately zero-dependency (std only) and strictly
//! read-side: nothing here may influence seeds, session ids or served
//! configurations — tracing on vs. off yields byte-identical config digests,
//! a contract the workspace proptests.
//!
//! Four pieces, one module each:
//!
//! * [`phase`] — the static [`Phase`] enum naming every traced pipeline
//!   stage (submit → coalesce → shard dispatch → warm/cold LP → projection →
//!   rounding → serve, plus migration and the wire codec);
//! * [`tracer`] — the [`Tracer`] handle (cheap monotonic-clock spans,
//!   one relaxed atomic load on the disabled path) and the fixed-capacity
//!   lock-sharded [`FlightRecorder`] ring buffer behind it, configured by
//!   [`ObsConfig`] (off by default);
//! * [`histogram`] — the log-bucketed [`LatencyHistogram`] (moved here from
//!   `svgic-workload` so the engine can depend on it), its thread-safe
//!   sibling [`AtomicHistogram`] for concurrent recording inside engine
//!   stats, and the compact mergeable [`HistogramSnapshot`] that crosses the
//!   wire;
//! * [`profile`] — critical-path assembly over recorded spans: per-phase
//!   aggregates ([`aggregate_phases`]), top-K-slowest request waterfalls
//!   ([`assemble_waterfalls`]) and the flamegraph-compatible collapsed-stack
//!   export ([`collapsed_stacks`]) behind `loadgen profile`;
//! * [`registry`] — the [`MetricsRegistry`] builder that renders counters,
//!   gauges and histograms into the ordered name/value list served by
//!   `StatsSnapshot::metrics()` and the `QueryMetrics` wire request;
//! * [`chrome`] — the Chrome trace-event JSON exporter
//!   ([`chrome_trace_json`]) behind `loadgen --trace-out`, loadable in
//!   `chrome://tracing` and Perfetto, plus the counter-event variant
//!   ([`chrome_trace_json_with_counters`]) that overlays the telemetry
//!   ring;
//! * [`telemetry`] — the fixed-capacity [`TelemetryRing`] of per-tick
//!   [`TelemetrySample`] rows behind the `time_series` report arrays and
//!   the `QueryTelemetry` wire request;
//! * [`slo`] — latency objectives ([`SloObjective`]), error-budget burn,
//!   and the [`HealthPolicy`] that folds burn + memory pressure into the
//!   per-node [`Health`] state;
//! * [`mem`] — the [`MemoryFootprint`] trait behind the `mem_*` byte
//!   gauges (capacity accounting across sessions, queues and caches).
//!
//! ```rust
//! use svgic_obs::{chrome_trace_json, ObsConfig, Phase, Tracer};
//!
//! let tracer = Tracer::new(ObsConfig::enabled());
//! let t = tracer.begin();
//! // ... the work being traced ...
//! tracer.finish(t, Phase::Round, 7, 1, 0);
//! let spans = tracer.spans();
//! assert_eq!(spans.len(), 1);
//! assert!(chrome_trace_json(&spans).contains("\"Round\""));
//!
//! // Disabled tracers record nothing and never read the clock.
//! let off = Tracer::new(ObsConfig::default());
//! assert!(off.begin().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod histogram;
pub mod mem;
pub mod phase;
pub mod profile;
pub mod registry;
pub mod slo;
pub mod telemetry;
pub mod tracer;

pub use chrome::{chrome_trace_json, chrome_trace_json_with_counters};
pub use histogram::{AtomicHistogram, HistogramSnapshot, LatencyHistogram};
pub use mem::MemoryFootprint;
pub use phase::Phase;
pub use profile::{
    aggregate_phases, assemble_waterfalls, collapsed_stacks, PhaseAggregate, RequestWaterfall,
    WaterfallSpan, WATERFALL_TOP_K,
};
pub use registry::MetricsRegistry;
pub use slo::{Health, HealthPolicy, SloObjective};
pub use telemetry::{TelemetryRing, TelemetrySample};
pub use tracer::{FlightRecorder, ObsConfig, SpanRecord, Tracer};
