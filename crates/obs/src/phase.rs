//! The static phase vocabulary of a traced request.
//!
//! Every span names exactly one [`Phase`] — a fixed pipeline stage, not a
//! free-form string — so exporters can build per-phase breakdowns without
//! string interning and the wire/readers agree on the vocabulary forever
//! (append-only, like the formats).

/// One pipeline stage a span can cover.
///
/// The serving path of a request walks, in order: [`Phase::Serve`] wraps the
/// whole engine dispatch; [`Phase::Submit`] admits an event into a session's
/// pending queue; at flush time [`Phase::Coalesce`] folds the pending queues
/// and [`Phase::ShardDispatch`] covers one shard's whole pipeline job, inside
/// which each session re-solve spends time in [`Phase::LpWarm`] or
/// [`Phase::LpCold`] (factor computation with vs. without reused warm
/// components), [`Phase::Project`] (restricting the instance to the present
/// population and active catalogue) and [`Phase::Round`] (randomized
/// rounding). [`Phase::Migrate`] covers session export/import, and
/// [`Phase::WireEncode`] / [`Phase::WireDecode`] the codec work on either
/// side of a TCP frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Event admission into a session's pending queue.
    Submit,
    /// Batch coalescing of pending events at flush time.
    Coalesce,
    /// One shard's whole pipeline job within a flush.
    ShardDispatch,
    /// LP factor computation that reused at least one warm component.
    LpWarm,
    /// LP factor computation with no warm components to reuse.
    LpCold,
    /// Restriction of the instance to the present population and catalogue.
    Project,
    /// Randomized rounding of LP factors into a served configuration.
    Round,
    /// The whole engine-side handling of one request.
    Serve,
    /// Session export or import (live migration).
    Migrate,
    /// Encoding a request/response payload for the wire.
    WireEncode,
    /// Decoding a request/response payload from the wire.
    WireDecode,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 11] = [
        Phase::Submit,
        Phase::Coalesce,
        Phase::ShardDispatch,
        Phase::LpWarm,
        Phase::LpCold,
        Phase::Project,
        Phase::Round,
        Phase::Serve,
        Phase::Migrate,
        Phase::WireEncode,
        Phase::WireDecode,
    ];

    /// The stable name used in trace exports and docs.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Submit => "Submit",
            Phase::Coalesce => "Coalesce",
            Phase::ShardDispatch => "ShardDispatch",
            Phase::LpWarm => "LpWarm",
            Phase::LpCold => "LpCold",
            Phase::Project => "Project",
            Phase::Round => "Round",
            Phase::Serve => "Serve",
            Phase::Migrate => "Migrate",
            Phase::WireEncode => "WireEncode",
            Phase::WireDecode => "WireDecode",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_cover_all() {
        let names: std::collections::BTreeSet<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), Phase::ALL.len());
        for phase in Phase::ALL {
            assert_eq!(format!("{phase}"), phase.name());
        }
    }
}
