//! The static phase vocabulary of a traced request.
//!
//! Every span names exactly one [`Phase`] — a fixed pipeline stage, not a
//! free-form string — so exporters can build per-phase breakdowns without
//! string interning and the wire/readers agree on the vocabulary forever
//! (append-only, like the formats).

/// One pipeline stage a span can cover.
///
/// The serving path of a request walks, in order: [`Phase::Serve`] wraps the
/// whole engine dispatch; [`Phase::Submit`] admits an event into a session's
/// pending queue; at flush time [`Phase::Coalesce`] folds the pending queues
/// and [`Phase::ShardDispatch`] covers one shard's whole pipeline job, inside
/// which each session re-solve spends time in [`Phase::LpWarm`] or
/// [`Phase::LpCold`] (factor computation with vs. without reused warm
/// components), [`Phase::Project`] (restricting the instance to the present
/// population and active catalogue) and [`Phase::Round`] (randomized
/// rounding). [`Phase::Migrate`] covers session export/import, and
/// [`Phase::WireEncode`] / [`Phase::WireDecode`] the codec work on either
/// side of a TCP frame.
///
/// Two wait-state phases decompose request lifetime into queueing vs.
/// service: [`Phase::QueueWait`] measures how long a shard's oldest pending
/// event sat enqueued before its shard pipeline job picked it up, and
/// [`Phase::WireWait`] measures the server-side gap between a frame being
/// decoded off the socket and the engine thread picking the request up.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Event admission into a session's pending queue.
    Submit,
    /// Batch coalescing of pending events at flush time.
    Coalesce,
    /// One shard's whole pipeline job within a flush.
    ShardDispatch,
    /// LP factor computation that reused at least one warm component.
    LpWarm,
    /// LP factor computation with no warm components to reuse.
    LpCold,
    /// Restriction of the instance to the present population and catalogue.
    Project,
    /// Randomized rounding of LP factors into a served configuration.
    Round,
    /// The whole engine-side handling of one request.
    Serve,
    /// Session export or import (live migration).
    Migrate,
    /// Encoding a request/response payload for the wire.
    WireEncode,
    /// Decoding a request/response payload from the wire.
    WireDecode,
    /// Wait of a shard's oldest enqueued event between submit and its shard
    /// pipeline job starting (queueing, not service).
    QueueWait,
    /// Server-side wait between a frame being decoded and the engine thread
    /// picking the request up (queueing, not service).
    WireWait,
}

impl Phase {
    /// Every phase, in pipeline order (append-only — wire payloads encode a
    /// phase as its index in this array).
    pub const ALL: [Phase; 13] = [
        Phase::Submit,
        Phase::Coalesce,
        Phase::ShardDispatch,
        Phase::LpWarm,
        Phase::LpCold,
        Phase::Project,
        Phase::Round,
        Phase::Serve,
        Phase::Migrate,
        Phase::WireEncode,
        Phase::WireDecode,
        Phase::QueueWait,
        Phase::WireWait,
    ];

    /// The stable name used in trace exports and docs.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Submit => "Submit",
            Phase::Coalesce => "Coalesce",
            Phase::ShardDispatch => "ShardDispatch",
            Phase::LpWarm => "LpWarm",
            Phase::LpCold => "LpCold",
            Phase::Project => "Project",
            Phase::Round => "Round",
            Phase::Serve => "Serve",
            Phase::Migrate => "Migrate",
            Phase::WireEncode => "WireEncode",
            Phase::WireDecode => "WireDecode",
            Phase::QueueWait => "QueueWait",
            Phase::WireWait => "WireWait",
        }
    }

    /// The wire index of this phase: its position in [`Phase::ALL`].
    pub fn index(self) -> u8 {
        Phase::ALL
            .iter()
            .position(|&p| p == self)
            .expect("every phase is in ALL") as u8
    }

    /// The phase with wire index `index`, if in range.
    pub fn from_index(index: u8) -> Option<Phase> {
        Phase::ALL.get(index as usize).copied()
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_cover_all() {
        let names: std::collections::BTreeSet<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), Phase::ALL.len());
        for phase in Phase::ALL {
            assert_eq!(format!("{phase}"), phase.name());
        }
    }

    #[test]
    fn wire_indices_round_trip_and_stay_pinned() {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(phase.index() as usize, i);
            assert_eq!(Phase::from_index(i as u8), Some(*phase));
        }
        assert_eq!(Phase::from_index(Phase::ALL.len() as u8), None);
        // Appended wait-state phases must never renumber the original eleven.
        assert_eq!(Phase::Submit.index(), 0);
        assert_eq!(Phase::WireDecode.index(), 10);
        assert_eq!(Phase::QueueWait.index(), 11);
        assert_eq!(Phase::WireWait.index(), 12);
    }
}
