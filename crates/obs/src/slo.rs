//! Latency objectives, error-budget burn, and derived node health.
//!
//! An SLO here is the classic shape: "at most `budget` of requests may be
//! slower than `objective`". Burn is how hard the budget is being spent —
//! the observed slow fraction divided by the allowed fraction, so `1.0`
//! means the budget is exactly exhausted and `4.0` means the node is
//! blowing through it 4× too fast. [`HealthPolicy`] folds the worst
//! per-class burn together with a memory budget into the three-state
//! [`Health`] that cluster reports and `loadgen watch` surface per node.
//!
//! Everything is computed read-side from frozen
//! [`HistogramSnapshot`]s — nothing on the serve path consults an SLO.

use crate::histogram::HistogramSnapshot;

/// One latency objective: at most `budget` (a fraction in `(0, 1]`) of
/// samples may exceed `objective_nanos`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloObjective {
    /// The latency threshold, in nanoseconds.
    pub objective_nanos: u64,
    /// The allowed fraction of samples above the threshold.
    pub budget: f64,
}

impl SloObjective {
    /// A new objective.
    pub const fn new(objective_nanos: u64, budget: f64) -> Self {
        SloObjective {
            objective_nanos,
            budget,
        }
    }

    /// Error-budget burn rate against a frozen histogram: observed slow
    /// fraction over allowed fraction. `0.0` for an empty histogram (no
    /// traffic burns no budget) and for a non-positive budget.
    pub fn burn(&self, histogram: &HistogramSnapshot) -> f64 {
        if self.budget <= 0.0 {
            return 0.0;
        }
        histogram.fraction_above(self.objective_nanos) / self.budget
    }
}

/// Node health, derived from burn rate and memory pressure. Ordered:
/// `Ok < Degraded < Overloaded`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Health {
    /// All burns under budget and memory inside budget.
    #[default]
    Ok,
    /// Some error budget is exhausted, or memory is near its budget.
    Degraded,
    /// Burn far past budget, or memory at/over its budget.
    Overloaded,
}

impl Health {
    /// The lowercase label used in reports and the watch table.
    pub fn name(&self) -> &'static str {
        match self {
            Health::Ok => "ok",
            Health::Degraded => "degraded",
            Health::Overloaded => "overloaded",
        }
    }

    /// Numeric severity (`0`/`1`/`2`) for the metrics list.
    pub fn level(&self) -> u8 {
        match self {
            Health::Ok => 0,
            Health::Degraded => 1,
            Health::Overloaded => 2,
        }
    }

    /// Parses a report label back into a health state.
    pub fn from_name(name: &str) -> Option<Health> {
        match name {
            "ok" => Some(Health::Ok),
            "degraded" => Some(Health::Degraded),
            "overloaded" => Some(Health::Overloaded),
            _ => None,
        }
    }
}

/// Thresholds that fold burn rate and memory usage into a [`Health`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthPolicy {
    /// Worst per-class burn at or above this is at least [`Health::Degraded`].
    pub degraded_burn: f64,
    /// Worst per-class burn at or above this is [`Health::Overloaded`].
    pub overloaded_burn: f64,
    /// Memory budget in bytes; `0` means unlimited (memory never degrades
    /// health). At ≥ 80% of the budget the node is at least degraded, at
    /// 100% it is overloaded.
    pub mem_budget_bytes: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degraded_burn: 1.0,
            overloaded_burn: 4.0,
            mem_budget_bytes: 0,
        }
    }
}

impl HealthPolicy {
    /// Folds the worst per-class burn and the accounted memory bytes into
    /// a health state. Non-finite burns are treated as `0.0` (the registry's
    /// NaN discipline).
    pub fn assess(&self, max_burn: f64, mem_bytes: u64) -> Health {
        let max_burn = if max_burn.is_finite() { max_burn } else { 0.0 };
        let mut health = if max_burn >= self.overloaded_burn {
            Health::Overloaded
        } else if max_burn >= self.degraded_burn {
            Health::Degraded
        } else {
            Health::Ok
        };
        if self.mem_budget_bytes > 0 {
            if mem_bytes >= self.mem_budget_bytes {
                health = health.max(Health::Overloaded);
            } else if mem_bytes.saturating_mul(10) >= self.mem_budget_bytes.saturating_mul(8) {
                health = health.max(Health::Degraded);
            }
        }
        health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::AtomicHistogram;

    fn histogram_with(fast: u64, slow: u64) -> HistogramSnapshot {
        let h = AtomicHistogram::new();
        for _ in 0..fast {
            h.record_nanos(1_000);
        }
        for _ in 0..slow {
            h.record_nanos(100_000_000);
        }
        h.snapshot()
    }

    #[test]
    fn burn_is_slow_fraction_over_budget() {
        let slo = SloObjective::new(1_000_000, 0.05);
        // 10% slow against a 5% budget: burn 2.0.
        let burn = slo.burn(&histogram_with(90, 10));
        assert!((burn - 2.0).abs() < 0.05, "burn {burn}");
        // No slow samples: zero burn.
        assert_eq!(slo.burn(&histogram_with(100, 0)), 0.0);
        // Empty histogram: zero burn, never NaN.
        assert_eq!(slo.burn(&HistogramSnapshot::default()), 0.0);
        // Degenerate budget never divides by zero.
        assert_eq!(SloObjective::new(1, 0.0).burn(&histogram_with(0, 10)), 0.0);
    }

    #[test]
    fn health_orders_and_labels() {
        assert!(Health::Ok < Health::Degraded);
        assert!(Health::Degraded < Health::Overloaded);
        for health in [Health::Ok, Health::Degraded, Health::Overloaded] {
            assert_eq!(Health::from_name(health.name()), Some(health));
            assert_eq!(health.level() as usize, health as usize);
        }
        assert_eq!(Health::from_name("sideways"), None);
    }

    #[test]
    fn policy_thresholds_on_burn() {
        let policy = HealthPolicy::default();
        assert_eq!(policy.assess(0.0, 0), Health::Ok);
        assert_eq!(policy.assess(0.99, 0), Health::Ok);
        assert_eq!(policy.assess(1.0, 0), Health::Degraded);
        assert_eq!(policy.assess(4.0, 0), Health::Overloaded);
        assert_eq!(policy.assess(f64::NAN, 0), Health::Ok);
    }

    #[test]
    fn policy_memory_budget_degrades_and_overloads() {
        let policy = HealthPolicy {
            mem_budget_bytes: 1000,
            ..HealthPolicy::default()
        };
        assert_eq!(policy.assess(0.0, 100), Health::Ok);
        assert_eq!(policy.assess(0.0, 799), Health::Ok);
        assert_eq!(policy.assess(0.0, 800), Health::Degraded);
        assert_eq!(policy.assess(0.0, 1000), Health::Overloaded);
        // Memory pressure never *improves* a burn-derived state.
        assert_eq!(policy.assess(5.0, 100), Health::Overloaded);
        // Unlimited budget ignores memory entirely.
        assert_eq!(HealthPolicy::default().assess(0.0, u64::MAX), Health::Ok);
    }
}
