//! The span tracer and its flight-recorder ring buffer.
//!
//! A [`Tracer`] is a cheap, cloneable handle (an `Arc` internally) that the
//! engine, the wire client and the cluster fabric all share. Recording a
//! span is two calls around the work:
//!
//! ```rust
//! use svgic_obs::{ObsConfig, Phase, Tracer};
//! let tracer = Tracer::new(ObsConfig::enabled());
//! let t = tracer.begin();
//! // ... the work ...
//! tracer.finish(t, Phase::Round, /*request_id*/ 0, /*session*/ 3, /*shard*/ 1);
//! ```
//!
//! **The disabled path is the contract.** [`Tracer::begin`] is a single
//! relaxed atomic load when tracing is off — no clock read, no allocation,
//! no lock — and [`Tracer::finish`] returns immediately on the `None` it
//! produced. The obs-overhead bench gates this at < 1% of the churn smoke's
//! runtime; `ObsConfig::default()` is off, so an untouched engine pays only
//! that load per instrumentation site.
//!
//! Spans land in a [`FlightRecorder`]: a fixed-capacity ring buffer sharded
//! across several mutexes (recording threads rotate across stripes, so shard
//! workers almost never contend) that retains the **last N** spans per node.
//! Draining it ([`Tracer::spans`]) is for run boundaries, not hot paths.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::phase::Phase;

/// Runtime observability switches. Off by default: a default-configured
/// engine records nothing and pays one relaxed atomic load per
/// instrumentation site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Whether spans are recorded at all.
    pub enabled: bool,
    /// How many spans the flight recorder retains (oldest evicted first).
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            ring_capacity: 65_536,
        }
    }
}

impl ObsConfig {
    /// Tracing on, default ring capacity.
    pub fn enabled() -> Self {
        ObsConfig {
            enabled: true,
            ..ObsConfig::default()
        }
    }

    /// Tracing off (the default, spelled out).
    pub fn disabled() -> Self {
        ObsConfig::default()
    }
}

/// One recorded span: a phase, its wall-clock window, and the identifiers
/// that correlate it — the wire request id (0 when the work was not tied to
/// a single request, e.g. batched flush work), the session, the shard
/// ([`SpanRecord::NO_SHARD`] for engine-level work) and the node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The frame request id that caused this work; 0 for work not
    /// attributable to one request (batch-internal phases). Client-assigned
    /// ids are echoed by the server, so the same id names the same request
    /// on both sides of a TCP connection.
    pub request_id: u64,
    /// Session the work was for; 0 for engine-wide phases.
    pub session: u64,
    /// Which pipeline stage the span covers.
    pub phase: Phase,
    /// Shard that ran the work, or [`SpanRecord::NO_SHARD`].
    pub shard: u32,
    /// Node the span was recorded on (0 single-engine).
    pub node: u64,
    /// Start offset in nanoseconds since the tracer's epoch.
    pub start_nanos: u64,
    /// Span length in nanoseconds.
    pub duration_nanos: u64,
}

impl SpanRecord {
    /// Shard value for spans not attributable to one shard.
    pub const NO_SHARD: u32 = u32::MAX;
}

/// How many mutex stripes the recorder spreads writers across.
const STRIPES: usize = 8;

/// One stripe: a fixed-capacity overwrite-oldest ring.
#[derive(Debug, Default)]
struct Ring {
    buf: Vec<SpanRecord>,
    capacity: usize,
    /// Next write position once `buf` is full.
    next: usize,
}

impl Ring {
    fn push(&mut self, span: SpanRecord) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(span);
        } else {
            self.buf[self.next] = span;
            self.next = (self.next + 1) % self.capacity;
        }
    }
}

/// The fixed-capacity, lock-sharded span store behind a [`Tracer`].
///
/// Capacity is split evenly across `STRIPES` (8) mutex-protected rings;
/// recorders rotate stripes with one atomic counter, so two shard workers
/// recording simultaneously almost always take different locks. When a
/// stripe is full the oldest span in that stripe is overwritten — the
/// recorder retains the *most recent* ~N spans, which is what a flight
/// recorder is for.
#[derive(Debug)]
pub struct FlightRecorder {
    stripes: Vec<Mutex<Ring>>,
    rotor: AtomicUsize,
    recorded: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining roughly `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        let per_stripe = capacity.div_ceil(STRIPES);
        FlightRecorder {
            stripes: (0..STRIPES)
                .map(|_| {
                    Mutex::new(Ring {
                        buf: Vec::new(),
                        capacity: per_stripe,
                        next: 0,
                    })
                })
                .collect(),
            rotor: AtomicUsize::new(0),
            recorded: AtomicU64::new(0),
        }
    }

    /// Stores one span (evicting the oldest in its stripe when full).
    pub fn record(&self, span: SpanRecord) {
        // lint: allow(relaxed-store, recorded count and stripe rotor are independent; neither guards other state)
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let stripe = self.rotor.fetch_add(1, Ordering::Relaxed) % STRIPES;
        let mut ring = self.stripes[stripe].lock().expect("recorder lock poisoned");
        ring.push(span);
    }

    /// Total spans ever recorded (including those since evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Every retained span, sorted by start time.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut spans = Vec::new();
        for stripe in &self.stripes {
            let ring = stripe.lock().expect("recorder lock poisoned");
            spans.extend_from_slice(&ring.buf);
        }
        spans.sort_by_key(|s| (s.start_nanos, s.duration_nanos, s.phase));
        spans
    }

    /// Drops every retained span (the ever-recorded counter survives).
    pub fn clear(&self) {
        for stripe in &self.stripes {
            let mut ring = stripe.lock().expect("recorder lock poisoned");
            ring.buf.clear();
            ring.next = 0;
        }
    }
}

#[derive(Debug)]
struct TracerInner {
    enabled: AtomicBool,
    node: u64,
    epoch: Instant,
    recorder: FlightRecorder,
}

/// The cloneable span-recording handle. See the module docs for the
/// begin/finish idiom and the disabled-path contract.
#[derive(Clone, Debug)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(ObsConfig::default())
    }
}

impl Tracer {
    /// A tracer for node 0 (single-engine processes).
    pub fn new(config: ObsConfig) -> Tracer {
        Tracer::for_node(config, 0)
    }

    /// A tracer whose spans carry `node` (cluster fabrics give each node
    /// engine its own id so merged traces keep rows apart).
    pub fn for_node(config: ObsConfig, node: u64) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(config.enabled),
                node,
                epoch: Instant::now(),
                recorder: FlightRecorder::new(if config.enabled {
                    config.ring_capacity
                } else {
                    0
                }),
            }),
        }
    }

    /// Whether spans are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Starts a span: the clock is read only when tracing is on. The
    /// disabled path is one relaxed atomic load.
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.inner.enabled.load(Ordering::Relaxed) {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a span started by [`Tracer::begin`] and records it. A `None`
    /// start (tracing was off) returns immediately.
    pub fn finish(
        &self,
        started: Option<Instant>,
        phase: Phase,
        request_id: u64,
        session: u64,
        shard: u32,
    ) {
        let Some(started) = started else { return };
        let start_nanos = started
            .saturating_duration_since(self.inner.epoch)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        let duration_nanos = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.inner.recorder.record(SpanRecord {
            request_id,
            session,
            phase,
            shard,
            node: self.inner.node,
            start_nanos,
            duration_nanos,
        });
    }

    /// Every retained span, sorted by start time.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.recorder.snapshot()
    }

    /// Total spans ever recorded (eviction does not decrement).
    pub fn recorded(&self) -> u64 {
        self.inner.recorder.recorded()
    }

    /// Drops retained spans (for measured-window resets).
    pub fn clear(&self) {
        self.inner.recorder.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start: u64) -> SpanRecord {
        SpanRecord {
            request_id: start,
            session: 0,
            phase: Phase::Round,
            shard: 0,
            node: 0,
            start_nanos: start,
            duration_nanos: 1,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing_and_reads_no_clock() {
        let tracer = Tracer::new(ObsConfig::default());
        assert!(!tracer.is_enabled());
        let t = tracer.begin();
        assert!(t.is_none());
        tracer.finish(t, Phase::Serve, 1, 2, 3);
        assert!(tracer.spans().is_empty());
        assert_eq!(tracer.recorded(), 0);
    }

    #[test]
    fn enabled_tracer_records_spans_with_identifiers() {
        let tracer = Tracer::for_node(ObsConfig::enabled(), 4);
        let t = tracer.begin();
        std::thread::sleep(std::time::Duration::from_micros(50));
        tracer.finish(t, Phase::LpCold, 9, 7, 1);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 1);
        let s = spans[0];
        assert_eq!(
            (s.phase, s.request_id, s.session, s.shard, s.node),
            (Phase::LpCold, 9, 7, 1, 4)
        );
        assert!(s.duration_nanos >= 50_000, "{}", s.duration_nanos);
        assert_eq!(tracer.recorded(), 1);
        tracer.clear();
        assert!(tracer.spans().is_empty());
        assert_eq!(tracer.recorded(), 1, "clear keeps the ever-recorded count");
    }

    #[test]
    fn ring_retains_the_most_recent_spans() {
        let recorder = FlightRecorder::new(16);
        for i in 0..100u64 {
            recorder.record(span(i));
        }
        let spans = recorder.snapshot();
        assert_eq!(spans.len(), 16);
        assert_eq!(recorder.recorded(), 100);
        // Eviction is per stripe, but everything retained must come from the
        // most recent capacity*2 window and include the very last span.
        assert!(spans.iter().all(|s| s.start_nanos >= 100 - 32));
        assert!(spans.iter().any(|s| s.start_nanos == 99));
        // Snapshot is sorted by start.
        assert!(spans
            .windows(2)
            .all(|w| w[0].start_nanos <= w[1].start_nanos));
    }

    #[test]
    fn wrapped_recorder_dumps_spans_start_ordered_across_all_stripes() {
        // Capacity 64 → 8 slots per stripe; driving 640 spans wraps every
        // one of the 8 stripes several times over, leaving each ring's
        // backing buffer physically rotated (write cursor mid-buffer). The
        // snapshot must still come out globally start-ordered — the sort in
        // `snapshot` is what callers (waterfall assembly, Chrome export)
        // rely on, and a regression to "concatenate the stripes raw" would
        // only show up after a wrap.
        let recorder = FlightRecorder::new(64);
        for i in 0..640u64 {
            recorder.record(span(i));
        }
        assert_eq!(recorder.recorded(), 640);
        let spans = recorder.snapshot();
        assert_eq!(spans.len(), 64);
        // The rotor round-robins span i to stripe i % 8 and each stripe
        // keeps its newest 8, so the retained set is exactly the last 64
        // spans — and the dump must be them in start order, despite every
        // stripe's internal rotation.
        let got: Vec<u64> = spans.iter().map(|s| s.start_nanos).collect();
        let expected: Vec<u64> = (640 - 64..640).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn snapshot_orders_same_start_spans_by_duration_then_phase() {
        let recorder = FlightRecorder::new(16);
        // Same start, descending duration; insertion order must not leak
        // through — the (start, duration, phase) sort key pins the tie.
        for duration in [30u64, 10, 20] {
            recorder.record(SpanRecord {
                request_id: 1,
                session: 0,
                phase: Phase::Round,
                shard: 0,
                node: 0,
                start_nanos: 100,
                duration_nanos: duration,
            });
        }
        let durations: Vec<u64> = recorder
            .snapshot()
            .iter()
            .map(|s| s.duration_nanos)
            .collect();
        assert_eq!(durations, vec![10, 20, 30]);
    }

    #[test]
    fn concurrent_recording_is_safe_and_counted() {
        let recorder = Arc::new(FlightRecorder::new(1 << 14));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        recorder.record(span(t * 10_000 + i));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(recorder.recorded(), 4000);
        assert_eq!(recorder.snapshot().len(), 4000);
    }

    #[test]
    fn tracer_clones_share_one_recorder() {
        let tracer = Tracer::new(ObsConfig::enabled());
        let clone = tracer.clone();
        let t = clone.begin();
        clone.finish(t, Phase::Submit, 1, 1, 0);
        assert_eq!(tracer.spans().len(), 1);
    }
}
