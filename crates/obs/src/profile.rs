//! Critical-path assembly: phase aggregates, per-request waterfalls and
//! collapsed-stack export built from flight-recorder spans.
//!
//! Everything here is a pure, deterministic fold over a span slice — same
//! spans in, same profile out, with `BTreeMap` orderings and explicit
//! tie-breaks throughout — so a profile assembled on the server and shipped
//! over the wire equals one assembled locally from the same recorder dump.

use std::collections::BTreeMap;

use crate::phase::Phase;
use crate::tracer::SpanRecord;

/// How many slowest requests a profile keeps full waterfalls for.
pub const WATERFALL_TOP_K: usize = 8;

/// Aggregate time spent in one phase across every span that named it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseAggregate {
    /// The phase being aggregated.
    pub phase: Phase,
    /// Spans recorded for this phase.
    pub count: u64,
    /// Sum of span durations, in nanoseconds.
    pub total_nanos: u64,
    /// Longest single span, in nanoseconds.
    pub max_nanos: u64,
}

/// One span inside a reconstructed request waterfall, with its start made
/// relative to the request's first span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaterfallSpan {
    /// The pipeline stage the span covers.
    pub phase: Phase,
    /// Nanoseconds after the request's first span start.
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub duration_nanos: u64,
    /// Shard index, or `u32::MAX` when no shard applies.
    pub shard: u32,
}

/// The reconstructed critical path of one request: every span that carried
/// its request id, in start order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RequestWaterfall {
    /// The request id the spans share.
    pub request_id: u64,
    /// Wall span of the request: last span end minus first span start.
    pub total_nanos: u64,
    /// The request's spans in `(start, duration, phase)` order, starts
    /// relative to the first span.
    pub spans: Vec<WaterfallSpan>,
}

/// Aggregates `spans` per phase, returned in [`Phase::ALL`] pipeline order
/// with phases that recorded nothing omitted.
pub fn aggregate_phases(spans: &[SpanRecord]) -> Vec<PhaseAggregate> {
    let mut by_phase: BTreeMap<u8, PhaseAggregate> = BTreeMap::new();
    for span in spans {
        let entry = by_phase
            .entry(span.phase.index())
            .or_insert_with(|| PhaseAggregate {
                phase: span.phase,
                count: 0,
                total_nanos: 0,
                max_nanos: 0,
            });
        entry.count += 1;
        entry.total_nanos += span.duration_nanos;
        entry.max_nanos = entry.max_nanos.max(span.duration_nanos);
    }
    by_phase.into_values().collect()
}

/// Reconstructs per-request waterfalls from `spans` and keeps the
/// [`WATERFALL_TOP_K`] slowest, ordered slowest-first with ascending request
/// id as the tie-break. Spans with request id `0` (no request attribution —
/// e.g. queue-wait spans, which straddle requests) are skipped.
pub fn assemble_waterfalls(spans: &[SpanRecord]) -> Vec<RequestWaterfall> {
    let mut by_request: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for span in spans {
        if span.request_id != 0 {
            by_request.entry(span.request_id).or_default().push(span);
        }
    }
    let mut waterfalls: Vec<RequestWaterfall> = by_request
        .into_iter()
        .map(|(request_id, mut request_spans)| {
            request_spans.sort_by_key(|s| (s.start_nanos, s.duration_nanos, s.phase.index()));
            let first = request_spans[0].start_nanos;
            let end = request_spans
                .iter()
                .map(|s| s.start_nanos + s.duration_nanos)
                .max()
                .unwrap_or(first);
            RequestWaterfall {
                request_id,
                total_nanos: end - first,
                spans: request_spans
                    .iter()
                    .map(|s| WaterfallSpan {
                        phase: s.phase,
                        start_nanos: s.start_nanos - first,
                        duration_nanos: s.duration_nanos,
                        shard: s.shard,
                    })
                    .collect(),
            }
        })
        .collect();
    waterfalls.sort_by(|a, b| {
        b.total_nanos
            .cmp(&a.total_nanos)
            .then(a.request_id.cmp(&b.request_id))
    });
    waterfalls.truncate(WATERFALL_TOP_K);
    waterfalls
}

/// The stack path of `phase` in the collapsed-stack export, innermost frame
/// last. `Serve` wraps the engine-side phases and `ShardDispatch` wraps the
/// per-solve phases; wait states and the wire codec are roots of their own
/// (they happen outside the engine's service time).
fn stack_path(phase: Phase) -> &'static [Phase] {
    match phase {
        Phase::Submit => &[Phase::Serve, Phase::Submit],
        Phase::Coalesce => &[Phase::Serve, Phase::Coalesce],
        Phase::Migrate => &[Phase::Serve, Phase::Migrate],
        Phase::ShardDispatch => &[Phase::Serve, Phase::ShardDispatch],
        Phase::LpWarm => &[Phase::Serve, Phase::ShardDispatch, Phase::LpWarm],
        Phase::LpCold => &[Phase::Serve, Phase::ShardDispatch, Phase::LpCold],
        Phase::Project => &[Phase::Serve, Phase::ShardDispatch, Phase::Project],
        Phase::Round => &[Phase::Serve, Phase::ShardDispatch, Phase::Round],
        Phase::Serve => &[Phase::Serve],
        Phase::WireEncode => &[Phase::WireEncode],
        Phase::WireDecode => &[Phase::WireDecode],
        Phase::QueueWait => &[Phase::QueueWait],
        Phase::WireWait => &[Phase::WireWait],
    }
}

/// Renders `spans` as collapsed stacks — one `frame;frame;... nanos` line
/// per stack, the format `flamegraph.pl` and Perfetto's "import folded"
/// accept, with nanoseconds as the sample weight.
///
/// Wrapper phases (`Serve`, `ShardDispatch`) report **self time**: their
/// aggregate minus the aggregate of the phases nested under them, clamped at
/// zero (concurrency can make nested shard time exceed the serial serve
/// wall). Lines appear in stack-path lexicographic order; phases with zero
/// self time after clamping are omitted.
pub fn collapsed_stacks(spans: &[SpanRecord]) -> String {
    let aggregates = aggregate_phases(spans);
    let total = |phase: Phase| {
        aggregates
            .iter()
            .find(|a| a.phase == phase)
            .map(|a| a.total_nanos)
            .unwrap_or(0)
    };
    let nested_in = |parent: Phase| {
        Phase::ALL
            .iter()
            .filter(|&&p| {
                p != parent && {
                    let path = stack_path(p);
                    path.len() >= 2 && path[path.len() - 2] == parent
                }
            })
            .map(|&p| total(p))
            .sum::<u64>()
    };
    let mut lines: Vec<(String, u64)> = Vec::new();
    for aggregate in &aggregates {
        let phase = aggregate.phase;
        let weight = match phase {
            Phase::Serve | Phase::ShardDispatch => {
                aggregate.total_nanos.saturating_sub(nested_in(phase))
            }
            _ => aggregate.total_nanos,
        };
        if weight == 0 {
            continue;
        }
        let path: Vec<&str> = stack_path(phase).iter().map(|p| p.name()).collect();
        lines.push((path.join(";"), weight));
    }
    lines.sort();
    let mut out = String::new();
    for (path, weight) in lines {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    const NO_SHARD: u32 = crate::tracer::SpanRecord::NO_SHARD;

    fn span(
        request_id: u64,
        phase: Phase,
        shard: u32,
        start_nanos: u64,
        duration_nanos: u64,
    ) -> SpanRecord {
        SpanRecord {
            request_id,
            session: 1,
            phase,
            shard,
            node: 0,
            start_nanos,
            duration_nanos,
        }
    }

    #[test]
    fn aggregates_fold_counts_totals_and_maxima_in_pipeline_order() {
        let spans = vec![
            span(1, Phase::Round, 0, 10, 5),
            span(2, Phase::Round, 1, 20, 9),
            span(1, Phase::Submit, NO_SHARD, 0, 2),
        ];
        let aggregates = aggregate_phases(&spans);
        assert_eq!(aggregates.len(), 2);
        assert_eq!(aggregates[0].phase, Phase::Submit, "pipeline order");
        assert_eq!(aggregates[1].phase, Phase::Round);
        assert_eq!(aggregates[1].count, 2);
        assert_eq!(aggregates[1].total_nanos, 14);
        assert_eq!(aggregates[1].max_nanos, 9);
    }

    #[test]
    fn waterfalls_keep_the_top_k_slowest_with_relative_starts() {
        let mut spans = Vec::new();
        // 20 requests, request i spans [100*i, 100*i + 10 + i).
        for i in 1..=20u64 {
            spans.push(span(i, Phase::Serve, NO_SHARD, 100 * i, 10 + i));
            spans.push(span(i, Phase::Round, 0, 100 * i + 2, 3));
        }
        // Unattributed span: never becomes a waterfall.
        spans.push(span(0, Phase::QueueWait, 0, 0, 999_999));
        let waterfalls = assemble_waterfalls(&spans);
        assert_eq!(waterfalls.len(), WATERFALL_TOP_K);
        assert_eq!(waterfalls[0].request_id, 20, "slowest first");
        assert_eq!(waterfalls[0].total_nanos, 30);
        assert!(waterfalls
            .windows(2)
            .all(|w| w[0].total_nanos >= w[1].total_nanos));
        let spans = &waterfalls[0].spans;
        assert_eq!(spans[0].start_nanos, 0, "starts are relative");
        assert_eq!(spans[1].start_nanos, 2);
    }

    #[test]
    fn waterfall_ties_break_by_ascending_request_id() {
        let spans: Vec<SpanRecord> = (1..=12u64)
            .map(|i| span(i, Phase::Serve, NO_SHARD, 50 * i, 7))
            .collect();
        let waterfalls = assemble_waterfalls(&spans);
        let ids: Vec<u64> = waterfalls.iter().map(|w| w.request_id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn collapsed_stacks_report_wrapper_self_time_and_parse_as_folded() {
        let spans = vec![
            span(1, Phase::Serve, NO_SHARD, 0, 100),
            span(1, Phase::Submit, NO_SHARD, 1, 10),
            span(1, Phase::ShardDispatch, 0, 20, 60),
            span(1, Phase::LpCold, 0, 25, 30),
            span(1, Phase::Round, 0, 60, 15),
            span(0, Phase::QueueWait, 0, 0, 40),
        ];
        let folded = collapsed_stacks(&spans);
        let lines: Vec<&str> = folded.lines().collect();
        // Every line is `frame(;frame)* weight` with a positive weight.
        for line in &lines {
            let (path, weight) = line.rsplit_once(' ').expect("weight separator");
            assert!(!path.is_empty() && !path.starts_with(';') && !path.ends_with(';'));
            assert!(weight.parse::<u64>().expect("numeric weight") > 0);
        }
        let weight_of = |path: &str| {
            lines
                .iter()
                .find(|l| l.starts_with(path) && l.as_bytes()[path.len()] == b' ')
                .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
        };
        // Serve self = 100 - (10 submit + 60 dispatch); dispatch self =
        // 60 - (30 lp + 15 round).
        assert_eq!(weight_of("Serve"), Some(30));
        assert_eq!(weight_of("Serve;ShardDispatch"), Some(15));
        assert_eq!(weight_of("Serve;ShardDispatch;LpCold"), Some(30));
        assert_eq!(weight_of("QueueWait"), Some(40));
        // Total folded weight equals total span time (self-time is a
        // partition when nesting is consistent).
        let folded_total: u64 = lines
            .iter()
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
            .sum();
        let span_roots = 100 + 40; // Serve wall + QueueWait (others nest)
        assert_eq!(folded_total, span_roots);
    }

    #[test]
    fn wrapper_self_time_clamps_at_zero() {
        // Two shards busy concurrently: nested time exceeds the serve wall.
        let spans = vec![
            span(1, Phase::Serve, NO_SHARD, 0, 50),
            span(1, Phase::ShardDispatch, 0, 5, 40),
            span(1, Phase::ShardDispatch, 1, 5, 40),
        ];
        let folded = collapsed_stacks(&spans);
        assert!(
            !folded.contains("Serve \n") && !folded.lines().any(|l| l == "Serve 0"),
            "clamped zero self-time lines are omitted: {folded:?}"
        );
        assert!(folded.contains("Serve;ShardDispatch 80\n"));
    }

    #[test]
    fn empty_spans_fold_to_empty_everything() {
        assert!(aggregate_phases(&[]).is_empty());
        assert!(assemble_waterfalls(&[]).is_empty());
        assert_eq!(collapsed_stacks(&[]), "");
    }
}
