//! The metrics registry: one ordered builder for every exported series.
//!
//! `StatsSnapshot::metrics()`, the `QueryMetrics` wire response and the JSON
//! reports all serve the same list of `(name, value)` pairs; this builder is
//! the single place that list is assembled, so the naming conventions
//! (counts as exact floats, times in seconds, rates NaN-guarded to `0.0`)
//! cannot drift between exporters.

use crate::histogram::HistogramSnapshot;

/// An ordered list of named metrics under construction.
///
/// Values are `f64` because that is what JSON and the wire serve; counters
/// are exact up to 2^53, far beyond any run this workspace produces.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, f64)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// A monotonically increasing count.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.entries.push((name.into(), value as f64));
    }

    /// A point-in-time value. Non-finite inputs (a 0/0 rate, an overflowed
    /// ratio) are uniformly guarded to `0.0` — exporters never see NaN.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        let value = if value.is_finite() { value } else { 0.0 };
        self.entries.push((name.into(), value));
    }

    /// A cumulative duration, converted to seconds.
    pub fn seconds(&mut self, name: impl Into<String>, nanos: u64) {
        self.entries.push((name.into(), nanos as f64 / 1e9));
    }

    /// The standard latency-distribution quadruple for `base`:
    /// `mean_<base>_seconds`, `p50_<base>_seconds`, `p95_<base>_seconds`,
    /// `p99_<base>_seconds`. All `0.0` for an empty histogram.
    pub fn latency(&mut self, base: &str, histogram: &HistogramSnapshot) {
        self.gauge(format!("mean_{base}_seconds"), histogram.mean_seconds());
        self.gauge(
            format!("p50_{base}_seconds"),
            histogram.quantile_seconds(0.50),
        );
        self.gauge(
            format!("p95_{base}_seconds"),
            histogram.quantile_seconds(0.95),
        );
        self.gauge(
            format!("p99_{base}_seconds"),
            histogram.quantile_seconds(0.99),
        );
    }

    /// The finished, ordered list.
    pub fn finish(self) -> Vec<(String, f64)> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::AtomicHistogram;

    #[test]
    fn entries_keep_insertion_order_and_guard_nan() {
        let mut registry = MetricsRegistry::new();
        registry.counter("requests", 41);
        registry.gauge("rate", f64::NAN);
        registry.gauge("ratio", f64::INFINITY);
        registry.seconds("busy_seconds", 1_500_000_000);
        let metrics = registry.finish();
        assert_eq!(
            metrics,
            vec![
                ("requests".to_string(), 41.0),
                ("rate".to_string(), 0.0),
                ("ratio".to_string(), 0.0),
                ("busy_seconds".to_string(), 1.5),
            ]
        );
    }

    #[test]
    fn latency_quadruple_is_zero_when_empty_and_ordered() {
        let mut registry = MetricsRegistry::new();
        registry.latency("lp", &HistogramSnapshot::default());
        let histogram = AtomicHistogram::new();
        for i in 1..=100u64 {
            histogram.record_nanos(i * 1_000_000);
        }
        registry.latency("round", &histogram.snapshot());
        let metrics = registry.finish();
        let names: Vec<&str> = metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "mean_lp_seconds",
                "p50_lp_seconds",
                "p95_lp_seconds",
                "p99_lp_seconds",
                "mean_round_seconds",
                "p50_round_seconds",
                "p95_round_seconds",
                "p99_round_seconds",
            ]
        );
        for (name, value) in &metrics {
            assert!(value.is_finite(), "{name} must be finite");
            if name.ends_with("lp_seconds") {
                assert_eq!(*value, 0.0, "{name} of an empty histogram");
            } else {
                assert!(*value > 0.0, "{name} of a populated histogram");
            }
        }
        // p50 <= p95 <= p99 on the populated quadruple.
        let get = |needle: &str| {
            metrics
                .iter()
                .find(|(n, _)| n == needle)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(get("p50_round_seconds") <= get("p95_round_seconds"));
        assert!(get("p95_round_seconds") <= get("p99_round_seconds"));
    }
}
