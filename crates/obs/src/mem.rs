//! Byte-level memory accounting.
//!
//! "Millions of users" is a memory claim as much as a throughput claim, so
//! the fabric needs to know what its long-lived state *weighs*.
//! [`MemoryFootprint`] is the one-method trait the engine implements across
//! its session store, pending-event queues, served solutions, shadow
//! instances and factor caches; the totals surface as `mem_*` gauges in
//! `StatsSnapshot::metrics()` and as columns in the telemetry ring.
//!
//! The accounting convention is **capacity accounting**, not RSS: each
//! structure reports the heap bytes its payload occupies, computed
//! arithmetically from its dimensions in O(1) — no allocator introspection,
//! no data walks on the serve path. Shared `Arc` payloads are attributed to
//! every holder (a session and a cache both "own" a factor matrix they
//! share), which is the number capacity planning wants: what it would cost
//! to hold this state without sharing. Tests pin the aggregate within ±15%
//! of an independently computed deep size.

/// Heap bytes attributed to a value. Implementations must be O(1) and
/// read-side only — a footprint call may never allocate, lock the serve
/// path, or mutate the structure it measures.
pub trait MemoryFootprint {
    /// Attributed heap bytes (capacity accounting; see the module docs).
    fn footprint_bytes(&self) -> u64;
}

/// Heap bytes of a `Vec<T>`-shaped buffer of `len` elements (payload only;
/// add [`VEC_HEADER_BYTES`] when the vector header itself is heap-held).
pub fn vec_footprint<T>(len: usize) -> u64 {
    (len * std::mem::size_of::<T>()) as u64
}

/// Size of a `Vec` header (pointer + length + capacity) on this target.
pub const VEC_HEADER_BYTES: u64 = 24;

/// Approximate per-entry overhead of a `std::collections::HashMap`:
/// control bytes plus padding on top of the `(K, V)` payload. SwissTable
/// keeps one control byte per slot at ~⅞ load; 16 covers slack buckets.
pub const MAP_ENTRY_OVERHEAD_BYTES: u64 = 16;

impl<T: MemoryFootprint> MemoryFootprint for [T] {
    fn footprint_bytes(&self) -> u64 {
        self.iter().map(MemoryFootprint::footprint_bytes).sum()
    }
}

impl<T: MemoryFootprint> MemoryFootprint for Vec<T> {
    fn footprint_bytes(&self) -> u64 {
        vec_footprint::<T>(self.len()) + self.as_slice().footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Blob(u64);

    impl MemoryFootprint for Blob {
        fn footprint_bytes(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn vec_footprint_counts_payload_bytes() {
        assert_eq!(vec_footprint::<u64>(10), 80);
        assert_eq!(vec_footprint::<u8>(3), 3);
        assert_eq!(vec_footprint::<u64>(0), 0);
    }

    #[test]
    fn vec_of_footprints_sums_elements_plus_inline_size() {
        let blobs = vec![Blob(100), Blob(200)];
        // 2 × size_of::<Blob>() inline + the attributed payloads.
        assert_eq!(blobs.footprint_bytes(), vec_footprint::<Blob>(2) + 300);
        let empty: Vec<Blob> = Vec::new();
        assert_eq!(empty.footprint_bytes(), 0);
    }
}
