//! Log-bucketed HDR-style latency histograms.
//!
//! Latencies span six orders of magnitude (a cached query is nanoseconds, a
//! full LP flush is milliseconds), so linear buckets are useless. These
//! histograms use the classic HDR layout: values below 16 ns get exact
//! buckets; above that, each power-of-two range is split into 16 linear
//! sub-buckets. Quantiles are reported at bucket midpoints, bounding the
//! (two-sided) relative error at half a sub-bucket ≈ 1/32 ≈ 3%, while
//! keeping the whole histogram a fixed 976-slot array that records in O(1)
//! and merges by element-wise addition.
//!
//! Three shapes share the bucket layout:
//!
//! * [`LatencyHistogram`] — single-threaded, records [`Duration`]s; the load
//!   drivers' per-request-class histograms (this type lived in
//!   `svgic-workload` before the obs crate existed; it moved here so the
//!   engine can use the same buckets, and `svgic_workload::histogram`
//!   re-exports it unchanged).
//! * [`AtomicHistogram`] — the same buckets over `AtomicU64` slots, for
//!   concurrent recording from shard worker threads inside engine stats.
//! * [`HistogramSnapshot`] — a compact, mergeable, `Eq`-comparable frozen
//!   copy (sparse non-zero slots only) that rides inside `StatsSnapshot`
//!   and across the `svgic-net` wire.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const SUB_BUCKET_BITS: u32 = 4;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS; // 16
const NUM_BUCKETS: usize = (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS; // 960
/// Number of slots in the fixed bucket layout (exposed so decoders can
/// validate slot indices before building a snapshot).
pub const TOTAL_SLOTS: usize = SUB_BUCKETS + NUM_BUCKETS; // 976

/// A fixed-size log-bucketed histogram of durations (recorded in
/// nanoseconds).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_nanos: u128,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn slot_of(nanos: u64) -> usize {
    if nanos < SUB_BUCKETS as u64 {
        return nanos as usize;
    }
    let exp = 63 - nanos.leading_zeros(); // >= SUB_BUCKET_BITS
    let sub = ((nanos >> (exp - SUB_BUCKET_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (exp - SUB_BUCKET_BITS + 1) as usize * SUB_BUCKETS + sub
}

/// Lower bound of a slot's value range.
fn slot_lower_bound(slot: usize) -> u64 {
    if slot < SUB_BUCKETS {
        return slot as u64;
    }
    let exp = (slot / SUB_BUCKETS - 1) as u32 + SUB_BUCKET_BITS;
    let sub = (slot % SUB_BUCKETS) as u64;
    (1u64 << exp) | (sub << (exp - SUB_BUCKET_BITS))
}

/// Representative value of a slot: its midpoint. Using the lower bound would
/// bias every reported quantile low by up to a full sub-bucket (1/16
/// relative); the midpoint makes the error two-sided and halves it. Slots
/// below [`SUB_BUCKETS`] hold exactly one integer value and are exact.
fn slot_value(slot: usize) -> u64 {
    let lower = slot_lower_bound(slot);
    if slot < SUB_BUCKETS {
        return lower;
    }
    let exp = (slot / SUB_BUCKETS - 1) as u32 + SUB_BUCKET_BITS;
    let width = 1u64 << (exp - SUB_BUCKET_BITS);
    lower + width / 2
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; TOTAL_SLOTS],
            total: 0,
            sum_nanos: 0,
            max_nanos: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.counts[slot_of(nanos)] += 1;
        self.total += 1;
        self.sum_nanos += nanos as u128;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// Exact mean of recorded samples (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((self.sum_nanos / self.total as u128) as u64)
        }
    }

    /// The quantile `q ∈ [0, 1]`, reported at the containing bucket's
    /// midpoint: the error is two-sided and at most half a sub-bucket
    /// (≈ 1/32 relative). The exact max is returned for the top quantile.
    ///
    /// An empty histogram has no quantiles; by contract this returns
    /// [`Duration::ZERO`] then (it is the documented "no data" value, tested
    /// alongside `mean`/`max`, not an incidental fall-through).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        if rank >= self.total {
            return self.max();
        }
        let mut seen = 0u64;
        for (slot, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Never report a bucket bound above the true max.
                return Duration::from_nanos(slot_value(slot).min(self.max_nanos));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_nanos += other.sum_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }
}

/// The same bucket layout over atomic slots: shard worker threads record
/// concurrently with relaxed ordering, snapshots are taken between batches.
///
/// A snapshot taken while recorders are mid-flight may be off by in-flight
/// samples (the slots are independently atomic, not jointly linearizable) —
/// exactly the semantics the rest of the engine's counter stats already
/// have.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: (0..TOTAL_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// Records one sample, in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        // lint: allow(relaxed-store, bucket counters are independent; a scrape mid-record is off by one sample at worst)
        self.counts[slot_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        // Saturating: 2^64 ns is ~585 years of cumulative latency.
        let _ = self
            // lint: allow(relaxed-store, cumulative sum; a torn mean is transient and self-corrects)
            .sum_nanos
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |sum| {
                Some(sum.saturating_add(nanos))
            });
        // lint: allow(relaxed-store, high-water mark; fetch_max keeps it monotonic regardless of order)
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Freezes the current contents into a compact snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut slots = Vec::new();
        for (slot, count) in self.counts.iter().enumerate() {
            let count = count.load(Ordering::Relaxed);
            if count > 0 {
                slots.push((slot as u32, count));
            }
        }
        let total = slots.iter().map(|&(_, c)| c).sum();
        HistogramSnapshot {
            slots,
            total,
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every slot and counter.
    pub fn reset(&self) {
        // lint: allow(relaxed-store, reset is a measurement boundary; writers are quiesced between runs)
        for count in &self.counts {
            count.store(0, Ordering::Relaxed);
        }
        // lint: allow(relaxed-store, reset is a measurement boundary; writers are quiesced between runs)
        self.total.store(0, Ordering::Relaxed);
        self.sum_nanos.store(0, Ordering::Relaxed);
        self.max_nanos.store(0, Ordering::Relaxed);
    }
}

/// A frozen, compact histogram: only the non-zero slots, plus exact total,
/// sum and max. Cheap to clone, merge and compare ([`Eq`] holds because
/// everything is integer nanoseconds), and small on the wire — a histogram
/// with k busy buckets costs 12k + O(1) bytes instead of 7.8 KiB.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(slot, count)` pairs, strictly ascending by slot, counts non-zero.
    slots: Vec<(u32, u64)>,
    total: u64,
    sum_nanos: u64,
    max_nanos: u64,
}

impl HistogramSnapshot {
    /// Rebuilds a snapshot from its sparse parts (the wire decoder's
    /// entrance). Rejects out-of-range slots, zero counts, unordered or
    /// duplicate slots and totals that overflow — a hostile payload cannot
    /// construct an inconsistent histogram.
    pub fn from_pairs(
        slots: Vec<(u32, u64)>,
        sum_nanos: u64,
        max_nanos: u64,
    ) -> Result<HistogramSnapshot, &'static str> {
        let mut total: u64 = 0;
        let mut previous: Option<u32> = None;
        for &(slot, count) in &slots {
            if slot as usize >= TOTAL_SLOTS {
                return Err("histogram slot out of range");
            }
            if count == 0 {
                return Err("histogram slot with zero count");
            }
            if previous.is_some_and(|p| p >= slot) {
                return Err("histogram slots not strictly ascending");
            }
            previous = Some(slot);
            total = total
                .checked_add(count)
                .ok_or("histogram total overflows")?;
        }
        if total == 0 && (sum_nanos != 0 || max_nanos != 0) {
            return Err("empty histogram with non-zero sum or max");
        }
        Ok(HistogramSnapshot {
            slots,
            total,
            sum_nanos,
            max_nanos,
        })
    }

    /// The sparse `(slot, count)` pairs, ascending by slot.
    pub fn pairs(&self) -> &[(u32, u64)] {
        &self.slots
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Cumulative nanoseconds (saturating at `u64::MAX`).
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos
    }

    /// Exact maximum sample in nanoseconds.
    pub fn max_nanos(&self) -> u64 {
        self.max_nanos
    }

    /// Exact mean in seconds; `0.0` (never NaN) when empty.
    pub fn mean_seconds(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.total as f64 / 1e9
        }
    }

    /// The quantile in seconds, at bucket midpoints like
    /// [`LatencyHistogram::quantile`]; `0.0` when empty.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        self.quantile_nanos(q) as f64 / 1e9
    }

    /// The quantile in nanoseconds, at bucket midpoints; `0` when empty, the
    /// exact max at the top.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        if rank >= self.total {
            return self.max_nanos;
        }
        let mut seen = 0u64;
        for &(slot, count) in &self.slots {
            seen += count;
            if seen >= rank {
                return slot_value(slot as usize).min(self.max_nanos);
            }
        }
        self.max_nanos
    }

    /// Fraction of samples above `nanos`, at bucket resolution: a slot
    /// counts as "above" when its representative midpoint exceeds `nanos`,
    /// so the error is bounded like the quantiles' (half a sub-bucket).
    /// Exact at the edges: `0.0` when empty or when `nanos` is at or above
    /// the true max.
    pub fn fraction_above(&self, nanos: u64) -> f64 {
        if self.total == 0 || nanos >= self.max_nanos {
            return 0.0;
        }
        let above: u64 = self
            .slots
            .iter()
            .filter(|&&(slot, _)| slot_value(slot as usize) > nanos)
            .map(|&(_, count)| count)
            .sum();
        above as f64 / self.total as f64
    }

    /// Merges another snapshot into this one (slot-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(self.slots.len() + other.slots.len());
        let (mut a, mut b) = (self.slots.iter().peekable(), other.slots.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(sa, ca)), Some(&&(sb, cb))) => {
                    if sa == sb {
                        merged.push((sa, ca + cb));
                        a.next();
                        b.next();
                    } else if sa < sb {
                        merged.push((sa, ca));
                        a.next();
                    } else {
                        merged.push((sb, cb));
                        b.next();
                    }
                }
                (Some(&&pair), None) => {
                    merged.push(pair);
                    a.next();
                }
                (None, Some(&&pair)) => {
                    merged.push(pair);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.slots = merged;
        self.total += other.total;
        self.sum_nanos = self.sum_nanos.saturating_add(other.sum_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_monotone_and_cover_u64() {
        let mut previous = 0usize;
        for exp in 0..64u32 {
            let v = 1u64 << exp;
            for probe in [v, v + (v >> 1)] {
                let slot = slot_of(probe);
                assert!(slot < TOTAL_SLOTS, "slot {slot} for {probe}");
                assert!(
                    slot >= previous,
                    "slots must be monotone in the sample: {slot} < {previous} at {probe}"
                );
                assert!(
                    slot_lower_bound(slot) <= probe,
                    "slot lower bound {} above sample {probe}",
                    slot_lower_bound(slot)
                );
                // The representative midpoint stays inside the bucket: at or
                // above the lower bound, and below the next slot's lower
                // bound (when one exists).
                assert!(slot_value(slot) >= slot_lower_bound(slot));
                if slot + 1 < TOTAL_SLOTS {
                    assert!(
                        slot_value(slot) < slot_lower_bound(slot + 1),
                        "midpoint of slot {slot} spills into the next bucket"
                    );
                }
                previous = slot;
            }
        }
        assert!(slot_of(u64::MAX) < TOTAL_SLOTS);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let mut h = LatencyHistogram::new();
        for micros in 1..=1000u64 {
            h.record(Duration::from_micros(micros));
        }
        // Midpoint representatives bound the error two-sidedly at half a
        // sub-bucket (1/32 ≈ 3.1%) plus the discretisation of the uniform
        // grid itself; assert both directions at a 4% band.
        for (q, expected) in [(0.25, 250.0), (0.50, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.quantile(q).as_nanos() as f64 / 1000.0;
            let relative = (got - expected) / expected;
            assert!(
                relative.abs() < 0.04,
                "q{q}: got {got}µs, expected {expected}µs ({:+.2}% off)",
                100.0 * relative
            );
        }
        assert_eq!(h.quantile(1.0), Duration::from_micros(1000));
        assert_eq!(h.max(), Duration::from_micros(1000));
        assert_eq!(h.count(), 1000);
        let mean = h.mean().as_micros();
        assert!((499..=502).contains(&mean), "mean {mean}");
    }

    #[test]
    fn midpoint_representative_is_not_biased_low() {
        // Every sample sits at the same value: a full sub-bucket above its
        // bucket's lower bound would be a +6% error, the lower bound itself a
        // -6% error. The midpoint must land within half a sub-bucket.
        let mut h = LatencyHistogram::new();
        // Top of the first sub-bucket of the 2^19 octave: the lower bound is
        // 32767 ns (-5.9%) away — the old lower-bound representative fails
        // this band, the midpoint is -2.9% and passes.
        let value = (1u64 << 19) + (1u64 << 15) - 1;
        for _ in 0..100 {
            h.record(Duration::from_nanos(value));
        }
        for q in [0.1, 0.5, 0.9] {
            let got = h.quantile(q).as_nanos() as f64;
            let relative = (got - value as f64) / value as f64;
            assert!(
                relative.abs() <= 1.0 / 32.0 + 1e-9,
                "q{q}: {got} vs {value} ({:+.2}%)",
                100.0 * relative
            );
        }
        // The top quantile still reports the exact max, never a midpoint
        // above it.
        assert_eq!(h.quantile(1.0), Duration::from_nanos(value));
    }

    #[test]
    fn empty_histogram_quantile_is_the_documented_zero() {
        let h = LatencyHistogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Duration::ZERO);
        }
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..500u64 {
            let d = Duration::from_nanos(17 * i * i + 3);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            whole.record(d);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn atomic_histogram_snapshot_matches_serial_recording() {
        let atomic = AtomicHistogram::new();
        let mut serial = LatencyHistogram::new();
        for i in 0..2000u64 {
            let nanos = 13 * i * i + 7;
            atomic.record_nanos(nanos);
            serial.record(Duration::from_nanos(nanos));
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), serial.count());
        assert_eq!(snap.max_nanos(), serial.max().as_nanos() as u64);
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(
                snap.quantile_nanos(q),
                serial.quantile(q).as_nanos() as u64,
                "q{q}"
            );
        }
        let mean_err = (snap.mean_seconds() * 1e9 - serial.mean().as_nanos() as f64).abs();
        assert!(mean_err < 1.0, "means differ by {mean_err} ns");
        atomic.reset();
        let empty = atomic.snapshot();
        assert!(empty.is_empty());
        assert_eq!(empty, HistogramSnapshot::default());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let histogram = std::sync::Arc::new(AtomicHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let histogram = std::sync::Arc::clone(&histogram);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        histogram.record_nanos(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let snap = histogram.snapshot();
        assert_eq!(snap.count(), 40_000);
        assert_eq!(snap.max_nanos(), 3 * 1_000_000 + 9_999);
    }

    #[test]
    fn snapshot_merge_matches_joint_recording() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        let joint = AtomicHistogram::new();
        for i in 0..1000u64 {
            let nanos = 31 * i + 5;
            if i % 3 == 0 {
                a.record_nanos(nanos);
            } else {
                b.record_nanos(nanos);
            }
            joint.record_nanos(nanos);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, joint.snapshot());
    }

    #[test]
    fn concurrent_totals_are_exact_and_quantiles_stay_in_error_bound() {
        // Heavier sibling of `concurrent_recording_loses_nothing`: eight
        // threads record disjoint deterministic streams; the merged totals
        // and sum must be *exact*, and every quantile must match a serial
        // reference histogram recorded with the same samples.
        let threads = 8u64;
        let per_thread = 25_000u64;
        let value_of = |t: u64, i: u64| (t + 1) * 977 + i * i % 50_000_000;
        let histogram = std::sync::Arc::new(AtomicHistogram::new());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let histogram = std::sync::Arc::clone(&histogram);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        histogram.record_nanos(value_of(t, i));
                    }
                })
            })
            .collect();
        let mut serial = LatencyHistogram::new();
        let mut all: Vec<u64> = Vec::new();
        for t in 0..threads {
            for i in 0..per_thread {
                let nanos = value_of(t, i);
                serial.record(Duration::from_nanos(nanos));
                all.push(nanos);
            }
        }
        let exact_sum: u128 = all.iter().map(|&n| n as u128).sum();
        all.sort_unstable();
        for handle in handles {
            handle.join().unwrap();
        }
        let snap = histogram.snapshot();
        assert_eq!(snap.count(), threads * per_thread, "lost samples");
        assert_eq!(snap.sum_nanos() as u128, exact_sum, "lost nanoseconds");
        assert_eq!(snap.max_nanos(), *all.last().unwrap());
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let concurrent = snap.quantile_nanos(q);
            // Same buckets, same totals: concurrent and serial quantiles
            // must be *identical* — any drift means a sample changed slots.
            assert_eq!(concurrent, serial.quantile(q).as_nanos() as u64, "q{q}");
            // And the documented error bound holds against the *true*
            // (sorted-sample) quantile: midpoint representatives are within
            // half a sub-bucket ≈ 1/32 relative.
            let rank = ((q * all.len() as f64).ceil() as usize).clamp(1, all.len());
            let truth = all[rank - 1];
            if truth > SUB_BUCKETS as u64 {
                let relative = (concurrent as f64 - truth as f64) / truth as f64;
                assert!(
                    relative.abs() <= 1.0 / 32.0 + 1e-9,
                    "q{q}: {concurrent} vs true {truth} ({:+.2}%)",
                    100.0 * relative
                );
            }
        }
    }

    #[test]
    fn concurrent_shards_merge_to_the_joint_snapshot() {
        // Thread-per-shard recording into separate histograms, merged
        // afterwards, must equal one histogram that saw everything — the
        // exact aggregation the per-shard engine stats rely on.
        let shards: Vec<_> = (0..4)
            .map(|_| std::sync::Arc::new(AtomicHistogram::new()))
            .collect();
        let joint = std::sync::Arc::new(AtomicHistogram::new());
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(t, shard)| {
                let shard = std::sync::Arc::clone(shard);
                let joint = std::sync::Arc::clone(&joint);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        let nanos = (t as u64 + 1) * 13 + i * 31;
                        shard.record_nanos(nanos);
                        joint.record_nanos(nanos);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let mut merged = HistogramSnapshot::default();
        for shard in &shards {
            merged.merge(&shard.snapshot());
        }
        assert_eq!(merged, joint.snapshot());
    }

    #[test]
    fn fraction_above_matches_recorded_distribution() {
        let h = AtomicHistogram::new();
        for _ in 0..900 {
            h.record_nanos(1_000);
        }
        for _ in 0..100 {
            h.record_nanos(10_000_000);
        }
        let snap = h.snapshot();
        let slow = snap.fraction_above(1_000_000);
        assert!((slow - 0.10).abs() < 1e-9, "slow fraction {slow}");
        // Threshold below everything: the whole mass is above.
        assert_eq!(snap.fraction_above(0), 1.0);
        // Threshold at/above the max is exactly zero.
        assert_eq!(snap.fraction_above(10_000_000), 0.0);
        assert_eq!(snap.fraction_above(u64::MAX), 0.0);
        // Empty histograms burn nothing.
        assert_eq!(HistogramSnapshot::default().fraction_above(0), 0.0);
    }

    #[test]
    fn hostile_pairs_are_rejected() {
        let ok = HistogramSnapshot::from_pairs(vec![(3, 2), (10, 1)], 100, 80).unwrap();
        assert_eq!(ok.count(), 3);
        assert!(HistogramSnapshot::from_pairs(vec![(TOTAL_SLOTS as u32, 1)], 1, 1).is_err());
        assert!(HistogramSnapshot::from_pairs(vec![(3, 0)], 0, 0).is_err());
        assert!(HistogramSnapshot::from_pairs(vec![(5, 1), (5, 2)], 3, 3).is_err());
        assert!(HistogramSnapshot::from_pairs(vec![(9, 1), (4, 2)], 3, 3).is_err());
        assert!(HistogramSnapshot::from_pairs(vec![(1, u64::MAX), (2, 1)], 0, 0).is_err());
        assert!(HistogramSnapshot::from_pairs(vec![], 7, 0).is_err());
    }

    #[test]
    fn snapshot_roundtrips_through_pairs() {
        let atomic = AtomicHistogram::new();
        for i in 0..100u64 {
            atomic.record_nanos(1000 * i);
        }
        let snap = atomic.snapshot();
        let rebuilt = HistogramSnapshot::from_pairs(
            snap.pairs().to_vec(),
            snap.sum_nanos(),
            snap.max_nanos(),
        )
        .unwrap();
        assert_eq!(rebuilt, snap);
    }
}
