//! Tick-driven time-series sampling.
//!
//! Point-in-time counters answer "where is the engine *now*"; capacity
//! planning needs "where has it been *all run*". [`TelemetryRing`] is a
//! fixed-capacity ring of [`TelemetrySample`]s — one compact, all-integer
//! row per driver tick (requests, solves, queue depth, warm rate, shard
//! imbalance, memory gauges) — pushed on the deterministic tick cadence the
//! load drivers already impose (one `Flush` per tick), never from a
//! wall-clock timer. The ring is strictly read-side: sampling on vs. off
//! yields byte-identical config digests, the same contract the tracer
//! keeps.
//!
//! Rates ride as parts-per-million integers so a sample is `Eq`-comparable
//! and codecs stay fixed-width; [`TelemetrySample::warm_start_rate`] and
//! friends convert back to floats for reports.

/// Scale factor for the integer-encoded rate fields: parts per million.
pub const RATE_PPM: u64 = 1_000_000;

/// One row of the time series: the engine's cumulative counters and live
/// gauges as observed at the end of one driver tick.
///
/// All fields are integers (rates in parts per million) so samples are
/// `Eq`-comparable, hashable and trivially fixed-width on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TelemetrySample {
    /// Tick index this sample was taken at (monotone within a ring).
    pub tick: u64,
    /// Cumulative requests handled.
    pub requests: u64,
    /// Cumulative LP solves.
    pub solves: u64,
    /// Live total queue depth across shards.
    pub queue_depth: u64,
    /// Warm-start rate in parts per million (`0..=RATE_PPM`).
    pub warm_rate_ppm: u64,
    /// Shard imbalance (max/mean busy-time ratio) in parts per million.
    pub imbalance_ppm: u64,
    /// Bytes held by session state (instances, index vectors, warm
    /// factors).
    pub mem_session_bytes: u64,
    /// Bytes held by pending (coalesced, un-flushed) event queues.
    pub mem_pending_bytes: u64,
    /// Bytes held by served solutions.
    pub mem_served_bytes: u64,
    /// Bytes held by per-shard factor and component caches.
    pub mem_cache_bytes: u64,
    /// Total accounted bytes (the sum of the other `mem_*` gauges).
    pub mem_total_bytes: u64,
}

impl TelemetrySample {
    /// Warm-start rate as a fraction in `[0, 1]`.
    pub fn warm_start_rate(&self) -> f64 {
        self.warm_rate_ppm as f64 / RATE_PPM as f64
    }

    /// Shard imbalance as a plain ratio (`1.0` = perfectly balanced).
    pub fn shard_imbalance(&self) -> f64 {
        self.imbalance_ppm as f64 / RATE_PPM as f64
    }
}

/// Encodes a fraction as parts per million, guarding non-finite and
/// negative inputs to `0` (the same NaN discipline as the metrics
/// registry).
pub fn rate_to_ppm(rate: f64) -> u64 {
    if rate.is_finite() && rate > 0.0 {
        (rate * RATE_PPM as f64).round() as u64
    } else {
        0
    }
}

/// A fixed-capacity ring of [`TelemetrySample`]s: pushing beyond capacity
/// evicts the oldest sample, so a long soak keeps the most recent window
/// at a bounded, predictable cost. Capacity 0 disables the ring entirely
/// (pushes are dropped) — that is the sampler's off switch.
#[derive(Clone, Debug, Default)]
pub struct TelemetryRing {
    samples: Vec<TelemetrySample>,
    capacity: usize,
    /// Index of the oldest sample once the ring has wrapped.
    start: usize,
}

impl TelemetryRing {
    /// A ring holding at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        TelemetryRing {
            samples: Vec::with_capacity(capacity.min(1024)),
            capacity,
            start: 0,
        }
    }

    /// The configured capacity (0 = sampling disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether pushes are recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the ring holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Records one sample, evicting the oldest if the ring is full. A
    /// zero-capacity ring drops the sample.
    pub fn push(&mut self, sample: TelemetrySample) {
        if self.capacity == 0 {
            return;
        }
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
        } else {
            self.samples[self.start] = sample;
            self.start = (self.start + 1) % self.capacity;
        }
    }

    /// The held samples in recording (tick) order, oldest first.
    pub fn samples(&self) -> Vec<TelemetrySample> {
        let mut out = Vec::with_capacity(self.samples.len());
        out.extend_from_slice(&self.samples[self.start..]);
        out.extend_from_slice(&self.samples[..self.start]);
        out
    }

    /// Discards every held sample (the warmup boundary: `reset_stats`
    /// clears the ring so reports only carry the measured window).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.start = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tick: u64) -> TelemetrySample {
        TelemetrySample {
            tick,
            requests: tick * 10,
            ..TelemetrySample::default()
        }
    }

    #[test]
    fn ring_keeps_most_recent_window_in_order() {
        let mut ring = TelemetryRing::new(3);
        assert!(ring.is_enabled());
        for tick in 0..7 {
            ring.push(sample(tick));
        }
        let ticks: Vec<u64> = ring.samples().iter().map(|s| s.tick).collect();
        assert_eq!(ticks, vec![4, 5, 6]);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut ring = TelemetryRing::new(10);
        for tick in 0..4 {
            ring.push(sample(tick));
        }
        let ticks: Vec<u64> = ring.samples().iter().map(|s| s.tick).collect();
        assert_eq!(ticks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_capacity_ring_is_the_off_switch() {
        let mut ring = TelemetryRing::new(0);
        assert!(!ring.is_enabled());
        ring.push(sample(1));
        assert!(ring.is_empty());
        assert_eq!(ring.samples(), Vec::new());
    }

    #[test]
    fn clear_resets_to_empty_and_recording_resumes() {
        let mut ring = TelemetryRing::new(2);
        ring.push(sample(0));
        ring.push(sample(1));
        ring.push(sample(2));
        ring.clear();
        assert!(ring.is_empty());
        ring.push(sample(9));
        let ticks: Vec<u64> = ring.samples().iter().map(|s| s.tick).collect();
        assert_eq!(ticks, vec![9]);
    }

    #[test]
    fn rate_encoding_roundtrips_and_guards_nan() {
        assert_eq!(rate_to_ppm(0.5), 500_000);
        assert_eq!(rate_to_ppm(1.0), RATE_PPM);
        assert_eq!(rate_to_ppm(f64::NAN), 0);
        assert_eq!(rate_to_ppm(f64::INFINITY), 0);
        assert_eq!(rate_to_ppm(-0.25), 0);
        let s = TelemetrySample {
            warm_rate_ppm: rate_to_ppm(0.75),
            imbalance_ppm: rate_to_ppm(1.25),
            ..TelemetrySample::default()
        };
        assert!((s.warm_start_rate() - 0.75).abs() < 1e-9);
        assert!((s.shard_imbalance() - 1.25).abs() < 1e-9);
    }
}
