//! SVGIC-ST experiments: Fig. 13 (total subgroup-size violations vs M, with
//! and without pre-partitioning) and Figs. 14–15 (SVGIC-ST utility vs M on
//! Timik-like and Epinions-like data, infeasible solutions scored as 0).

use crate::harness::{solve_with_method, ExperimentScale};
use crate::report::{FigureReport, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_baselines::{solve_prepartitioned, Method, PrePartitionMode};
use svgic_core::utility::total_utility_st;
use svgic_core::{StParams, SvgicInstance};
use svgic_datasets::{DatasetProfile, InstanceSpec};

fn st_instance(profile: DatasetProfile, scale: ExperimentScale, seed: u64) -> SvgicInstance {
    let (n, m, k) = match scale {
        ExperimentScale::Smoke => (9, 16, 3),
        ExperimentScale::Default => (25, 60, 5),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    InstanceSpec {
        num_users: n,
        num_items: m,
        num_slots: k,
        ..InstanceSpec::small(profile)
    }
    .build(&mut rng)
}

fn caps(scale: ExperimentScale, n: usize) -> Vec<usize> {
    match scale {
        ExperimentScale::Smoke => vec![3, n],
        ExperimentScale::Default => vec![3, 5, 10, 15, n],
    }
}

/// Fig. 13: total violation of the subgroup size constraint (in users) for
/// every baseline with ("-P") and without ("-NP") pre-partitioning, plus AVG.
pub fn fig13(scale: ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new(
        "fig13",
        "total subgroup-size violations vs M (baselines -P / -NP, AVG always feasible)",
    );
    for profile in [DatasetProfile::TimikLike, DatasetProfile::EpinionsLike] {
        let inst = st_instance(profile, scale, 6000 + profile as u64);
        let n = inst.num_users();
        let mut table = Table::new(
            format!("Fig. 13 [{}]: total violations vs M", profile.label()),
            &["method", "M", "violations", "feasible"],
        );
        for &m_cap in &caps(scale, n) {
            let st = StParams::new(0.5, m_cap);
            // AVG (ST-aware).
            let avg = solve_with_method(&inst, Method::Avg, 1, Some(&st), scale);
            table.push_row(vec![
                "AVG".into(),
                m_cap.to_string(),
                st.total_violation(&avg.configuration).to_string(),
                st.is_feasible(&avg.configuration).to_string(),
            ]);
            // Baselines with and without pre-partitioning.
            for method in [Method::Per, Method::Fmg, Method::Sdp, Method::Grf] {
                for (mode, suffix) in [
                    (PrePartitionMode::None, "-NP"),
                    (PrePartitionMode::Balanced, "-P"),
                ] {
                    let cfg = solve_prepartitioned(&inst, &st, method, mode, 1);
                    table.push_row(vec![
                        format!("{}{}", method.label(), suffix),
                        m_cap.to_string(),
                        st.total_violation(&cfg).to_string(),
                        st.is_feasible(&cfg).to_string(),
                    ]);
                }
            }
        }
        report.tables.push(table);
    }
    report
}

/// Figs. 14–15: total SVGIC-ST utility vs M; infeasible configurations are
/// scored as 0 exactly as in the paper.
pub fn fig14_15(scale: ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new(
        "fig14_15",
        "SVGIC-ST utility vs subgroup size constraint M (infeasible scored as 0)",
    );
    for (fig, profile) in [
        ("Fig. 14", DatasetProfile::TimikLike),
        ("Fig. 15", DatasetProfile::EpinionsLike),
    ] {
        let inst = st_instance(profile, scale, 6500 + profile as u64);
        let n = inst.num_users();
        let mut table = Table::new(
            format!("{fig} [{}]: SVGIC-ST utility vs M", profile.label()),
            &["M", "AVG", "PER-P", "FMG-P", "SDP-P", "GRF-P"],
        );
        for &m_cap in &caps(scale, n) {
            let st = StParams::new(0.5, m_cap);
            let avg = solve_with_method(&inst, Method::Avg, 2, Some(&st), scale);
            let mut values = vec![if st.is_feasible(&avg.configuration) {
                avg.utility
            } else {
                0.0
            }];
            for method in [Method::Per, Method::Fmg, Method::Sdp, Method::Grf] {
                let cfg = solve_prepartitioned(&inst, &st, method, PrePartitionMode::Balanced, 2);
                let utility = if st.is_feasible(&cfg) {
                    total_utility_st(&inst, &st, &cfg)
                } else {
                    0.0
                };
                values.push(utility);
            }
            table.push_numeric_row(format!("M={m_cap}"), &values);
        }
        report.tables.push(table);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_avg_is_always_feasible() {
        let report = fig13(ExperimentScale::Smoke);
        for table in &report.tables {
            for row in table.rows.iter().filter(|r| r[0] == "AVG") {
                assert_eq!(row[2], "0", "AVG produced violations: {row:?}");
                assert_eq!(row[3], "true");
            }
        }
    }

    #[test]
    fn fig13_prepartition_never_increases_violations() {
        let report = fig13(ExperimentScale::Smoke);
        for table in &report.tables {
            for method in ["PER", "FMG", "SDP", "GRF"] {
                // Compare per (method, M) pair.
                let np: Vec<&Vec<String>> = table
                    .rows
                    .iter()
                    .filter(|r| r[0] == format!("{method}-NP"))
                    .collect();
                let p: Vec<&Vec<String>> = table
                    .rows
                    .iter()
                    .filter(|r| r[0] == format!("{method}-P"))
                    .collect();
                for (a, b) in np.iter().zip(&p) {
                    let v_np: usize = a[2].parse().unwrap();
                    let v_p: usize = b[2].parse().unwrap();
                    assert!(v_p <= v_np, "{method} at M={}: -P {v_p} > -NP {v_np}", a[1]);
                }
            }
        }
    }

    #[test]
    fn fig14_15_avg_dominates_under_tight_caps() {
        let report = fig14_15(ExperimentScale::Smoke);
        assert_eq!(report.tables.len(), 2);
        for table in &report.tables {
            for row in &table.rows {
                let label = &row[0];
                let avg = table.value(label, "AVG").unwrap();
                assert!(avg >= 0.0);
                // AVG is always feasible so it is never scored 0 while a
                // baseline scores positive only when feasible.
                assert!(avg > 0.0, "{label}: AVG scored 0");
            }
        }
    }
}
