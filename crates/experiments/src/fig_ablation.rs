//! Ablations: Fig. 9(a) time-boxed exact MIP strategies vs AVG-D,
//! Fig. 9(b) effect of the two speed-up techniques (advanced LP transformation
//! and advanced focal-parameter sampling), and Fig. 12 sensitivity of AVG-D to
//! the balancing ratio `r`.

use std::time::{Duration, Instant};

use crate::harness::ExperimentScale;
use crate::report::{FigureReport, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_algorithms::avg::{solve_avg, AvgConfig, SamplingScheme};
use svgic_algorithms::avg_d::{solve_avg_d, AvgDConfig};
use svgic_algorithms::exact::{solve_exact, ExactConfig, ExactStrategy};
use svgic_algorithms::factors::{LpBackend, RelaxationOptions};
use svgic_core::SvgicInstance;
use svgic_datasets::{DatasetProfile, InstanceSpec};
use svgic_metrics::subgroup_metrics;

/// A timed ablation variant: returns `(time_ms, utility)`.
type VariantRunner<'a> = Box<dyn Fn() -> (f64, f64) + 'a>;

fn ablation_instance(scale: ExperimentScale, seed: u64) -> SvgicInstance {
    let (n, m, k) = match scale {
        ExperimentScale::Smoke => (8, 14, 3),
        ExperimentScale::Default => (20, 60, 6),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    InstanceSpec {
        num_users: n,
        num_items: m,
        num_slots: k,
        ..InstanceSpec::small(DatasetProfile::TimikLike)
    }
    .build(&mut rng)
}

/// Fig. 9(a): solution quality of time-boxed exact MIP strategies, normalized
/// by AVG-D, when given 200× / 1000× / 5000× the running time of AVG-D.
pub fn fig9a(scale: ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new(
        "fig9a",
        "time-boxed MIP strategies: objective normalized by AVG-D",
    );
    let inst = ablation_instance(scale, 31);
    // lint: allow(wall-clock, reported figure runtime; never fed back into configurations)
    let start = Instant::now();
    let avg_d = solve_avg_d(&inst, &AvgDConfig::default());
    let avg_d_time = start.elapsed().max(Duration::from_micros(200));

    // Budget multipliers relative to AVG-D's runtime; the absolute budget is
    // additionally capped so the whole sweep stays tractable (the paper's
    // point — no strategy catches AVG-D even at 5000x — survives the cap).
    let (multipliers, budget_cap): (Vec<u32>, Duration) = match scale {
        ExperimentScale::Smoke => (vec![20], Duration::from_millis(500)),
        ExperimentScale::Default => (vec![200, 1000, 5000], Duration::from_secs(5)),
    };
    let mut table = Table::new(
        "Fig. 9(a): MIP objective / AVG-D objective under a time budget",
        &["strategy", "budget multiplier", "normalized objective"],
    );
    for strategy in ExactStrategy::ip_strategies() {
        for &mult in &multipliers {
            let budget = (avg_d_time * mult).min(budget_cap);
            let sol = solve_exact(
                &inst,
                &ExactConfig {
                    strategy,
                    time_limit: Some(budget),
                    max_nodes: 50_000,
                    ..Default::default()
                },
            );
            table.push_row(vec![
                format!("{strategy:?}"),
                format!("{mult}x"),
                format!("{:.4}", sol.utility / avg_d.utility.max(1e-9)),
            ]);
        }
    }
    report.tables.push(table);
    report
}

/// Fig. 9(b): runtime of AVG / AVG-D with and without the advanced LP
/// transformation (`–ALP` uses the full per-slot LP_SVGIC) and without the
/// advanced focal-parameter sampling (`–AS` uses plain uniform sampling).
pub fn fig9b(scale: ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new("fig9b", "effect of the speed-up strategies");
    let inst = ablation_instance(scale, 37);
    let mut table = Table::new(
        "Fig. 9(b): execution time [ms] and utility of the ablated variants",
        &["variant", "time [ms]", "utility"],
    );
    let variants: Vec<(&str, VariantRunner<'_>)> = vec![
        (
            "AVG",
            Box::new(|| {
                // lint: allow(wall-clock, reported figure runtime; never fed back into configurations)
                let start = Instant::now();
                let sol = solve_avg(&inst, &AvgConfig::with_backend(LpBackend::ExactSimplex, 1));
                (start.elapsed().as_secs_f64() * 1e3, sol.utility)
            }),
        ),
        (
            "AVG-ALP (no LP transformation)",
            Box::new(|| {
                // lint: allow(wall-clock, reported figure runtime; never fed back into configurations)
                let start = Instant::now();
                let sol = solve_avg(&inst, &AvgConfig::with_backend(LpBackend::FullLpSvgic, 1));
                (start.elapsed().as_secs_f64() * 1e3, sol.utility)
            }),
        ),
        (
            "AVG-AS (no advanced sampling)",
            Box::new(|| {
                // lint: allow(wall-clock, reported figure runtime; never fed back into configurations)
                let start = Instant::now();
                let sol = solve_avg(
                    &inst,
                    &AvgConfig {
                        sampling: SamplingScheme::Plain,
                        max_idle_iterations: 2_000,
                        ..AvgConfig::with_backend(LpBackend::ExactSimplex, 1)
                    },
                );
                (start.elapsed().as_secs_f64() * 1e3, sol.utility)
            }),
        ),
        (
            "AVG-D",
            Box::new(|| {
                // lint: allow(wall-clock, reported figure runtime; never fed back into configurations)
                let start = Instant::now();
                let sol = solve_avg_d(
                    &inst,
                    &AvgDConfig {
                        relaxation: RelaxationOptions {
                            backend: LpBackend::ExactSimplex,
                            ..Default::default()
                        },
                        ..Default::default()
                    },
                );
                (start.elapsed().as_secs_f64() * 1e3, sol.utility)
            }),
        ),
        (
            "AVG-D-ALP (no LP transformation)",
            Box::new(|| {
                // lint: allow(wall-clock, reported figure runtime; never fed back into configurations)
                let start = Instant::now();
                let sol = solve_avg_d(
                    &inst,
                    &AvgDConfig {
                        relaxation: RelaxationOptions {
                            backend: LpBackend::FullLpSvgic,
                            ..Default::default()
                        },
                        ..Default::default()
                    },
                );
                (start.elapsed().as_secs_f64() * 1e3, sol.utility)
            }),
        ),
    ];
    for (label, f) in variants {
        let (ms, utility) = f();
        table.push_row(vec![
            label.to_string(),
            format!("{ms:.3}"),
            format!("{utility:.4}"),
        ]);
    }
    report.tables.push(table);
    report
}

/// Fig. 12: sensitivity of AVG-D to the balancing ratio `r`: utility,
/// execution time, normalized subgroup density and Intra% as `r` varies.
pub fn fig12(scale: ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new("fig12", "AVG-D sensitivity to the balancing ratio r");
    let inst = ablation_instance(scale, 53);
    let r_values = match scale {
        ExperimentScale::Smoke => vec![0.05, 0.25, 1.0],
        ExperimentScale::Default => vec![0.05, 0.1, 0.25, 0.5, 0.7, 1.0, 1.5, 2.0],
    };
    let mut table = Table::new(
        "Fig. 12: AVG-D vs r (utility, time, density, Intra%, subgroups/slot)",
        &[
            "r",
            "utility",
            "time [ms]",
            "normalized density",
            "Intra%",
            "subgroups/slot",
        ],
    );
    for &r in &r_values {
        // lint: allow(wall-clock, reported figure runtime; never fed back into configurations)
        let start = Instant::now();
        let sol = solve_avg_d(&inst, &AvgDConfig::with_ratio(r));
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let metrics = subgroup_metrics(&inst, &sol.configuration);
        table.push_row(vec![
            format!("{r:.2}"),
            format!("{:.4}", sol.utility),
            format!("{ms:.3}"),
            format!("{:.4}", metrics.normalized_density),
            format!("{:.1}%", 100.0 * metrics.intra_fraction),
            format!("{:.2}", metrics.avg_subgroups_per_slot),
        ]);
    }
    report.tables.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9a_normalized_objectives_do_not_exceed_reasonable_bounds() {
        let report = fig9a(ExperimentScale::Smoke);
        let table = &report.tables[0];
        assert_eq!(table.rows.len(), 5); // 5 strategies × 1 multiplier
        for row in &table.rows {
            let v: f64 = row[2].parse().unwrap();
            assert!(v.is_finite() && v > 0.0);
        }
    }

    #[test]
    fn fig9b_lists_all_variants() {
        let report = fig9b(ExperimentScale::Smoke);
        let table = &report.tables[0];
        assert_eq!(table.rows.len(), 5);
        for row in &table.rows {
            let utility: f64 = row[2].parse().unwrap();
            assert!(utility > 0.0, "{} produced no utility", row[0]);
        }
    }

    #[test]
    fn fig12_small_r_forms_fewer_subgroups_than_large_r() {
        let report = fig12(ExperimentScale::Smoke);
        let table = &report.tables[0];
        assert!(table.rows.len() >= 3);
        let first: f64 = table.rows.first().unwrap()[5].parse().unwrap();
        let last: f64 = table.rows.last().unwrap()[5].parse().unwrap();
        assert!(
            first <= last + 1e-9,
            "r = {} gives {first} subgroups/slot, r = {} gives {last}",
            table.rows.first().unwrap()[0],
            table.rows.last().unwrap()[0]
        );
    }
}
