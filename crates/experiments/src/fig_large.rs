//! Larger-scale experiments: Fig. 5 (utility vs n on Timik-like data),
//! Fig. 6 (the three dataset families), Fig. 7 (input utility models), and
//! Fig. 8 (execution-time scalability on Yelp-like data).
//!
//! The exact IP is excluded here, exactly as in the paper (it cannot finish at
//! these sizes); AVG/AVG-D rely on the structured LP backend when the model
//! grows past the exact-simplex threshold.

use crate::harness::{solve_with_methods, ExperimentScale};
use crate::report::{FigureReport, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_baselines::Method;
use svgic_core::SvgicInstance;
use svgic_datasets::models::UtilityModelKind;
use svgic_datasets::{DatasetProfile, InstanceSpec, UtilityModel};
use svgic_metrics::mean;

fn sized_instance(
    profile: DatasetProfile,
    n: usize,
    m: usize,
    k: usize,
    model: Option<UtilityModel>,
    seed: u64,
) -> SvgicInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    InstanceSpec {
        num_users: n,
        num_items: m,
        num_slots: k,
        model,
        ..InstanceSpec::small(profile)
    }
    .build(&mut rng)
}

fn scale_sizes(scale: ExperimentScale) -> (Vec<usize>, usize, usize) {
    // (n sweep, m, k)
    match scale {
        ExperimentScale::Smoke => (vec![8, 12], 20, 3),
        ExperimentScale::Default => (vec![15, 25, 40], 80, 6),
    }
}

/// Fig. 5: total SAVG utility vs the size of the user set on Timik-like data.
pub fn fig5(scale: ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new("fig5", "total SAVG utility vs n (Timik-like)");
    let methods = Method::polynomial();
    let header: Vec<&str> = std::iter::once("n")
        .chain(methods.iter().map(|m| m.label()))
        .collect();
    let mut table = Table::new("Fig. 5: total SAVG utility vs n", &header);
    let (n_values, m, k) = scale_sizes(scale);
    for &n in &n_values {
        let mut sums = vec![0.0; methods.len()];
        for sample in 0..scale.samples() {
            let inst = sized_instance(
                DatasetProfile::TimikLike,
                n,
                m,
                k,
                None,
                500 + n as u64 * 13 + sample as u64,
            );
            let runs = solve_with_methods(&inst, &methods, sample as u64, None, scale);
            for (i, r) in runs.iter().enumerate() {
                sums[i] += r.utility;
            }
        }
        let avg: Vec<f64> = sums.iter().map(|s| s / scale.samples() as f64).collect();
        table.push_numeric_row(format!("n={n}"), &avg);
    }
    report.tables.push(table);
    report
}

/// Fig. 6: total SAVG utility on the three dataset families.
pub fn fig6(scale: ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new("fig6", "total SAVG utility per dataset family");
    let methods = Method::polynomial();
    let header: Vec<&str> = std::iter::once("dataset")
        .chain(methods.iter().map(|m| m.label()))
        .collect();
    let mut table = Table::new("Fig. 6: total SAVG utility per dataset", &header);
    let (n_values, m, k) = scale_sizes(scale);
    let n = *n_values.last().unwrap();
    for profile in DatasetProfile::all() {
        let mut sums = vec![0.0; methods.len()];
        for sample in 0..scale.samples() {
            let inst = sized_instance(profile, n, m, k, None, 900 + sample as u64);
            let runs = solve_with_methods(&inst, &methods, sample as u64, None, scale);
            for (i, r) in runs.iter().enumerate() {
                sums[i] += r.utility;
            }
        }
        let avg: Vec<f64> = sums.iter().map(|s| s / scale.samples() as f64).collect();
        table.push_numeric_row(profile.label(), &avg);
    }
    report.tables.push(table);
    report
}

/// Fig. 7: total SAVG utility under the three simulated input models
/// (PIERT-like, AGREE-like, GREE-like) on Timik-like topology.
pub fn fig7(scale: ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new("fig7", "total SAVG utility per input utility model");
    let methods = Method::polynomial();
    let header: Vec<&str> = std::iter::once("model")
        .chain(methods.iter().map(|m| m.label()))
        .collect();
    let mut table = Table::new("Fig. 7: total SAVG utility per input model", &header);
    let (n_values, m, k) = scale_sizes(scale);
    let n = n_values[n_values.len() / 2];
    for kind in UtilityModelKind::all() {
        let model = UtilityModel {
            kind,
            ..DatasetProfile::TimikLike.utility_model()
        };
        let mut sums = vec![0.0; methods.len()];
        for sample in 0..scale.samples() {
            let inst = sized_instance(
                DatasetProfile::TimikLike,
                n,
                m,
                k,
                Some(model.clone()),
                1300 + sample as u64,
            );
            let runs = solve_with_methods(&inst, &methods, sample as u64, None, scale);
            for (i, r) in runs.iter().enumerate() {
                sums[i] += r.utility;
            }
        }
        let avg: Vec<f64> = sums.iter().map(|s| s / scale.samples() as f64).collect();
        table.push_numeric_row(kind.label(), &avg);
    }
    report.tables.push(table);
    report
}

/// Fig. 8: execution time vs n and vs m on Yelp-like data.
pub fn fig8(scale: ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new("fig8", "execution time on Yelp-like data");
    let methods = Method::polynomial();
    let header: Vec<&str> = std::iter::once("sweep")
        .chain(methods.iter().map(|m| m.label()))
        .collect();
    let (n_values, m, k) = scale_sizes(scale);

    let mut by_n = Table::new("Fig. 8(a): execution time [ms] vs n (Yelp-like)", &header);
    for &n in &n_values {
        let inst = sized_instance(DatasetProfile::YelpLike, n, m, k, None, 1700 + n as u64);
        let runs = solve_with_methods(&inst, &methods, 0, None, scale);
        by_n.push_numeric_row(
            format!("n={n}"),
            &runs
                .iter()
                .map(|r| r.elapsed.as_secs_f64() * 1e3)
                .collect::<Vec<_>>(),
        );
    }
    report.tables.push(by_n);

    let m_values = match scale {
        ExperimentScale::Smoke => vec![20usize, 40],
        ExperimentScale::Default => vec![40, 80, 160, 320],
    };
    let n = n_values[n_values.len() / 2];
    let mut by_m = Table::new("Fig. 8(b): execution time [ms] vs m (Yelp-like)", &header);
    for &m in &m_values {
        let inst = sized_instance(DatasetProfile::YelpLike, n, m, k, None, 2100 + m as u64);
        let runs = solve_with_methods(&inst, &methods, 0, None, scale);
        by_m.push_numeric_row(
            format!("m={m}"),
            &runs
                .iter()
                .map(|r| r.elapsed.as_secs_f64() * 1e3)
                .collect::<Vec<_>>(),
        );
    }
    report.tables.push(by_m);
    report
}

/// Convenience used by tests and EXPERIMENTS.md: the average improvement of
/// AVG over the strongest baseline across a report's rows (in percent).
pub fn avg_improvement_over_baselines(table: &Table) -> f64 {
    let mut improvements = Vec::new();
    for row in &table.rows {
        let label = &row[0];
        let avg = table
            .value(label, "AVG")
            .or_else(|| table.value(label, "AVG-D"))
            .unwrap_or(0.0);
        let best_baseline = ["PER", "FMG", "SDP", "GRF"]
            .iter()
            .filter_map(|m| table.value(label, m))
            .fold(f64::NEG_INFINITY, f64::max);
        if best_baseline > 0.0 {
            improvements.push(100.0 * (avg - best_baseline) / best_baseline);
        }
    }
    mean(&improvements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_avg_beats_every_baseline() {
        let report = fig5(ExperimentScale::Smoke);
        let table = &report.tables[0];
        assert!(!table.rows.is_empty());
        for row in &table.rows {
            let label = &row[0];
            let avg = table.value(label, "AVG").unwrap();
            let avgd = table.value(label, "AVG-D").unwrap();
            for baseline in ["PER", "FMG", "SDP", "GRF"] {
                let b = table.value(label, baseline).unwrap();
                assert!(
                    avg.max(avgd) >= b - 1e-9,
                    "{label}: AVG {avg}/{avgd} vs {baseline} {b}"
                );
            }
        }
    }

    #[test]
    fn fig6_covers_all_profiles() {
        let report = fig6(ExperimentScale::Smoke);
        let table = &report.tables[0];
        assert_eq!(table.rows.len(), 3);
        for row in &table.rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 0.0);
            }
        }
    }

    #[test]
    fn fig7_and_fig8_run_in_smoke_mode() {
        let f7 = fig7(ExperimentScale::Smoke);
        assert_eq!(f7.tables[0].rows.len(), 3);
        let f8 = fig8(ExperimentScale::Smoke);
        assert_eq!(f8.tables.len(), 2);
        assert!(!f8.tables[0].rows.is_empty());
    }
}
