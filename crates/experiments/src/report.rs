//! Plain-text tables used to report every reproduced figure.

/// A single table (one panel of a figure).
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Panel title, e.g. "Fig. 3(a): total SAVG utility vs n".
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells; every row has `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the number of cells does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Convenience: appends a row of already formatted numbers.
    pub fn push_numeric_row(&mut self, label: impl Into<String>, values: &[f64]) {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.4}")));
        self.push_row(cells);
    }

    /// Looks up a cell by row label (first column) and column header.
    pub fn cell(&self, row_label: &str, column: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == column)?;
        self.rows
            .iter()
            .find(|r| r[0] == row_label)
            .map(|r| r[col].as_str())
    }

    /// Parses a cell as `f64`.
    pub fn value(&self, row_label: &str, column: &str) -> Option<f64> {
        self.cell(row_label, column)?.parse().ok()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// All tables of one figure (or table) of the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct FigureReport {
    /// Identifier, e.g. "fig3".
    pub id: String,
    /// Human description.
    pub description: String,
    /// The tables (panels).
    pub tables: Vec<Table>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, description: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            description: description.into(),
            tables: Vec::new(),
        }
    }

    /// Renders every table.
    pub fn render(&self) -> String {
        let mut out = format!("# {} — {}\n\n", self.id, self.description);
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// Finds a table by (sub)title.
    pub fn table(&self, title_fragment: &str) -> Option<&Table> {
        self.tables
            .iter()
            .find(|t| t.title.contains(title_fragment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip_and_lookup() {
        let mut t = Table::new("Fig. X", &["method", "utility", "time"]);
        t.push_numeric_row("AVG", &[10.5, 0.2]);
        t.push_numeric_row("PER", &[8.0, 0.01]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.cell("AVG", "utility"), Some("10.5000"));
        assert!((t.value("PER", "utility").unwrap() - 8.0).abs() < 1e-9);
        assert!(t.value("AVG", "missing").is_none());
        let rendered = t.render();
        assert!(rendered.contains("Fig. X"));
        assert!(rendered.contains("AVG"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_panic() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn report_render_and_lookup() {
        let mut r = FigureReport::new("fig3", "small datasets");
        r.tables
            .push(Table::new("Fig. 3(a): utility vs n", &["n", "AVG"]));
        assert!(r.table("3(a)").is_some());
        assert!(r.table("nope").is_none());
        assert!(r.render().contains("fig3"));
    }
}
