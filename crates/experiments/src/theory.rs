//! Constructive checks of the paper's theoretical statements:
//!
//! * **Theorem 1** — instances where the SVGIC optimum beats the group
//!   approach by a factor `n`, and the personalized approach by `Θ(n)`;
//! * **Lemma 3** — the indifference instance on which independent rounding
//!   only recovers an `O(1/m)` fraction of the optimum while CSF recovers it
//!   in one iteration.

use crate::harness::ExperimentScale;
use crate::report::{FigureReport, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_algorithms::factors::{LpBackend, UtilityFactors};
use svgic_algorithms::rounding::independent_rounding;
use svgic_algorithms::{solve_avg, AvgConfig};
use svgic_core::utility::total_utility;
use svgic_core::{Configuration, SvgicInstance, SvgicInstanceBuilder};
use svgic_graph::generate::complete_graph;
use svgic_graph::SocialGraph;

/// Builds the Theorem 1 instance `I_G`: `n` users, no edges, each user prefers
/// a disjoint set of `k` items.  The group approach can serve only one user
/// per slot; the SVGIC optimum serves everyone.
pub fn gap_instance_group(n: usize, k: usize) -> SvgicInstance {
    let m = n * k;
    let graph = SocialGraph::new(n);
    let mut b = SvgicInstanceBuilder::new(graph, m, k, 0.5);
    for u in 0..n {
        for j in 0..k {
            b.set_preference(u, j * n + u, 1.0);
        }
    }
    b.build().expect("valid gap instance")
}

/// Builds the Theorem 1 instance `I_P`: a complete graph where everyone is
/// (almost) indifferent between items but every co-display carries social
/// utility 1; the personalized approach forfeits all of it.
pub fn gap_instance_personalized(n: usize, k: usize, epsilon: f64) -> SvgicInstance {
    let m = n * k;
    let graph = complete_graph(n);
    let mut b = SvgicInstanceBuilder::new(graph, m, k, 0.5);
    for u in 0..n {
        for c in 0..m {
            let preferred = c % n == u;
            b.set_preference(u, c, if preferred { 1.0 } else { 1.0 - epsilon });
        }
    }
    b.fill_social(|_, _, _| 1.0);
    b.build().expect("valid gap instance")
}

/// Best configuration of the group approach on `I_G`-style instances: every
/// user sees the same items (chosen to maximise the aggregate preference).
fn best_group_configuration(instance: &SvgicInstance) -> Configuration {
    svgic_baselines::solve_fmg(instance)
}

/// Per-user optimum on disjoint-preference instances: user `u` takes her `k`
/// preferred items.
fn personalized_configuration(instance: &SvgicInstance) -> Configuration {
    svgic_baselines::solve_per(instance)
}

/// Runs the theoretical gap demonstrations and the Lemma 3 comparison.
pub fn theorem1_and_lemma3(scale: ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new(
        "theory",
        "Theorem 1 gap instances and Lemma 3 independent-rounding comparison",
    );
    let (n, k, m_indiff) = match scale {
        ExperimentScale::Smoke => (6, 2, 10),
        ExperimentScale::Default => (12, 3, 40),
    };

    // Theorem 1, part 1: OPT / OPT_G = n on I_G.
    let ig = gap_instance_group(n, k);
    let personalized = personalized_configuration(&ig);
    let group = best_group_configuration(&ig);
    let mut t1 = Table::new(
        "Theorem 1: optimal vs group / personalized approaches",
        &["instance", "OPT (>=)", "restricted approach", "ratio"],
    );
    let opt_ig = total_utility(&ig, &personalized); // personalized is optimal on I_G
    let group_ig = total_utility(&ig, &group);
    t1.push_row(vec![
        format!("I_G (n={n}, k={k})"),
        format!("{opt_ig:.3}"),
        format!("group = {group_ig:.3}"),
        format!("{:.2}", opt_ig / group_ig.max(1e-9)),
    ]);

    // Theorem 1, part 2: OPT / OPT_P = Θ(n) on I_P.
    let ip = gap_instance_personalized(n, k, 1e-3);
    let per_cfg = personalized_configuration(&ip);
    let group_cfg = best_group_configuration(&ip);
    let per_val = total_utility(&ip, &per_cfg);
    let group_val = total_utility(&ip, &group_cfg);
    t1.push_row(vec![
        format!("I_P (n={n}, k={k})"),
        format!("{group_val:.3}"),
        format!("personalized = {per_val:.3}"),
        format!("{:.2}", group_val / per_val.max(1e-9)),
    ]);
    report.tables.push(t1);

    // Lemma 3: independent rounding vs CSF on the indifference instance.
    let graph = complete_graph(n);
    let mut b = SvgicInstanceBuilder::new(graph, m_indiff, k, 1.0);
    b.fill_social(|_, _, _| 1.0);
    let indiff = b.build().expect("valid indifference instance");
    let uniform = vec![k as f64 / m_indiff as f64; n * m_indiff];
    let factors = UtilityFactors::from_aggregate(&indiff, uniform, 0.0, LpBackend::Structured);
    let mut rng = StdRng::seed_from_u64(99);
    let runs = 30;
    let independent_avg: f64 = (0..runs)
        .map(|_| total_utility(&indiff, &independent_rounding(&indiff, &factors, &mut rng)))
        .sum::<f64>()
        / runs as f64;
    let avg_sol = solve_avg(&indiff, &AvgConfig::with_backend(LpBackend::Structured, 5));
    let optimum = (n * (n - 1)) as f64 * k as f64; // everyone aligned on k items
    let mut t2 = Table::new(
        "Lemma 3: indifference instance — independent rounding vs AVG (CSF)",
        &["method", "utility", "fraction of optimum"],
    );
    t2.push_row(vec![
        "optimum".into(),
        format!("{optimum:.2}"),
        "1.000".into(),
    ]);
    t2.push_row(vec![
        "independent rounding (mean)".into(),
        format!("{independent_avg:.2}"),
        format!("{:.3}", independent_avg / optimum),
    ]);
    t2.push_row(vec![
        "AVG".into(),
        format!("{:.2}", avg_sol.utility),
        format!("{:.3}", avg_sol.utility / optimum),
    ]);
    report.tables.push(t2);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_gap_grows_linearly_with_n() {
        for n in [3usize, 5, 8] {
            let inst = gap_instance_group(n, 2);
            let per = personalized_configuration(&inst);
            let group = best_group_configuration(&inst);
            let ratio = total_utility(&inst, &per) / total_utility(&inst, &group).max(1e-9);
            assert!(
                (ratio - n as f64).abs() < 1e-6,
                "n = {n}: ratio {ratio} should equal n"
            );
        }
    }

    #[test]
    fn personalized_gap_scales_with_n() {
        let n = 8;
        let inst = gap_instance_personalized(n, 2, 1e-3);
        let per = personalized_configuration(&inst);
        let group = best_group_configuration(&inst);
        let ratio = total_utility(&inst, &group) / total_utility(&inst, &per).max(1e-9);
        // λ/(1-λ) · (n-1)/2 = (n-1)/2 for λ = ½; allow slack for the ε term.
        assert!(
            ratio > (n as f64 - 1.0) / 2.0 * 0.9,
            "gap ratio {ratio} too small for n = {n}"
        );
    }

    #[test]
    fn lemma3_report_shows_independent_rounding_losing() {
        let report = theorem1_and_lemma3(ExperimentScale::Smoke);
        let t2 = report.table("Lemma 3").unwrap();
        let independent: f64 = t2.rows[1][2].parse().unwrap();
        let avg: f64 = t2.rows[2][2].parse().unwrap();
        assert!(
            avg > independent,
            "AVG ({avg}) should beat independent rounding ({independent})"
        );
        assert!(
            avg > 0.9,
            "AVG should essentially recover the optimum, got {avg}"
        );
        assert!(
            independent < 0.5,
            "independent rounding should lose most of the social utility, got {independent}"
        );
    }
}
