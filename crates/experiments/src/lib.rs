//! # svgic-experiments
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation section (§6).  Each `figXX` module exposes a `run(scale)`
//! function returning a [`report::FigureReport`] — a set of printable tables
//! whose rows/series mirror what the paper plots — plus the scale knob that
//! lets the same code run as a quick smoke test (used by `cargo test`) or at a
//! larger, paper-shaped scale (used by `cargo bench` and the
//! `run_experiments` binary).
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig_small`] | Fig. 3 (small datasets vs IP), Fig. 4 (λ split) |
//! | [`fig_large`] | Fig. 5 (n sweep), Fig. 6 (datasets), Fig. 7 (input models), Fig. 8 (scalability) |
//! | [`fig_ablation`] | Fig. 9(a) (time-boxed MIP strategies), Fig. 9(b) (speed-up ablations), Fig. 12 (AVG-D `r` sensitivity) |
//! | [`fig_subgroup`] | Fig. 10 (subgroup metrics + regret CDFs), Fig. 11 (ego-network case study) |
//! | [`fig_st`] | Fig. 13 (violations vs M), Figs. 14–15 (SVGIC-ST utility vs M) |
//! | [`fig_user_study`] | Fig. 16 (simulated user study) |
//! | [`theory`] | Theorem 1 gap instances, Lemma 3 independent-rounding gap |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig_ablation;
pub mod fig_large;
pub mod fig_small;
pub mod fig_st;
pub mod fig_subgroup;
pub mod fig_user_study;
pub mod harness;
pub mod report;
pub mod theory;

pub use harness::{solve_with_method, ExperimentScale, MethodRun};
pub use report::{FigureReport, Table};

/// Runs every experiment at the given scale and returns all reports (used by
/// the `run_experiments` binary with `all`).
pub fn run_all(scale: ExperimentScale) -> Vec<FigureReport> {
    vec![
        fig_small::fig3(scale),
        fig_small::fig4(scale),
        fig_large::fig5(scale),
        fig_large::fig6(scale),
        fig_large::fig7(scale),
        fig_large::fig8(scale),
        fig_ablation::fig9a(scale),
        fig_ablation::fig9b(scale),
        fig_subgroup::fig10(scale),
        fig_subgroup::fig11(scale),
        fig_ablation::fig12(scale),
        fig_st::fig13(scale),
        fig_st::fig14_15(scale),
        fig_user_study::fig16(scale),
        theory::theorem1_and_lemma3(scale),
    ]
}
