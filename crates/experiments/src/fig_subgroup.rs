//! Subgroup-structure experiments: Fig. 10 (Inter%/Intra%, normalized density,
//! Co-display%/Alone%, regret CDFs per dataset family) and Fig. 11 (the 2-hop
//! ego-network case study).

use crate::harness::{solve_with_methods, ExperimentScale};
use crate::report::{FigureReport, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_baselines::Method;
use svgic_core::SvgicInstance;
use svgic_datasets::{DatasetProfile, InstanceSpec};
use svgic_metrics::{empirical_cdf, mean, regret_ratios, subgroup_metrics};

fn profile_instance(profile: DatasetProfile, scale: ExperimentScale, seed: u64) -> SvgicInstance {
    let (n, m, k) = match scale {
        ExperimentScale::Smoke => (10, 18, 3),
        ExperimentScale::Default => (30, 80, 6),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    InstanceSpec {
        num_users: n,
        num_items: m,
        num_slots: k,
        ..InstanceSpec::small(profile)
    }
    .build(&mut rng)
}

/// Fig. 10: subgroup metrics and regret CDFs per dataset family and method.
pub fn fig10(scale: ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new(
        "fig10",
        "subgroup metrics (Inter/Intra%, density, Co-display%, Alone%) and regret CDFs",
    );
    let methods = Method::polynomial();
    let cdf_points = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    for profile in DatasetProfile::all() {
        let inst = profile_instance(profile, scale, 4000 + profile as u64);
        let runs = solve_with_methods(&inst, &methods, 5, None, scale);

        let mut metrics_table = Table::new(
            format!(
                "Fig. 10(a-f) [{}]: Intra%, Inter%, normalized density, Co-display%, Alone%",
                profile.label()
            ),
            &[
                "method",
                "Intra%",
                "Inter%",
                "norm. density",
                "Co-display%",
                "Alone%",
            ],
        );
        let mut regret_table = Table::new(
            format!("Fig. 10(g-i) [{}]: regret-ratio CDF", profile.label()),
            &[
                "method",
                "P(regret<=0)",
                "P(<=0.2)",
                "P(<=0.4)",
                "P(<=0.6)",
                "P(<=0.8)",
                "P(<=1.0)",
                "mean regret",
            ],
        );
        for run in &runs {
            let m = subgroup_metrics(&inst, &run.configuration);
            metrics_table.push_row(vec![
                run.method.label().to_string(),
                format!("{:.1}%", 100.0 * m.intra_fraction),
                format!("{:.1}%", 100.0 * m.inter_fraction),
                format!("{:.3}", m.normalized_density),
                format!("{:.1}%", 100.0 * m.co_display_fraction),
                format!("{:.1}%", 100.0 * m.alone_fraction),
            ]);
            let regrets = regret_ratios(&inst, &run.configuration);
            let cdf = empirical_cdf(&regrets, &cdf_points);
            let mut cells = vec![run.method.label().to_string()];
            cells.extend(cdf.iter().map(|v| format!("{v:.3}")));
            cells.push(format!("{:.4}", mean(&regrets)));
            regret_table.push_row(cells);
        }
        report.tables.push(metrics_table);
        report.tables.push(regret_table);
    }
    report
}

/// Fig. 11: a 2-hop ego-network case study — the per-slot subgroups AVG, SDP
/// and GRF build around a user with a unique preference profile, and the
/// resulting regret of that user.
pub fn fig11(scale: ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new(
        "fig11",
        "2-hop ego network case study: subgroups per slot and the ego user's regret",
    );
    // Build a Yelp-like instance and pick the user whose preference vector is
    // farthest from all of her friends' (the "user A" of the paper).
    let inst_full = profile_instance(DatasetProfile::YelpLike, scale, 777);
    let ego = most_unique_user(&inst_full);
    let ego_nodes = inst_full.graph().ego_network(ego, 2);
    let inst = inst_full.restrict_users(&ego_nodes);
    let ego_local = ego_nodes.iter().position(|&v| v == ego).unwrap();

    let methods = [Method::Avg, Method::Sdp, Method::Grf];
    let runs = solve_with_methods(&inst, &methods, 3, None, scale);
    let mut table = Table::new(
        "Fig. 11: ego user's regret ratio and subgroup sizes per method",
        &[
            "method",
            "ego regret",
            "mean subgroup size around ego",
            "slots where ego is alone",
        ],
    );
    for run in &runs {
        let regrets = regret_ratios(&inst, &run.configuration);
        let mut sizes = Vec::new();
        let mut alone_slots = 0usize;
        for s in 0..inst.num_slots() {
            let item = run.configuration.get(ego_local, s);
            let size = (0..inst.num_users())
                .filter(|&u| run.configuration.get(u, s) == item)
                .count();
            sizes.push(size as f64);
            if size == 1 {
                alone_slots += 1;
            }
        }
        table.push_row(vec![
            run.method.label().to_string(),
            format!("{:.4}", regrets[ego_local]),
            format!("{:.2}", mean(&sizes)),
            alone_slots.to_string(),
        ]);
    }
    report.tables.push(table);
    report
}

/// The user whose preference vector has the largest average distance to her
/// friends' preference vectors.
fn most_unique_user(instance: &SvgicInstance) -> usize {
    let n = instance.num_users();
    let mut best = (0usize, f64::NEG_INFINITY);
    for u in 0..n {
        let friends = instance.graph().neighbors(u);
        if friends.is_empty() {
            continue;
        }
        let row_u = instance.preference_row(u);
        let avg_dist: f64 = friends
            .iter()
            .map(|&v| {
                let row_v = instance.preference_row(v);
                row_u
                    .iter()
                    .zip(row_v)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
            })
            .sum::<f64>()
            / friends.len() as f64;
        if avg_dist > best.1 {
            best = (u, avg_dist);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_reports_all_profiles_and_methods() {
        let report = fig10(ExperimentScale::Smoke);
        assert_eq!(report.tables.len(), 6); // 3 profiles × (metrics + regret)
        for table in &report.tables {
            assert_eq!(table.rows.len(), Method::polynomial().len());
        }
        // PER never co-displays on purpose: its Co-display% should not exceed
        // the one of FMG (which always co-displays everything).
        for profile_table in report.tables.iter().step_by(2) {
            let per: f64 = profile_table
                .cell("PER", "Co-display%")
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap();
            let fmg: f64 = profile_table
                .cell("FMG", "Co-display%")
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!(fmg >= per - 1e-9, "FMG {fmg}% vs PER {per}%");
            assert!((fmg - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fig10_regret_cdfs_are_monotone() {
        let report = fig10(ExperimentScale::Smoke);
        for regret_table in report.tables.iter().skip(1).step_by(2) {
            for row in &regret_table.rows {
                let values: Vec<f64> = row[1..7].iter().map(|c| c.parse().unwrap()).collect();
                for w in values.windows(2) {
                    assert!(w[1] >= w[0] - 1e-9);
                }
                assert!((values[5] - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn fig11_produces_the_three_case_study_methods() {
        let report = fig11(ExperimentScale::Smoke);
        let table = &report.tables[0];
        assert_eq!(table.rows.len(), 3);
        for row in &table.rows {
            let regret: f64 = row[1].parse().unwrap();
            assert!((0.0..=1.0).contains(&regret));
        }
    }
}
