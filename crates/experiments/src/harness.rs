//! Shared experiment machinery: running every method on an instance, timing
//! it, and the scale knob that switches between smoke-test and paper-shaped
//! experiment sizes.

use std::time::{Duration, Instant};

use svgic_algorithms::avg::{solve_avg, solve_avg_st, AvgConfig};
use svgic_algorithms::avg_d::{solve_avg_d, solve_avg_d_st, AvgDConfig};
use svgic_algorithms::exact::{solve_exact, ExactConfig, ExactStrategy};
use svgic_algorithms::factors::{LpBackend, RelaxationOptions};
use svgic_baselines::{solve_fmg, solve_grf, solve_per, solve_sdp, GrfConfig, Method, SdpConfig};
use svgic_core::utility::{total_utility, total_utility_st};
use svgic_core::{Configuration, StParams, SvgicInstance};

/// Experiment scale: the same runners power quick smoke tests and the full
/// paper-shaped sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Tiny sizes and a single sample per point — runs in seconds, used by
    /// `cargo test`.
    Smoke,
    /// Moderate sizes tracking the paper's qualitative regimes — used by the
    /// benches and the `run_experiments` binary.
    Default,
}

impl ExperimentScale {
    /// Number of repeated samples to average per sweep point.
    pub fn samples(&self) -> usize {
        match self {
            ExperimentScale::Smoke => 1,
            ExperimentScale::Default => 3,
        }
    }

    /// Scales a list by keeping only the first element in smoke mode.
    pub fn sweep<T: Clone>(&self, full: &[T]) -> Vec<T> {
        match self {
            ExperimentScale::Smoke => full.iter().take(2).cloned().collect(),
            ExperimentScale::Default => full.to_vec(),
        }
    }

    /// Budget for the exact IP baseline.
    pub fn ip_budget(&self) -> ExactConfig {
        match self {
            ExperimentScale::Smoke => ExactConfig {
                strategy: ExactStrategy::IpDual,
                max_nodes: 400,
                time_limit: Some(Duration::from_secs(5)),
                ..Default::default()
            },
            ExperimentScale::Default => ExactConfig {
                strategy: ExactStrategy::IpDual,
                max_nodes: 20_000,
                time_limit: Some(Duration::from_secs(60)),
                ..Default::default()
            },
        }
    }
}

/// Outcome of running one method on one instance.
#[derive(Clone, Debug)]
pub struct MethodRun {
    /// Which method ran.
    pub method: Method,
    /// The configuration it produced.
    pub configuration: Configuration,
    /// Its objective value (SVGIC, or SVGIC-ST when `st` was supplied).
    pub utility: f64,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
}

/// Runs `method` on `instance` (optionally under SVGIC-ST constraints) and
/// measures wall-clock time.  AVG/AVG-D pick the LP backend automatically;
/// the IP baseline uses the budget of the supplied scale.
pub fn solve_with_method(
    instance: &SvgicInstance,
    method: Method,
    seed: u64,
    st: Option<&StParams>,
    scale: ExperimentScale,
) -> MethodRun {
    // lint: allow(wall-clock, reported experiment runtime; never fed back into configurations)
    let start = Instant::now();
    let configuration = match method {
        Method::Avg => {
            let config = AvgConfig {
                relaxation: RelaxationOptions {
                    backend: LpBackend::Auto,
                    ..Default::default()
                },
                seed,
                ..Default::default()
            };
            match st {
                Some(st) => solve_avg_st(instance, st, &config).configuration,
                None => solve_avg(instance, &config).configuration,
            }
        }
        Method::AvgD => {
            let config = AvgDConfig::default();
            match st {
                Some(st) => solve_avg_d_st(instance, st, &config).configuration,
                None => solve_avg_d(instance, &config).configuration,
            }
        }
        Method::Per => solve_per(instance),
        Method::Fmg => solve_fmg(instance),
        Method::Sdp => solve_sdp(instance, &SdpConfig::default()),
        Method::Grf => solve_grf(
            instance,
            &GrfConfig {
                seed,
                ..Default::default()
            },
        ),
        Method::Ip => {
            let mut config = scale.ip_budget();
            config.st = st.copied();
            solve_exact(instance, &config).configuration
        }
    };
    let elapsed = start.elapsed();
    let utility = match st {
        Some(st) => total_utility_st(instance, st, &configuration),
        None => total_utility(instance, &configuration),
    };
    MethodRun {
        method,
        configuration,
        utility,
        elapsed,
    }
}

/// Runs a list of methods and returns their runs in order.
pub fn solve_with_methods(
    instance: &SvgicInstance,
    methods: &[Method],
    seed: u64,
    st: Option<&StParams>,
    scale: ExperimentScale,
) -> Vec<MethodRun> {
    methods
        .iter()
        .map(|&m| solve_with_method(instance, m, seed, st, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;

    #[test]
    fn every_method_runs_on_the_running_example() {
        let inst = running_example();
        let runs = solve_with_methods(&inst, &Method::all(), 7, None, ExperimentScale::Smoke);
        assert_eq!(runs.len(), 7);
        for run in &runs {
            assert!(
                run.configuration.is_valid(inst.num_items()),
                "{:?}",
                run.method
            );
            assert!(run.utility > 0.0, "{:?}", run.method);
        }
        // AVG and AVG-D must beat the purely personalized and purely grouped
        // baselines on the running example (the paper's headline comparison).
        let find = |m: Method| runs.iter().find(|r| r.method == m).unwrap().utility;
        assert!(find(Method::AvgD) >= find(Method::Per) - 1e-9);
        assert!(find(Method::AvgD) >= find(Method::Fmg) - 1e-9);
    }

    #[test]
    fn st_runs_apply_the_cap_for_our_methods() {
        let inst = running_example();
        let st = StParams::new(0.5, 2);
        for method in [Method::Avg, Method::AvgD] {
            let run = solve_with_method(&inst, method, 3, Some(&st), ExperimentScale::Smoke);
            assert!(st.is_feasible(&run.configuration), "{method:?}");
        }
    }

    #[test]
    fn scale_knobs() {
        assert_eq!(ExperimentScale::Smoke.samples(), 1);
        assert!(ExperimentScale::Default.samples() >= 2);
        assert_eq!(ExperimentScale::Smoke.sweep(&[1, 2, 3, 4]).len(), 2);
        assert_eq!(ExperimentScale::Default.sweep(&[1, 2, 3, 4]).len(), 4);
    }
}
