//! Fig. 16: the (simulated) VR user study of §6.9 — λ distribution,
//! utility vs. recorded satisfaction per method, the utility↔satisfaction
//! correlation, and the subgroup metrics of the study population.

use crate::harness::{solve_with_methods, ExperimentScale};
use crate::report::{FigureReport, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_baselines::Method;
use svgic_datasets::{simulate_user_study, UserStudyConfig};
use svgic_metrics::{mean, pearson, spearman, subgroup_metrics};

/// Runs the simulated user study and reports the panels of Fig. 16.
pub fn fig16(scale: ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new("fig16", "simulated hTC VIVE user study (44 participants)");
    let config = match scale {
        ExperimentScale::Smoke => UserStudyConfig {
            participants: 20,
            num_items: 12,
            num_slots: 3,
            satisfaction_noise: 0.15,
            ..Default::default()
        },
        ExperimentScale::Default => UserStudyConfig::default(),
    };
    let mut rng = StdRng::seed_from_u64(2020);
    let study = simulate_user_study(&config, &mut rng);

    // Panel (a): λ histogram.
    let mut lambda_table = Table::new(
        "Fig. 16(a): distribution of participant lambda values",
        &["bucket", "participants"],
    );
    let buckets = [(0.0, 0.25), (0.25, 0.5), (0.5, 0.75), (0.75, 1.0)];
    for (lo, hi) in buckets {
        let count = study.lambdas.iter().filter(|&&l| l >= lo && l < hi).count();
        lambda_table.push_row(vec![format!("[{lo:.2}, {hi:.2})"), count.to_string()]);
    }
    lambda_table.push_row(vec!["mean".into(), format!("{:.3}", mean(&study.lambdas))]);
    report.tables.push(lambda_table);

    // Panel (b): utility and satisfaction per method, plus correlation.
    let methods = [Method::Avg, Method::Per, Method::Fmg, Method::Grf];
    let runs = solve_with_methods(&study.instance, &methods, 9, None, scale);
    let mut outcome_table = Table::new(
        "Fig. 16(b): mean per-user utility and Likert satisfaction per method",
        &["method", "mean utility", "mean satisfaction (1-5)"],
    );
    let mut all_utilities = Vec::new();
    let mut all_satisfaction = Vec::new();
    for run in &runs {
        let scores =
            study.satisfaction_scores(&run.configuration, config.satisfaction_noise, &mut rng);
        let utilities: Vec<f64> = (0..study.instance.num_users())
            .map(|u| svgic_core::utility::per_user_utility(&study.instance, &run.configuration, u))
            .collect();
        all_utilities.extend(utilities.iter().copied());
        all_satisfaction.extend(scores.iter().copied());
        outcome_table.push_row(vec![
            run.method.label().to_string(),
            format!("{:.4}", mean(&utilities)),
            format!("{:.3}", mean(&scores)),
        ]);
    }
    report.tables.push(outcome_table);

    let mut corr_table = Table::new(
        "Fig. 16(b) correlation: SAVG utility vs recorded satisfaction",
        &["statistic", "value"],
    );
    corr_table.push_row(vec![
        "Pearson".into(),
        format!("{:.3}", pearson(&all_utilities, &all_satisfaction)),
    ]);
    corr_table.push_row(vec![
        "Spearman".into(),
        format!("{:.3}", spearman(&all_utilities, &all_satisfaction)),
    ]);
    report.tables.push(corr_table);

    // Panels (c)/(d): subgroup metrics of the study population.
    let mut metrics_table = Table::new(
        "Fig. 16(c)/(d): subgroup metrics in the user study",
        &["method", "Intra%", "norm. density", "Co-display%", "Alone%"],
    );
    for run in &runs {
        let m = subgroup_metrics(&study.instance, &run.configuration);
        metrics_table.push_row(vec![
            run.method.label().to_string(),
            format!("{:.1}%", 100.0 * m.intra_fraction),
            format!("{:.3}", m.normalized_density),
            format!("{:.1}%", 100.0 * m.co_display_fraction),
            format!("{:.1}%", 100.0 * m.alone_fraction),
        ]);
    }
    report.tables.push(metrics_table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_reports_all_panels() {
        let report = fig16(ExperimentScale::Smoke);
        assert_eq!(report.tables.len(), 4);
        // λ histogram counts sum to the number of participants.
        let lambda_table = &report.tables[0];
        let total: usize = lambda_table
            .rows
            .iter()
            .take(4)
            .map(|r| r[1].parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn fig16_utility_and_satisfaction_correlate_positively() {
        let report = fig16(ExperimentScale::Smoke);
        let corr = report.table("correlation").unwrap();
        let pearson: f64 = corr.cell("Pearson", "value").unwrap().parse().unwrap();
        let spearman: f64 = corr.cell("Spearman", "value").unwrap().parse().unwrap();
        assert!(pearson > 0.3, "Pearson correlation too weak: {pearson}");
        assert!(spearman > 0.3, "Spearman correlation too weak: {spearman}");
    }

    #[test]
    fn fig16_avg_wins_on_mean_satisfaction() {
        let report = fig16(ExperimentScale::Smoke);
        let outcomes = report.table("16(b): mean per-user utility").unwrap();
        let avg: f64 = outcomes
            .cell("AVG", "mean utility")
            .unwrap()
            .parse()
            .unwrap();
        for baseline in ["PER", "FMG", "GRF"] {
            let b: f64 = outcomes
                .cell(baseline, "mean utility")
                .unwrap()
                .parse()
                .unwrap();
            assert!(avg >= 0.85 * b, "AVG {avg} vs {baseline} {b}");
        }
    }
}
