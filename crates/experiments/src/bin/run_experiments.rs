//! Command-line driver for the experiment harness.
//!
//! ```text
//! run_experiments [smoke|default] [all|fig3|fig4|fig5|fig6|fig7|fig8|fig9a|fig9b|
//!                                  fig10|fig11|fig12|fig13|fig14|fig16|theory|example]
//! ```
//!
//! With no arguments it runs every figure at the default scale and prints the
//! paper-shaped tables to stdout.

use svgic_experiments::{
    fig_ablation, fig_large, fig_small, fig_st, fig_subgroup, fig_user_study,
    harness::ExperimentScale, theory,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match args.first().map(String::as_str) {
        Some("smoke") => ExperimentScale::Smoke,
        _ => ExperimentScale::Default,
    };
    let which = args
        .iter()
        .find(|a| *a != "smoke" && *a != "default")
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let mut reports = Vec::new();
    let mut push = |id: &str, report: svgic_experiments::FigureReport| {
        if which == "all" || which == id {
            reports.push(report);
        }
    };
    push("example", {
        let mut r = svgic_experiments::FigureReport::new(
            "example",
            "the paper's running example (Tables 1, 6-9)",
        );
        r.tables.push(fig_small::running_example_table());
        r
    });
    push("fig3", fig_small::fig3(scale));
    push("fig4", fig_small::fig4(scale));
    push("fig5", fig_large::fig5(scale));
    push("fig6", fig_large::fig6(scale));
    push("fig7", fig_large::fig7(scale));
    push("fig8", fig_large::fig8(scale));
    push("fig9a", fig_ablation::fig9a(scale));
    push("fig9b", fig_ablation::fig9b(scale));
    push("fig10", fig_subgroup::fig10(scale));
    push("fig11", fig_subgroup::fig11(scale));
    push("fig12", fig_ablation::fig12(scale));
    push("fig13", fig_st::fig13(scale));
    push("fig14", fig_st::fig14_15(scale));
    push("fig16", fig_user_study::fig16(scale));
    push("theory", theory::theorem1_and_lemma3(scale));

    if reports.is_empty() {
        eprintln!("unknown experiment id: {which}");
        std::process::exit(1);
    }
    for report in reports {
        println!("{}", report.render());
    }
}
