//! Small-dataset experiments: Fig. 3 (quality & time vs n, m, k, with the
//! exact IP as reference) and Fig. 4 (Personal%/Social% split across λ).

use crate::harness::{solve_with_method, solve_with_methods, ExperimentScale};
use crate::report::{FigureReport, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_baselines::Method;
use svgic_core::SvgicInstance;
use svgic_datasets::{DatasetProfile, InstanceSpec};
use svgic_metrics::utility_split;

fn small_instance(n: usize, m: usize, k: usize, seed: u64) -> SvgicInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    InstanceSpec {
        num_users: n,
        num_items: m,
        num_slots: k,
        ..InstanceSpec::small(DatasetProfile::TimikLike)
    }
    .build(&mut rng)
}

/// Fig. 3: total SAVG utility and execution time vs `n`, `m`, `k` on small
/// Timik-like samples, comparing every method including the exact IP.
pub fn fig3(scale: ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new(
        "fig3",
        "small datasets: utility and execution time vs n, m, k (IP reference)",
    );
    let methods = Method::all();
    let header: Vec<&str> = std::iter::once("sweep")
        .chain(methods.iter().map(|m| m.label()))
        .collect();

    // Panel (a)/(b): sweep n.
    let n_values = scale.sweep(&[4usize, 6, 8, 10]);
    let (mut quality, mut time) = (
        Table::new("Fig. 3(a): total SAVG utility vs n", &header),
        Table::new("Fig. 3(b): execution time [ms] vs n", &header),
    );
    for &n in &n_values {
        let inst = small_instance(n, 8, 2, 100 + n as u64);
        let runs = solve_with_methods(&inst, &methods, 1, None, scale);
        quality.push_numeric_row(
            format!("n={n}"),
            &runs.iter().map(|r| r.utility).collect::<Vec<_>>(),
        );
        time.push_numeric_row(
            format!("n={n}"),
            &runs
                .iter()
                .map(|r| r.elapsed.as_secs_f64() * 1e3)
                .collect::<Vec<_>>(),
        );
    }
    report.tables.push(quality);
    report.tables.push(time);

    // Panel (c)/(d): sweep m.
    let m_values = scale.sweep(&[6usize, 10, 14, 20]);
    let (mut quality, mut time) = (
        Table::new("Fig. 3(c): total SAVG utility vs m", &header),
        Table::new("Fig. 3(d): execution time [ms] vs m", &header),
    );
    for &m in &m_values {
        let inst = small_instance(6, m, 2, 200 + m as u64);
        let runs = solve_with_methods(&inst, &methods, 1, None, scale);
        quality.push_numeric_row(
            format!("m={m}"),
            &runs.iter().map(|r| r.utility).collect::<Vec<_>>(),
        );
        time.push_numeric_row(
            format!("m={m}"),
            &runs
                .iter()
                .map(|r| r.elapsed.as_secs_f64() * 1e3)
                .collect::<Vec<_>>(),
        );
    }
    report.tables.push(quality);
    report.tables.push(time);

    // Panel (e)/(f): sweep k.
    let k_values = scale.sweep(&[2usize, 3, 4, 5]);
    let (mut quality, mut time) = (
        Table::new("Fig. 3(e): total SAVG utility vs k", &header),
        Table::new("Fig. 3(f): execution time [ms] vs k", &header),
    );
    for &k in &k_values {
        let inst = small_instance(6, 10, k, 300 + k as u64);
        let runs = solve_with_methods(&inst, &methods, 1, None, scale);
        quality.push_numeric_row(
            format!("k={k}"),
            &runs.iter().map(|r| r.utility).collect::<Vec<_>>(),
        );
        time.push_numeric_row(
            format!("k={k}"),
            &runs
                .iter()
                .map(|r| r.elapsed.as_secs_f64() * 1e3)
                .collect::<Vec<_>>(),
        );
    }
    report.tables.push(quality);
    report.tables.push(time);
    report
}

/// Fig. 4: normalized total SAVG utility of every method for
/// λ ∈ {0.33, 0.5, 0.67}, split into Personal% and Social%.
pub fn fig4(scale: ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new(
        "fig4",
        "normalized total SAVG utility and Personal%/Social% split vs lambda",
    );
    let lambdas = scale.sweep(&[0.33f64, 0.5, 0.67]);
    let methods = Method::all();
    let mut table = Table::new(
        "Fig. 4: per-method utility normalized by IP, with Personal%/Social%",
        &[
            "lambda / method",
            "normalized utility",
            "Personal%",
            "Social%",
        ],
    );
    for &lambda in &lambdas {
        let base = small_instance(6, 8, 2, 4242);
        let inst = base.with_lambda(lambda).unwrap();
        let runs = solve_with_methods(&inst, &methods, 2, None, scale);
        let ip_utility = runs
            .iter()
            .find(|r| r.method == Method::Ip)
            .map(|r| r.utility)
            .unwrap_or(1.0)
            .max(1e-9);
        for run in &runs {
            let split = utility_split(&inst, &run.configuration);
            table.push_row(vec![
                format!("λ={lambda:.2} {}", run.method.label()),
                format!("{:.4}", run.utility / ip_utility),
                format!("{:.1}%", 100.0 * split.personal_fraction()),
                format!("{:.1}%", 100.0 * split.social_fraction()),
            ]);
        }
    }
    report.tables.push(table);
    report
}

/// Reproduces the running-example comparison of §4.3 (Tables 7–9): the exact
/// utilities the paper reports for AVG, AVG-D and the four baselines.
pub fn running_example_table() -> Table {
    use svgic_core::example::{paper_configurations, running_example};
    use svgic_core::utility::unweighted_total_utility;
    let inst = running_example();
    let cfgs = paper_configurations();
    let mut table = Table::new(
        "Running example (Tables 7-9): unweighted total SAVG utility",
        &["configuration", "utility"],
    );
    for (label, cfg) in [
        ("optimal", &cfgs.optimal),
        ("AVG (Table 7)", &cfgs.avg),
        ("AVG-D (Table 8)", &cfgs.avg_d),
        ("personalized", &cfgs.personalized),
        ("group", &cfgs.group),
        ("subgroup-by-friendship", &cfgs.by_friendship),
        ("subgroup-by-preference", &cfgs.by_preference),
    ] {
        table.push_numeric_row(label, &[unweighted_total_utility(&inst, cfg)]);
    }
    // Also run our own solvers on the same instance for comparison.
    let inst2 = running_example();
    for method in [Method::Avg, Method::AvgD, Method::Ip] {
        let run = solve_with_method(&inst2, method, 11, None, ExperimentScale::Smoke);
        table.push_numeric_row(
            format!("{} (this implementation)", method.label()),
            &[unweighted_total_utility(&inst2, &run.configuration)],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_smoke_produces_all_panels() {
        let report = fig3(ExperimentScale::Smoke);
        assert_eq!(report.tables.len(), 6);
        let quality = report.table("3(a)").unwrap();
        assert!(!quality.rows.is_empty());
        // AVG-D should match or beat PER on every sweep point.
        for row in &quality.rows {
            let label = &row[0];
            let avgd = quality.value(label, "AVG-D").unwrap();
            let per = quality.value(label, "PER").unwrap();
            assert!(avgd >= 0.9 * per, "{label}: AVG-D {avgd} vs PER {per}");
        }
    }

    #[test]
    fn fig4_split_moves_with_lambda() {
        let report = fig4(ExperimentScale::Smoke);
        let table = &report.tables[0];
        assert!(!table.rows.is_empty());
        // Every normalized utility is positive and finite.
        for row in &table.rows {
            let v: f64 = row[1].parse().unwrap();
            assert!(v.is_finite() && v > 0.0);
        }
    }

    #[test]
    fn running_example_table_matches_golden_values() {
        let table = running_example_table();
        assert!((table.value("optimal", "utility").unwrap() - 10.35).abs() < 1e-6);
        assert!((table.value("personalized", "utility").unwrap() - 8.25).abs() < 1e-6);
        assert!((table.value("group", "utility").unwrap() - 8.35).abs() < 1e-6);
        // Our IP implementation reproduces the optimum.
        assert!((table.value("IP (this implementation)", "utility").unwrap() - 10.35).abs() < 1e-6);
    }
}
