//! SDP — socially tight subgroups with per-subgroup item bundles
//! (the "subgroup approach" of §4, by-friendship flavour).
//!
//! SDP first partitions the shopping group into dense, socially connected
//! subgroups (densest-subgroup peeling on the friendship graph, mirroring the
//! dense-subgroup extraction of the original "On organizing online soirees"
//! baseline) and then gives each subgroup a bundled k-item set chosen by the
//! subgroup-aggregate criterion.  The partition is static: a user is only ever
//! co-displayed items with members of her own subgroup, which is exactly the
//! limitation the paper's CSF rounding removes.

use crate::subgroup::configuration_for_partition;
use svgic_core::{Configuration, SvgicInstance};
use svgic_graph::community::densest_subgroup_peeling;

/// Configuration of the SDP baseline.
#[derive(Clone, Debug, Default)]
pub struct SdpConfig {
    /// Optional cap on the size of an extracted subgroup (used by the "-P"
    /// variants for SVGIC-ST); `None` leaves subgroup sizes unconstrained.
    pub max_subgroup_size: Option<usize>,
}

/// Runs the SDP baseline.
pub fn solve_sdp(instance: &SvgicInstance, config: &SdpConfig) -> Configuration {
    let partition = densest_subgroup_peeling(instance.graph(), config.max_subgroup_size);
    configuration_for_partition(instance, &partition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;
    use svgic_core::utility::{total_utility, unweighted_total_utility};

    #[test]
    fn sdp_produces_valid_static_subgroups() {
        let inst = running_example();
        let cfg = solve_sdp(&inst, &SdpConfig::default());
        assert!(cfg.is_valid(inst.num_items()));
        // Static partition: the per-slot subgroup structure is identical at
        // every slot (users in the same bundle always share all items).
        for u in 0..inst.num_users() {
            for v in 0..inst.num_users() {
                let together0 = cfg.get(u, 0) == cfg.get(v, 0);
                for s in 1..inst.num_slots() {
                    assert_eq!(together0, cfg.get(u, s) == cfg.get(v, s));
                }
            }
        }
    }

    #[test]
    fn sdp_beats_per_when_social_utility_matters() {
        // On the running example the densest subgroup is the whole 4-user
        // core, so SDP behaves like the group approach and captures more
        // social utility than PER at λ = ½.
        let inst = running_example();
        let sdp = solve_sdp(&inst, &SdpConfig::default());
        let per = crate::per::solve_per(&inst);
        assert!(
            svgic_core::utility::raw_social_sum(&inst, &sdp)
                >= svgic_core::utility::raw_social_sum(&inst, &per)
        );
        assert!(unweighted_total_utility(&inst, &sdp) > 0.0);
    }

    #[test]
    fn size_cap_limits_subgroups() {
        let inst = running_example();
        let cfg = solve_sdp(
            &inst,
            &SdpConfig {
                max_subgroup_size: Some(2),
            },
        );
        assert!(cfg.max_subgroup_size() <= 2);
        assert!(total_utility(&inst, &cfg) > 0.0);
    }
}
