//! PER — personalized top-k retrieval (the "personalized approach" of §1).
//!
//! Every user independently receives her `k` highest-preference items, ordered
//! by preference so that the favourite item lands at slot 1.  Social utility
//! is ignored entirely; co-displays only happen by accident when two friends'
//! preference rankings coincide position-wise (the paper observes this is rare
//! on Yelp-like data and slightly more common on Epinions-like data, where a
//! few items are widely liked).

use svgic_core::{Configuration, SvgicInstance};

/// Runs the PER baseline.
pub fn solve_per(instance: &SvgicInstance) -> Configuration {
    let n = instance.num_users();
    let m = instance.num_items();
    let k = instance.num_slots();
    let mut rows = Vec::with_capacity(n);
    for u in 0..n {
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            instance
                .preference(u, b)
                .partial_cmp(&instance.preference(u, a))
                .unwrap()
                .then(a.cmp(&b))
        });
        rows.push(order.into_iter().take(k).collect::<Vec<_>>());
    }
    Configuration::from_rows(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::{items, paper_configurations, running_example, users};
    use svgic_core::utility::{raw_preference_sum, unweighted_total_utility};

    #[test]
    fn per_matches_the_paper_table9_configuration_value() {
        let inst = running_example();
        let cfg = solve_per(&inst);
        assert!(cfg.is_valid(inst.num_items()));
        // The paper reports a total (unweighted) utility of 8.25 for the
        // personalized baseline on the running example.
        assert!((unweighted_total_utility(&inst, &cfg) - 8.25).abs() < 1e-9);
        // And it must coincide with the per-user top-3 preference mass.
        let reference = paper_configurations().personalized;
        assert!(
            (raw_preference_sum(&inst, &cfg) - raw_preference_sum(&inst, &reference)).abs() < 1e-9
        );
    }

    #[test]
    fn per_orders_each_row_by_preference() {
        let inst = running_example();
        let cfg = solve_per(&inst);
        // Alice's favourite is the SP camera, then the DSLR, then the tripod.
        assert_eq!(
            cfg.items_of(users::ALICE),
            &[items::SP_CAMERA, items::DSLR, items::TRIPOD]
        );
        // Dave: memory card (1.0), SP camera (0.95), PSD (0.3).
        assert_eq!(
            cfg.items_of(users::DAVE),
            &[items::MEMORY_CARD, items::SP_CAMERA, items::PSD]
        );
        for u in 0..inst.num_users() {
            let row = cfg.items_of(u);
            for w in row.windows(2) {
                assert!(instance_pref(&inst, u, w[0]) >= instance_pref(&inst, u, w[1]));
            }
        }
    }

    fn instance_pref(inst: &SvgicInstance, u: usize, c: usize) -> f64 {
        inst.preference(u, c)
    }

    #[test]
    fn per_maximises_pure_preference() {
        // With λ = 0 the SVGIC objective is exactly the preference sum, so PER
        // is optimal; check it beats a handful of other valid configurations.
        let inst = running_example().with_lambda(0.0).unwrap();
        let per = solve_per(&inst);
        let per_value = svgic_core::utility::total_utility(&inst, &per);
        for cfg in [
            paper_configurations().group,
            paper_configurations().by_friendship,
            paper_configurations().avg_d,
        ] {
            assert!(per_value + 1e-9 >= svgic_core::utility::total_utility(&inst, &cfg));
        }
    }
}
