//! # svgic-baselines
//!
//! The recommendation baselines the paper evaluates AVG / AVG-D against
//! (§1 and §6.1):
//!
//! * [`per`] — **PER**: personalized top-k retrieval per user (the
//!   personalized approach; ignores social utility entirely).
//! * [`fmg`] — **FMG**: fairness-aware group recommendation; one bundled
//!   k-item set displayed identically to the entire shopping group (the group
//!   approach).
//! * [`sdp`] — **SDP**: socially tight subgroups are extracted first (densest
//!   subgroup peeling) and each subgroup gets its own bundled item set (the
//!   subgroup-by-friendship approach).
//! * [`grf`] — **GRF**: users are clustered by *preference similarity*
//!   (k-means) and each cluster gets its own bundled item set (the
//!   subgroup-by-preference approach).
//! * [`subgroup`] — the simple two-way subgroup-by-friendship /
//!   subgroup-by-preference splits used by the paper's running example
//!   (Table 9), plus a generic "items-for-a-fixed-partition" helper.
//! * [`prepartition`] — the "-P" wrapper of §6.8: for SVGIC-ST, the user set
//!   is pre-partitioned into ⌈N/M⌉ balanced subgroups before any baseline
//!   runs, which is how the paper makes the baselines (other than PER)
//!   approach feasibility under the subgroup-size cap.
//!
//! All baselines return ordinary [`svgic_core::Configuration`]s so the metrics
//! and experiment layers treat them uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fmg;
pub mod grf;
pub mod per;
pub mod prepartition;
pub mod sdp;
pub mod subgroup;

pub use fmg::solve_fmg;
pub use grf::{solve_grf, GrfConfig};
pub use per::solve_per;
pub use prepartition::{solve_prepartitioned, PrePartitionMode};
pub use sdp::{solve_sdp, SdpConfig};
pub use subgroup::{
    configuration_for_partition, solve_subgroup_by_friendship, solve_subgroup_by_preference,
};

/// Identifier of every method compared in the experiments (solvers plus
/// baselines), used by the experiment harness to produce the paper's tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Randomized AVG (this paper).
    Avg,
    /// Deterministic AVG-D (this paper).
    AvgD,
    /// Personalized top-k.
    Per,
    /// Fairness-aware group recommendation (group approach).
    Fmg,
    /// Social-aware diverse selection (subgroup-by-friendship approach).
    Sdp,
    /// Group recommendation & formation (subgroup-by-preference approach).
    Grf,
    /// Exact integer program.
    Ip,
}

impl Method {
    /// Display name used in tables (matches the paper's labels).
    pub fn label(&self) -> &'static str {
        match self {
            Method::Avg => "AVG",
            Method::AvgD => "AVG-D",
            Method::Per => "PER",
            Method::Fmg => "FMG",
            Method::Sdp => "SDP",
            Method::Grf => "GRF",
            Method::Ip => "IP",
        }
    }

    /// All methods in the paper's usual reporting order.
    pub fn all() -> [Method; 7] {
        [
            Method::Avg,
            Method::AvgD,
            Method::Per,
            Method::Fmg,
            Method::Sdp,
            Method::Grf,
            Method::Ip,
        ]
    }

    /// The polynomial-time methods (everything except the exact IP).
    pub fn polynomial() -> [Method; 6] {
        [
            Method::Avg,
            Method::AvgD,
            Method::Per,
            Method::Fmg,
            Method::Sdp,
            Method::Grf,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            Method::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), Method::all().len());
        assert_eq!(Method::Avg.label(), "AVG");
        assert_eq!(Method::polynomial().len(), 6);
    }
}
