//! GRF — group recommendation & formation
//! (the "subgroup approach" of §4, by-preference flavour).
//!
//! GRF ignores the social topology entirely: users are clustered by the
//! similarity of their preference vectors (k-means), and every cluster
//! receives a bundled k-item set chosen by the cluster-aggregate criterion.
//! The paper highlights two consequences that the metrics layer measures:
//! users with unique tastes end up *alone* (high Alone%), and clusters can be
//! socially sparse (low normalized subgroup density), which wastes potential
//! discussions.

use crate::subgroup::configuration_for_partition;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use svgic_core::{Configuration, SvgicInstance};
use svgic_graph::cluster::{kmeans, KMeansConfig};
use svgic_graph::community::Partition;

/// Configuration of the GRF baseline.
#[derive(Clone, Debug)]
pub struct GrfConfig {
    /// Number of preference clusters; `None` uses the heuristic
    /// `max(2, round(sqrt(n / 2)))` which tracks the scale used in the paper's
    /// experiments.
    pub num_clusters: Option<usize>,
    /// RNG seed for the k-means++ initialisation.
    pub seed: u64,
}

impl Default for GrfConfig {
    fn default() -> Self {
        Self {
            num_clusters: None,
            seed: 0x6F12,
        }
    }
}

/// Runs the GRF baseline.
pub fn solve_grf(instance: &SvgicInstance, config: &GrfConfig) -> Configuration {
    let n = instance.num_users();
    let clusters = config
        .num_clusters
        .unwrap_or_else(|| ((n as f64 / 2.0).sqrt().round() as usize).max(2))
        .min(n.max(1));
    let points: Vec<Vec<f64>> = (0..n)
        .map(|u| instance.preference_row(u).to_vec())
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let result = kmeans(
        &points,
        &KMeansConfig {
            k: clusters,
            ..Default::default()
        },
        &mut rng,
    );
    let partition = Partition::from_assignment(&result.assignment);
    configuration_for_partition(instance, &partition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;
    use svgic_core::utility::unweighted_total_utility;
    use svgic_core::SvgicInstanceBuilder;
    use svgic_graph::SocialGraph;

    #[test]
    fn grf_is_valid_and_deterministic_for_a_seed() {
        let inst = running_example();
        let a = solve_grf(&inst, &GrfConfig::default());
        let b = solve_grf(&inst, &GrfConfig::default());
        assert!(a.is_valid(inst.num_items()));
        assert_eq!(a, b);
        assert!(unweighted_total_utility(&inst, &a) > 0.0);
    }

    #[test]
    fn grf_groups_users_with_identical_preferences() {
        // Two pairs of preference-identical users who are not friends with
        // their preference twin: GRF must cluster by preference, not topology.
        let graph = SocialGraph::from_undirected_edges(4, [(0, 1), (2, 3)]);
        let mut b = SvgicInstanceBuilder::new(graph, 4, 2, 0.5);
        for u in [0usize, 2] {
            b.set_preference(u, 0, 1.0);
            b.set_preference(u, 1, 0.8);
        }
        for u in [1usize, 3] {
            b.set_preference(u, 2, 1.0);
            b.set_preference(u, 3, 0.8);
        }
        let inst = b.build().unwrap();
        let cfg = solve_grf(
            &inst,
            &GrfConfig {
                num_clusters: Some(2),
                ..Default::default()
            },
        );
        assert_eq!(cfg.items_of(0), cfg.items_of(2));
        assert_eq!(cfg.items_of(1), cfg.items_of(3));
        assert_ne!(cfg.items_of(0), cfg.items_of(1));
    }

    #[test]
    fn cluster_count_heuristic_scales_with_n() {
        let inst = running_example();
        // n = 4 => heuristic max(2, sqrt(2)) = 2 clusters.
        let cfg = solve_grf(&inst, &GrfConfig::default());
        let mut distinct_rows: Vec<Vec<usize>> = (0..4).map(|u| cfg.items_of(u).to_vec()).collect();
        distinct_rows.sort();
        distinct_rows.dedup();
        assert!(distinct_rows.len() <= 2);
    }
}
