//! The "-P" pre-partitioning wrapper for SVGIC-ST (§6.8 of the paper).
//!
//! None of the baselines is aware of the subgroup-size cap `M`.  The paper
//! therefore evaluates each of them in two flavours: "-NP" (run as-is, may
//! violate the cap) and "-P" (the user set is first split into ⌈N/M⌉ balanced
//! subgroups and the baseline is run independently on every part, then the
//! partial configurations are stitched back together).  Pre-partitioning
//! drastically reduces — but, as the paper observes, does not always
//! eliminate — the violations, because two different parts may still pick the
//! same popular item at the same slot.

use crate::{
    fmg::solve_fmg, grf::solve_grf, per::solve_per, sdp::solve_sdp, GrfConfig, Method, SdpConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use svgic_core::{Configuration, StParams, SvgicInstance};
use svgic_graph::community::balanced_partition;

/// Whether a baseline is run with or without pre-partitioning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrePartitionMode {
    /// Run the baseline on the whole group ("-NP").
    None,
    /// Pre-partition into ⌈N/M⌉ balanced subgroups first ("-P").
    Balanced,
}

/// Runs a baseline method for SVGIC-ST, optionally with the "-P" balanced
/// pre-partitioning.  `Method::Avg`, `Method::AvgD` and `Method::Ip` are not
/// handled here (they have dedicated ST-aware solvers).
pub fn solve_prepartitioned(
    instance: &SvgicInstance,
    st: &StParams,
    method: Method,
    mode: PrePartitionMode,
    seed: u64,
) -> Configuration {
    match mode {
        PrePartitionMode::None => run_baseline(instance, method, seed),
        PrePartitionMode::Balanced => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let group_size = st.max_subgroup.min(instance.num_users().max(1));
            let partition = balanced_partition(instance.graph(), group_size, &mut rng);
            let n = instance.num_users();
            let k = instance.num_slots();
            let mut rows = vec![vec![0usize; k]; n];
            for group in &partition.groups {
                let sub = instance.restrict_users(group);
                let cfg = run_baseline(&sub, method, seed);
                for (local, &original) in group.iter().enumerate() {
                    rows[original] = cfg.items_of(local).to_vec();
                }
            }
            Configuration::from_rows(&rows)
        }
    }
}

fn run_baseline(instance: &SvgicInstance, method: Method, seed: u64) -> Configuration {
    match method {
        Method::Per => solve_per(instance),
        Method::Fmg => solve_fmg(instance),
        Method::Sdp => solve_sdp(instance, &SdpConfig::default()),
        Method::Grf => solve_grf(
            instance,
            &GrfConfig {
                seed,
                ..Default::default()
            },
        ),
        other => panic!("solve_prepartitioned only handles baselines, got {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;

    #[test]
    fn prepartitioning_reduces_or_preserves_violations() {
        let inst = running_example();
        let st = StParams::new(0.5, 2);
        for method in [Method::Fmg, Method::Sdp, Method::Grf, Method::Per] {
            let np = solve_prepartitioned(&inst, &st, method, PrePartitionMode::None, 1);
            let p = solve_prepartitioned(&inst, &st, method, PrePartitionMode::Balanced, 1);
            assert!(np.is_valid(inst.num_items()));
            assert!(p.is_valid(inst.num_items()));
            assert!(
                st.total_violation(&p) <= st.total_violation(&np),
                "{method:?}: -P has {} violations vs -NP {}",
                st.total_violation(&p),
                st.total_violation(&np)
            );
        }
    }

    #[test]
    fn fmg_np_violates_small_caps_on_the_running_example() {
        // FMG shows the same bundle to everyone: with M = 2 and n = 4 each slot
        // has a subgroup of 4, i.e. 2 excess users per slot.
        let inst = running_example();
        let st = StParams::new(0.5, 2);
        let cfg = solve_prepartitioned(&inst, &st, Method::Fmg, PrePartitionMode::None, 1);
        assert_eq!(st.total_violation(&cfg), 2 * inst.num_slots());
        assert!(!st.is_feasible(&cfg));
    }

    #[test]
    fn per_is_unaffected_by_prepartitioning_values() {
        // PER never co-displays intentionally, so both variants give the same
        // per-user item sets.
        let inst = running_example();
        let st = StParams::new(0.5, 2);
        let np = solve_prepartitioned(&inst, &st, Method::Per, PrePartitionMode::None, 1);
        let p = solve_prepartitioned(&inst, &st, Method::Per, PrePartitionMode::Balanced, 1);
        for u in 0..inst.num_users() {
            assert_eq!(np.items_of(u), p.items_of(u));
        }
    }

    #[test]
    #[should_panic(expected = "only handles baselines")]
    fn rejects_non_baseline_methods() {
        let inst = running_example();
        let st = StParams::new(0.5, 2);
        let _ = solve_prepartitioned(&inst, &st, Method::Avg, PrePartitionMode::None, 1);
    }
}
