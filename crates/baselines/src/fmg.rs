//! FMG — fairness-aware group recommendation (the "group approach" of §1).
//!
//! The whole shopping group is treated as one unit: a single bundle of `k`
//! items is selected and displayed identically (same items, same slots) to
//! every user.  Items are chosen greedily by the group-aggregate SAVG utility
//! of co-displaying the item to everyone, with a fairness term (the minimum
//! per-user gain) as a tie-breaking secondary objective, mirroring the
//! package-to-group fairness criterion of the original FMG baseline.

use svgic_core::{Configuration, SvgicInstance};

/// Runs the FMG baseline.
pub fn solve_fmg(instance: &SvgicInstance) -> Configuration {
    let n = instance.num_users();
    let m = instance.num_items();
    let k = instance.num_slots();
    let lambda = instance.lambda();

    // Aggregate value of co-displaying item c to the whole group, plus the
    // minimum per-user gain used as the fairness tie-breaker.
    let mut scored: Vec<(f64, f64, usize)> = (0..m)
        .map(|c| {
            let mut per_user = vec![0.0f64; n];
            for (u, gain) in per_user.iter_mut().enumerate() {
                *gain += (1.0 - lambda) * instance.preference(u, c);
            }
            for (p, pair) in instance.friend_pairs().iter().enumerate() {
                let w = instance.pair_weight(p, c);
                // Split the pair weight between the endpoints for the fairness
                // view; the aggregate sum is unaffected.
                per_user[pair.u] += lambda * w / 2.0;
                per_user[pair.v] += lambda * w / 2.0;
            }
            let total: f64 = per_user.iter().sum();
            let fairness = per_user.iter().cloned().fold(f64::INFINITY, f64::min);
            (total, fairness, c)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap()
            .then(b.1.partial_cmp(&a.1).unwrap())
            .then(a.2.cmp(&b.2))
    });
    let bundle: Vec<usize> = scored.into_iter().take(k).map(|(_, _, c)| c).collect();
    let rows = vec![bundle; n];
    Configuration::from_rows(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;
    use svgic_core::utility::unweighted_total_utility;

    #[test]
    fn fmg_displays_the_same_bundle_to_everyone() {
        let inst = running_example();
        let cfg = solve_fmg(&inst);
        assert!(cfg.is_valid(inst.num_items()));
        for s in 0..inst.num_slots() {
            assert_eq!(cfg.num_subgroups_at_slot(s), 1);
        }
        for u in 1..inst.num_users() {
            assert_eq!(cfg.items_of(u), cfg.items_of(0));
        }
    }

    #[test]
    fn fmg_matches_the_paper_group_value_on_the_running_example() {
        // The paper's group approach reaches a total unweighted utility of
        // 8.35.  The aggregate scores are c5 = 3.35, c1 = 2.6 and then a tie
        // between c2 and c4 at 2.4 — the paper breaks the tie towards c2, our
        // fairness tie-break towards c4, and both choices land on exactly 8.35.
        let inst = running_example();
        let cfg = solve_fmg(&inst);
        let value = unweighted_total_utility(&inst, &cfg);
        assert!((value - 8.35).abs() < 1e-9, "FMG reached {value}");
        let mut items = cfg.items_of(0).to_vec();
        items.sort_unstable();
        assert!(items.contains(&0) && items.contains(&4), "bundle {items:?}");
        assert!(items.contains(&1) || items.contains(&3), "bundle {items:?}");
    }

    #[test]
    fn fmg_is_invariant_to_user_order() {
        let inst = running_example();
        let cfg = solve_fmg(&inst);
        let permuted = inst.restrict_users(&[0, 1, 2, 3]);
        let cfg2 = solve_fmg(&permuted);
        assert_eq!(cfg.items_of(0), cfg2.items_of(0));
    }
}
