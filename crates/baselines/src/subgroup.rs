//! Fixed-partition subgroup baselines.
//!
//! Given any *static* partition of the shopping group, every subgroup receives
//! its own bundled `k`-item set chosen by the group-aggregate criterion
//! restricted to the subgroup (the same rule FMG applies to the whole group).
//! This is the building block shared by the SDP / GRF baselines and by the two
//! simple two-way splits used in the running example of the paper
//! (subgroup-by-friendship and subgroup-by-preference, Table 9).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use svgic_core::{Configuration, SvgicInstance};
use svgic_graph::cluster::{kmeans, KMeansConfig};
use svgic_graph::community::Partition;

/// For every group of `partition`, greedily selects the `k` items with the
/// highest subgroup-aggregate SAVG utility and displays them (in that order)
/// to all its members.
pub fn configuration_for_partition(
    instance: &SvgicInstance,
    partition: &Partition,
) -> Configuration {
    let n = instance.num_users();
    let m = instance.num_items();
    let k = instance.num_slots();
    let lambda = instance.lambda();
    let mut rows = vec![Vec::new(); n];
    for group in &partition.groups {
        let member_set: std::collections::HashSet<usize> = group.iter().copied().collect();
        let mut scored: Vec<(f64, usize)> = (0..m)
            .map(|c| {
                let mut total = 0.0;
                for &u in group {
                    total += (1.0 - lambda) * instance.preference(u, c);
                }
                for (p, pair) in instance.friend_pairs().iter().enumerate() {
                    if member_set.contains(&pair.u) && member_set.contains(&pair.v) {
                        total += lambda * instance.pair_weight(p, c);
                    }
                }
                (total, c)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let bundle: Vec<usize> = scored.into_iter().take(k).map(|(_, c)| c).collect();
        for &u in group {
            rows[u] = bundle.clone();
        }
    }
    Configuration::from_rows(&rows)
}

/// The running example's subgroup-by-friendship baseline: the group is split
/// into two equally sized halves maximising internal friendships (exact search
/// over balanced bipartitions for small groups, greedy swap refinement
/// otherwise), and each half gets its own bundle.
pub fn solve_subgroup_by_friendship(instance: &SvgicInstance) -> Configuration {
    let n = instance.num_users();
    let assignment = balanced_bipartition_by_edges(instance);
    let partition = Partition::from_assignment(&assignment);
    let _ = n;
    configuration_for_partition(instance, &partition)
}

/// The running example's subgroup-by-preference baseline: the group is split
/// into two clusters by k-means on the preference vectors, and each cluster
/// gets its own bundle.
pub fn solve_subgroup_by_preference(instance: &SvgicInstance) -> Configuration {
    let n = instance.num_users();
    let points: Vec<Vec<f64>> = (0..n)
        .map(|u| instance.preference_row(u).to_vec())
        .collect();
    // k-means is sensitive to its initial centroids; restart a few times and
    // keep the clustering with the lowest within-cluster variance.
    let mut rng = ChaCha8Rng::seed_from_u64(0xB1A5);
    let mut best: Option<svgic_graph::cluster::KMeansResult> = None;
    for _ in 0..8 {
        let result = kmeans(
            &points,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            &mut rng,
        );
        if best.as_ref().is_none_or(|b| result.inertia < b.inertia) {
            best = Some(result);
        }
    }
    let partition = Partition::from_assignment(&best.expect("at least one restart").assignment);
    configuration_for_partition(instance, &partition)
}

/// Splits the users into two halves of (nearly) equal size maximising the
/// number of internal friendships.  Exhaustive for `n ≤ 16`, greedy
/// swap-improvement otherwise.
fn balanced_bipartition_by_edges(instance: &SvgicInstance) -> Vec<usize> {
    let n = instance.num_users();
    let pairs: Vec<(usize, usize)> = instance.friend_pairs().iter().map(|p| (p.u, p.v)).collect();
    let internal = |assignment: &[usize]| -> usize {
        pairs
            .iter()
            .filter(|&&(u, v)| assignment[u] == assignment[v])
            .count()
    };
    let half = n / 2;
    if n <= 16 {
        // Enumerate subsets of size ⌊n/2⌋ containing user 0 (w.l.o.g.).
        let mut best: Option<(usize, Vec<usize>)> = None;
        for mask in 0u32..(1 << n) {
            if (mask.count_ones() as usize) != half || (mask & 1) == 0 {
                continue;
            }
            let assignment: Vec<usize> = (0..n)
                .map(|u| if (mask >> u) & 1 == 1 { 0 } else { 1 })
                .collect();
            let score = internal(&assignment);
            if best.as_ref().is_none_or(|(b, _)| score > *b) {
                best = Some((score, assignment));
            }
        }
        best.map(|(_, a)| a)
            .unwrap_or_else(|| (0..n).map(|u| u % 2).collect())
    } else {
        // Greedy: start from an arbitrary balanced split, repeatedly swap the
        // pair of users (one from each side) that most improves the count.
        let mut assignment: Vec<usize> = (0..n).map(|u| if u < half { 0 } else { 1 }).collect();
        let mut current = internal(&assignment);
        loop {
            let mut best_swap: Option<(usize, usize, usize)> = None;
            for a in 0..n {
                for b in 0..n {
                    if assignment[a] == 0 && assignment[b] == 1 {
                        let mut candidate = assignment.clone();
                        candidate.swap(a, b);
                        let score = internal(&candidate);
                        if score > current && best_swap.as_ref().is_none_or(|&(s, _, _)| score > s)
                        {
                            best_swap = Some((score, a, b));
                        }
                    }
                }
            }
            match best_swap {
                Some((score, a, b)) => {
                    assignment.swap(a, b);
                    current = score;
                }
                None => break,
            }
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::{running_example, users};
    use svgic_core::utility::unweighted_total_utility;
    use svgic_graph::community::Partition;

    #[test]
    fn partition_bundles_are_shared_within_groups() {
        let inst = running_example();
        let partition = Partition::from_assignment(&[0, 1, 1, 0]);
        let cfg = configuration_for_partition(&inst, &partition);
        assert!(cfg.is_valid(inst.num_items()));
        assert_eq!(cfg.items_of(0), cfg.items_of(3));
        assert_eq!(cfg.items_of(1), cfg.items_of(2));
    }

    #[test]
    fn by_friendship_matches_the_paper_split_and_value() {
        let inst = running_example();
        let cfg = solve_subgroup_by_friendship(&inst);
        // The paper splits into {Alice, Dave} and {Bob, Charlie} and reports a
        // total unweighted utility of 8.4.
        assert_eq!(cfg.items_of(users::ALICE), cfg.items_of(users::DAVE));
        assert_eq!(cfg.items_of(users::BOB), cfg.items_of(users::CHARLIE));
        let value = unweighted_total_utility(&inst, &cfg);
        assert!((value - 8.4).abs() < 1e-9, "by-friendship reached {value}");
    }

    #[test]
    fn by_preference_matches_the_paper_split_and_value() {
        let inst = running_example();
        let cfg = solve_subgroup_by_preference(&inst);
        // The paper clusters {Alice, Bob} and {Charlie, Dave} and reports 8.7.
        assert_eq!(cfg.items_of(users::ALICE), cfg.items_of(users::BOB));
        assert_eq!(cfg.items_of(users::CHARLIE), cfg.items_of(users::DAVE));
        let value = unweighted_total_utility(&inst, &cfg);
        assert!((value - 8.7).abs() < 1e-9, "by-preference reached {value}");
    }

    #[test]
    fn singleton_partition_degenerates_to_personalized_preference_order() {
        let inst = running_example();
        let partition = Partition::from_assignment(&[0, 1, 2, 3]);
        let cfg = configuration_for_partition(&inst, &partition);
        let per = crate::per::solve_per(&inst);
        // With λ = ½ and singleton groups the per-group score is a scaled
        // preference, so the bundles coincide with PER's.
        for u in 0..inst.num_users() {
            let mut a = cfg.items_of(u).to_vec();
            let mut b = per.items_of(u).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }
}
