//! Simulated VR user study (§6.9 of the paper).
//!
//! The paper recruits 44 participants, collects their social network,
//! questionnaire preferences and personal `λ` values, shows them the stores
//! produced by AVG and the baselines on an hTC VIVE headset, and records
//! 1–5 Likert satisfaction scores.  The headset and the participants are not
//! available here, so this module simulates the same pipeline end to end:
//!
//! * participants with questionnaire-style (coarse, 5-level) preferences and
//!   individual `λ` drawn from the paper's reported range `[0.15, 0.85]`;
//! * per-participant satisfaction generated as a noisy monotone function of
//!   the SAVG utility the participant actually receives under a given
//!   configuration, quantised to the 1–5 Likert scale;
//! * the same analysis the paper reports: mean utility, mean satisfaction and
//!   the Pearson / Spearman correlation between them.
//!
//! The substitution preserves what the experiment is used for — checking that
//! the SAVG utility is a good proxy for experienced satisfaction and that AVG
//! wins on both — while making the whole pipeline reproducible offline.

use rand::Rng;
use svgic_core::utility::per_user_utility;
use svgic_core::{Configuration, SvgicInstance, SvgicInstanceBuilder};
use svgic_graph::{erdos_renyi, SocialGraph};

/// Configuration of the simulated user study.
#[derive(Clone, Debug)]
pub struct UserStudyConfig {
    /// Number of participants (the paper uses 44).
    pub participants: usize,
    /// Number of items in the questionnaire / VR store.
    pub num_items: usize,
    /// Number of display slots in the VR store.
    pub num_slots: usize,
    /// Probability that two participants know each other.
    pub friendship_probability: f64,
    /// Range of the per-participant trade-off weight `λ`.
    pub lambda_range: (f64, f64),
    /// Standard deviation of the satisfaction noise (on the Likert scale).
    pub satisfaction_noise: f64,
}

impl Default for UserStudyConfig {
    fn default() -> Self {
        Self {
            participants: 44,
            num_items: 25,
            num_slots: 5,
            friendship_probability: 0.18,
            lambda_range: (0.15, 0.85),
            satisfaction_noise: 0.35,
        }
    }
}

/// The simulated study population.
#[derive(Clone, Debug)]
pub struct UserStudyOutcome {
    /// The instance built from questionnaire preferences (its `λ` is the mean
    /// of the per-participant values, mirroring how the paper configures the
    /// algorithms once for the whole group).
    pub instance: SvgicInstance,
    /// Per-participant trade-off weights.
    pub lambdas: Vec<f64>,
}

/// Builds the simulated study population.
pub fn simulate_user_study<R: Rng + ?Sized>(
    config: &UserStudyConfig,
    rng: &mut R,
) -> UserStudyOutcome {
    let n = config.participants;
    let graph: SocialGraph = erdos_renyi(n, config.friendship_probability, rng);
    let (lo, hi) = config.lambda_range;
    let lambdas: Vec<f64> = (0..n).map(|_| lo + (hi - lo) * rng.gen::<f64>()).collect();
    let mean_lambda = lambdas.iter().sum::<f64>() / n as f64;

    // Questionnaire preferences: 5-level Likert answers rescaled to [0, 1],
    // with a participant-specific "interest profile" so answers are coherent.
    let mut builder = SvgicInstanceBuilder::new(
        graph.clone(),
        config.num_items,
        config.num_slots,
        mean_lambda,
    );
    let profile: Vec<f64> = (0..n * 4).map(|_| rng.gen::<f64>()).collect();
    for u in 0..n {
        for c in 0..config.num_items {
            let base = profile[u * 4 + (c % 4)];
            let level = ((base * 4.0).round() + if rng.gen::<f64>() < 0.3 { 1.0 } else { 0.0 })
                .clamp(0.0, 4.0);
            builder.set_preference(u, c, level / 4.0);
        }
    }
    // Social utilities learned from the "discussion" phase: friends who share
    // a 4+ Likert answer on an item discuss it enthusiastically.
    for &(u, v) in graph.edges().to_vec().iter() {
        for c in 0..config.num_items {
            let shared = rng.gen::<f64>() * 0.5;
            builder.set_social(u, v, c, shared);
        }
    }
    let instance = builder.build().expect("study instance is valid");
    UserStudyOutcome { instance, lambdas }
}

impl UserStudyOutcome {
    /// Simulates the Likert satisfaction score (1–5) of every participant for
    /// a configuration: a noisy monotone function of the participant's
    /// achieved SAVG utility, normalised by her personal upper bound.
    pub fn satisfaction_scores<R: Rng + ?Sized>(
        &self,
        config: &Configuration,
        noise: f64,
        rng: &mut R,
    ) -> Vec<f64> {
        (0..self.instance.num_users())
            .map(|u| {
                let achieved = per_user_utility(&self.instance, config, u);
                let upper =
                    svgic_core::utility::user_utility_upper_bound(&self.instance, u).max(1e-9);
                let fraction = (achieved / upper).clamp(0.0, 1.0);
                let jitter = noise * (rng.gen::<f64>() - 0.5) * 2.0;
                (1.0 + 4.0 * fraction + jitter).clamp(1.0, 5.0)
            })
            .collect()
    }

    /// Mean per-participant utility of a configuration.
    pub fn mean_utility(&self, config: &Configuration) -> f64 {
        let n = self.instance.num_users();
        (0..n)
            .map(|u| per_user_utility(&self.instance, config, u))
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn study_population_matches_configuration() {
        let mut rng = StdRng::seed_from_u64(44);
        let study = simulate_user_study(&UserStudyConfig::default(), &mut rng);
        assert_eq!(study.instance.num_users(), 44);
        assert_eq!(study.lambdas.len(), 44);
        for &l in &study.lambdas {
            assert!((0.15..=0.85).contains(&l));
        }
        let lam = study.instance.lambda();
        assert!((0.15..=0.85).contains(&lam));
    }

    #[test]
    fn preferences_are_likert_quantised() {
        let mut rng = StdRng::seed_from_u64(7);
        let study = simulate_user_study(&UserStudyConfig::default(), &mut rng);
        for u in 0..5 {
            for c in 0..study.instance.num_items() {
                let p = study.instance.preference(u, c);
                let quarters = p * 4.0;
                assert!(
                    (quarters - quarters.round()).abs() < 1e-9,
                    "non-Likert preference {p}"
                );
            }
        }
    }

    #[test]
    fn satisfaction_tracks_utility() {
        // Without noise, a configuration that gives a user more utility must
        // never get a lower satisfaction score.
        let mut rng = StdRng::seed_from_u64(21);
        let study = simulate_user_study(
            &UserStudyConfig {
                participants: 12,
                num_items: 10,
                num_slots: 3,
                ..Default::default()
            },
            &mut rng,
        );
        let n = study.instance.num_users();
        let good = {
            // top-3 per user
            let mut rows = Vec::new();
            for u in 0..n {
                let mut order: Vec<usize> = (0..10).collect();
                order.sort_by(|&a, &b| {
                    study
                        .instance
                        .preference(u, b)
                        .partial_cmp(&study.instance.preference(u, a))
                        .unwrap()
                });
                rows.push(order.into_iter().take(3).collect::<Vec<_>>());
            }
            Configuration::from_rows(&rows)
        };
        let bad = {
            let mut rows = Vec::new();
            for u in 0..n {
                let mut order: Vec<usize> = (0..10).collect();
                order.sort_by(|&a, &b| {
                    study
                        .instance
                        .preference(u, a)
                        .partial_cmp(&study.instance.preference(u, b))
                        .unwrap()
                });
                rows.push(order.into_iter().take(3).collect::<Vec<_>>());
            }
            Configuration::from_rows(&rows)
        };
        let s_good = study.satisfaction_scores(&good, 0.0, &mut rng);
        let s_bad = study.satisfaction_scores(&bad, 0.0, &mut rng);
        let mean_good: f64 = s_good.iter().sum::<f64>() / n as f64;
        let mean_bad: f64 = s_bad.iter().sum::<f64>() / n as f64;
        assert!(mean_good > mean_bad);
        assert!(study.mean_utility(&good) > study.mean_utility(&bad));
        for s in s_good.iter().chain(&s_bad) {
            assert!((1.0..=5.0).contains(s));
        }
    }
}
