//! Latent-topic utility simulators.
//!
//! The paper feeds learned preference and social utilities into SVGIC; three
//! learning frameworks are compared in Fig. 7.  We reproduce their *input
//! distributions* rather than the learners themselves:
//!
//! * [`UtilityModelKind::PiertLike`] — users and items carry latent topic
//!   vectors; `p(u,c)` is a (noisy) topic affinity and `τ(u,v,c)` combines a
//!   per-edge influence weight with the topic agreement of the *pair* on the
//!   item, so social utility is item-dependent;
//! * [`UtilityModelKind::AgreeLike`] — the same preferences, but the social
//!   influence between users is uniform across friends and items;
//! * [`UtilityModelKind::GreeLike`] — fully free per-(edge, item) weights,
//!   i.e. the heaviest-tailed and least structured social utilities.
//!
//! All utilities are bounded in `[0, 1]`, matching the normalised scores the
//! paper's learning pipelines output.

use rand::Rng;
use svgic_core::{SvgicInstance, SvgicInstanceBuilder};
use svgic_graph::SocialGraph;

/// Which simulated learning framework generates the utilities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UtilityModelKind {
    /// Item-dependent social influence driven by shared latent topics
    /// (the paper's default input model).
    PiertLike,
    /// Uniform social influence between friends, independent of the item.
    AgreeLike,
    /// Independent per-(edge, item) social weights.
    GreeLike,
}

impl UtilityModelKind {
    /// All model kinds in the order of Fig. 7.
    pub fn all() -> [UtilityModelKind; 3] {
        [
            UtilityModelKind::PiertLike,
            UtilityModelKind::AgreeLike,
            UtilityModelKind::GreeLike,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            UtilityModelKind::PiertLike => "PIERT-like",
            UtilityModelKind::AgreeLike => "AGREE-like",
            UtilityModelKind::GreeLike => "GREE-like",
        }
    }
}

/// Parameters of the utility simulators.
#[derive(Clone, Debug)]
pub struct UtilityModel {
    /// Which framework to imitate.
    pub kind: UtilityModelKind,
    /// Number of latent topics.
    pub topics: usize,
    /// How concentrated user interests are: higher values produce more
    /// diversified (peaked) preference vectors — the Yelp-like regime; lower
    /// values produce broader, overlapping interests — the Epinions-like
    /// regime with a few widely liked items.
    pub preference_diversity: f64,
    /// Overall magnitude of the social utilities relative to preferences.
    pub social_strength: f64,
    /// Fraction of "hub" items that are broadly attractive to everyone
    /// (popular VR locations in Timik, widely adopted products in Epinions).
    pub popular_item_fraction: f64,
}

impl Default for UtilityModel {
    fn default() -> Self {
        Self {
            kind: UtilityModelKind::PiertLike,
            topics: 8,
            preference_diversity: 1.0,
            social_strength: 0.6,
            popular_item_fraction: 0.05,
        }
    }
}

impl UtilityModel {
    /// Generates an SVGIC instance over the given graph and item count.
    pub fn build_instance<R: Rng + ?Sized>(
        &self,
        graph: SocialGraph,
        num_items: usize,
        k: usize,
        lambda: f64,
        rng: &mut R,
    ) -> SvgicInstance {
        let n = graph.num_nodes();
        let topics = self.topics.max(1);
        // Latent topic vectors: users are Dirichlet-ish (normalised powers of
        // uniforms, sharpened by `preference_diversity`), items likewise, plus
        // a per-item popularity boost for a small set of hub items.
        let user_topics = sample_topic_matrix(n, topics, self.preference_diversity, rng);
        let item_topics = sample_topic_matrix(num_items, topics, self.preference_diversity, rng);
        let popular: Vec<bool> = (0..num_items)
            .map(|_| rng.gen::<f64>() < self.popular_item_fraction)
            .collect();
        let popularity: Vec<f64> = popular
            .iter()
            .map(|&p| if p { 0.3 + 0.4 * rng.gen::<f64>() } else { 0.0 })
            .collect();

        // Preference p(u, c) = clamp(topic affinity + popularity + noise).
        let mut pref = vec![0.0; n * num_items];
        for u in 0..n {
            for c in 0..num_items {
                let affinity: f64 = (0..topics)
                    .map(|t| user_topics[u * topics + t] * item_topics[c * topics + t])
                    .sum::<f64>()
                    * topics as f64
                    / 2.0;
                let noise = 0.05 * rng.gen::<f64>();
                pref[u * num_items + c] = (affinity + popularity[c] + noise).clamp(0.0, 1.0);
            }
        }

        // Per-edge influence weight (how much u listens to v).
        let influence: Vec<f64> = (0..graph.num_edges())
            .map(|_| rng.gen::<f64>() * self.social_strength)
            .collect();

        let mut builder = SvgicInstanceBuilder::new(graph.clone(), num_items, k, lambda);
        for u in 0..n {
            for c in 0..num_items {
                builder.set_preference(u, c, pref[u * num_items + c]);
            }
        }
        for (e, &(u, v)) in graph.edges().to_vec().iter().enumerate() {
            for c in 0..num_items {
                let tau = match self.kind {
                    UtilityModelKind::PiertLike => {
                        // Item-dependent: influence × geometric mean of the two
                        // endpoints' interest in the item.
                        let pu = pref[u * num_items + c];
                        let pv = pref[v * num_items + c];
                        influence[e] * (pu * pv).sqrt()
                    }
                    UtilityModelKind::AgreeLike => influence[e],
                    UtilityModelKind::GreeLike => self.social_strength * rng.gen::<f64>(),
                };
                builder.set_social(u, v, c, tau.clamp(0.0, 1.0));
            }
        }
        builder
            .build()
            .expect("generated utilities are always valid")
    }
}

/// Samples a row-normalised `rows × topics` matrix whose rows get more peaked
/// as `diversity` grows.
fn sample_topic_matrix<R: Rng + ?Sized>(
    rows: usize,
    topics: usize,
    diversity: f64,
    rng: &mut R,
) -> Vec<f64> {
    let mut out = vec![0.0; rows * topics];
    let exponent = diversity.max(0.05);
    for r in 0..rows {
        let mut total = 0.0;
        for t in 0..topics {
            let v = rng
                .gen::<f64>()
                .powf(1.0 / exponent.max(1e-6))
                .powf(exponent * 2.0);
            out[r * topics + t] = v + 1e-6;
            total += v + 1e-6;
        }
        for t in 0..topics {
            out[r * topics + t] /= total;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use svgic_graph::generate::erdos_renyi;

    fn graph(n: usize, seed: u64) -> SocialGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        erdos_renyi(n, 0.3, &mut rng)
    }

    #[test]
    fn all_models_produce_valid_instances() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in UtilityModelKind::all() {
            let model = UtilityModel {
                kind,
                ..Default::default()
            };
            let inst = model.build_instance(graph(12, 2), 20, 3, 0.5, &mut rng);
            assert_eq!(inst.num_users(), 12);
            assert_eq!(inst.num_items(), 20);
            for u in 0..12 {
                for c in 0..20 {
                    let p = inst.preference(u, c);
                    assert!((0.0..=1.0).contains(&p), "{kind:?} preference {p}");
                }
            }
        }
    }

    #[test]
    fn agree_like_social_is_item_independent() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = UtilityModel {
            kind: UtilityModelKind::AgreeLike,
            ..Default::default()
        };
        let inst = model.build_instance(graph(8, 5), 10, 2, 0.5, &mut rng);
        let (u, v) = inst.graph().edges()[0];
        let first = inst.social(u, v, 0);
        for c in 1..10 {
            assert!((inst.social(u, v, c) - first).abs() < 1e-12);
        }
    }

    #[test]
    fn piert_like_social_varies_with_the_item() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = UtilityModel::default();
        let inst = model.build_instance(graph(10, 7), 30, 2, 0.5, &mut rng);
        let (u, v) = inst.graph().edges()[0];
        let values: Vec<f64> = (0..30).map(|c| inst.social(u, v, c)).collect();
        let spread = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 1e-6, "PIERT-like τ should depend on the item");
    }

    #[test]
    fn preference_diversity_controls_overlap() {
        // More diverse preferences => the top item of different users coincides
        // less often.
        let mut rng = StdRng::seed_from_u64(11);
        let overlap = |diversity: f64, rng: &mut StdRng| -> f64 {
            let model = UtilityModel {
                preference_diversity: diversity,
                popular_item_fraction: 0.0,
                ..Default::default()
            };
            let inst = model.build_instance(graph(30, 13), 40, 2, 0.5, rng);
            let tops: Vec<usize> = (0..30)
                .map(|u| {
                    (0..40)
                        .max_by(|&a, &b| {
                            inst.preference(u, a)
                                .partial_cmp(&inst.preference(u, b))
                                .unwrap()
                        })
                        .unwrap()
                })
                .collect();
            let distinct: std::collections::HashSet<_> = tops.iter().collect();
            1.0 - distinct.len() as f64 / tops.len() as f64
        };
        let broad = overlap(0.2, &mut rng);
        let diverse = overlap(4.0, &mut rng);
        assert!(
            diverse <= broad + 0.2,
            "diversity 4.0 overlap {diverse} vs 0.2 overlap {broad}"
        );
    }

    #[test]
    fn social_strength_scales_tau() {
        let mut rng = StdRng::seed_from_u64(17);
        let weak = UtilityModel {
            social_strength: 0.1,
            ..Default::default()
        }
        .build_instance(graph(10, 19), 15, 2, 0.5, &mut rng);
        let strong = UtilityModel {
            social_strength: 0.9,
            ..Default::default()
        }
        .build_instance(graph(10, 19), 15, 2, 0.5, &mut rng);
        let avg = |inst: &SvgicInstance| -> f64 {
            let mut total = 0.0;
            let mut count = 0usize;
            for e in 0..inst.graph().num_edges() {
                for c in 0..inst.num_items() {
                    total += inst.social_by_edge(e, c);
                    count += 1;
                }
            }
            total / count as f64
        };
        assert!(avg(&strong) > avg(&weak));
    }
}
