//! # svgic-datasets
//!
//! Synthetic dataset substrates replacing the proprietary evaluation data of
//! the paper (Timik, Yelp, Epinions), the learned utility models (PIERT,
//! AGREE, GREE), and the hTC VIVE user study.
//!
//! The experiments of §6 only rely on *qualitative* properties of those
//! assets: how dense the friendship network is, how diversified preferences
//! are, how large social utilities are relative to preferences, and whether
//! social utilities depend on the item.  The generators in this crate expose
//! exactly these knobs:
//!
//! * [`profiles`] — dataset profiles (`timik_like`, `yelp_like`,
//!   `epinions_like`) that combine a topology generator with a utility model
//!   and produce ready-to-solve [`svgic_core::SvgicInstance`]s of any size;
//! * [`models`] — latent-topic utility simulators standing in for PIERT
//!   (item-dependent social influence), AGREE (uniform social influence) and
//!   GREE (per-triple weights);
//! * [`user_study`] — a simulator of the 44-participant VR user study of
//!   §6.9: questionnaire-style preferences, per-participant `λ`, and Likert
//!   satisfaction scores generated as a noisy monotone function of the
//!   achieved per-user utility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod models;
pub mod profiles;
pub mod user_study;

pub use models::{UtilityModel, UtilityModelKind};
pub use profiles::{DatasetProfile, InstanceSpec};
pub use user_study::{simulate_user_study, UserStudyConfig, UserStudyOutcome};
