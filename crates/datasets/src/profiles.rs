//! Dataset profiles: Timik-like, Yelp-like, Epinions-like.
//!
//! A profile pairs a topology generator with a utility-model parameterisation
//! so that the synthetic instance reproduces the qualitative properties of the
//! corresponding real dataset that the paper's analysis relies on:
//!
//! | profile | topology | preferences | social utility |
//! |---|---|---|---|
//! | Timik-like | dense Barabási–Albert (VR users befriend many strangers, hub locations) | moderately diverse | strong, item-dependent |
//! | Yelp-like | Watts–Strogatz small world (local communities) | highly diversified POIs | strong inside communities |
//! | Epinions-like | sparse Erdős–Rényi trust network | broad, a few widely liked items | weak (sparser reviews) |
//!
//! [`InstanceSpec`] then samples a shopping group of `n` users from the big
//! network (random walk, as in the paper's §6.1) and builds the instance with
//! `m` candidate items, `k` slots and weight `λ`.

use crate::models::{UtilityModel, UtilityModelKind};
use rand::Rng;
use svgic_core::SvgicInstance;
use svgic_graph::{barabasi_albert, erdos_renyi, random_walk_sample, watts_strogatz, SocialGraph};

/// The three dataset families of §6.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// 3D VR social network: dense, hub-heavy, strangers interact.
    TimikLike,
    /// Location-based social network: strong local communities, very
    /// diversified POI preferences.
    YelpLike,
    /// Product-review trust network: sparse, a few widely liked items.
    EpinionsLike,
}

impl DatasetProfile {
    /// All profiles in the paper's reporting order (Timik, Epinions, Yelp).
    pub fn all() -> [DatasetProfile; 3] {
        [
            DatasetProfile::TimikLike,
            DatasetProfile::EpinionsLike,
            DatasetProfile::YelpLike,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetProfile::TimikLike => "Timik-like",
            DatasetProfile::YelpLike => "Yelp-like",
            DatasetProfile::EpinionsLike => "Epinions-like",
        }
    }

    /// Generates the full background social network of `population` users.
    pub fn generate_network<R: Rng + ?Sized>(&self, population: usize, rng: &mut R) -> SocialGraph {
        match self {
            DatasetProfile::TimikLike => barabasi_albert(population, 6, rng),
            DatasetProfile::YelpLike => watts_strogatz(population, 8, 0.15, rng),
            DatasetProfile::EpinionsLike => {
                let p = (4.0 / population.max(2) as f64).min(0.3);
                erdos_renyi(population, p, rng)
            }
        }
    }

    /// Default utility model of the profile (PIERT-like inputs everywhere, but
    /// with profile-specific diversity / strength knobs).
    pub fn utility_model(&self) -> UtilityModel {
        match self {
            DatasetProfile::TimikLike => UtilityModel {
                kind: UtilityModelKind::PiertLike,
                preference_diversity: 1.0,
                social_strength: 0.7,
                popular_item_fraction: 0.08,
                ..Default::default()
            },
            DatasetProfile::YelpLike => UtilityModel {
                kind: UtilityModelKind::PiertLike,
                preference_diversity: 3.0,
                social_strength: 0.7,
                popular_item_fraction: 0.01,
                ..Default::default()
            },
            DatasetProfile::EpinionsLike => UtilityModel {
                kind: UtilityModelKind::PiertLike,
                preference_diversity: 0.4,
                social_strength: 0.35,
                popular_item_fraction: 0.1,
                ..Default::default()
            },
        }
    }
}

/// Specification of an evaluation instance.
#[derive(Clone, Debug)]
pub struct InstanceSpec {
    /// Dataset family.
    pub profile: DatasetProfile,
    /// Size of the background population the shopping group is sampled from.
    pub population: usize,
    /// Number of shoppers (`n`).
    pub num_users: usize,
    /// Number of candidate items (`m`).
    pub num_items: usize,
    /// Number of display slots (`k`).
    pub num_slots: usize,
    /// Preference/social trade-off weight (`λ`).
    pub lambda: f64,
    /// Optional override of the utility model (defaults to the profile's).
    pub model: Option<UtilityModel>,
}

impl InstanceSpec {
    /// A small default spec suitable for unit tests and quick examples.
    pub fn small(profile: DatasetProfile) -> Self {
        Self {
            profile,
            population: 300,
            num_users: 15,
            num_items: 30,
            num_slots: 4,
            lambda: 0.5,
            model: None,
        }
    }

    /// The paper's default large-scale setting (`n = 125`, `m = 10000`,
    /// `k = 50`) — note that instances of this size should be pruned with
    /// [`SvgicInstance::prune_items`] before solving the relaxation.
    pub fn paper_default(profile: DatasetProfile) -> Self {
        Self {
            profile,
            population: 2_000,
            num_users: 125,
            num_items: 10_000,
            num_slots: 50,
            lambda: 0.5,
            model: None,
        }
    }

    /// Builds the instance: generates the background network, samples the
    /// shopping group by random walk, and fills the utilities.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> SvgicInstance {
        assert!(self.num_users >= 1, "need at least one user");
        assert!(
            self.num_slots <= self.num_items,
            "k must not exceed the number of items"
        );
        let network = self
            .profile
            .generate_network(self.population.max(self.num_users), rng);
        let sampled = random_walk_sample(&network, self.num_users, 0.15, rng);
        let (group, _) = network.induced_subgraph(&sampled);
        let model = self
            .model
            .clone()
            .unwrap_or_else(|| self.profile.utility_model());
        model.build_instance(group, self.num_items, self.num_slots, self.lambda, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use svgic_graph::GraphStats;

    #[test]
    fn profiles_have_the_expected_relative_density() {
        let mut rng = StdRng::seed_from_u64(2);
        let timik = DatasetProfile::TimikLike.generate_network(400, &mut rng);
        let yelp = DatasetProfile::YelpLike.generate_network(400, &mut rng);
        let epinions = DatasetProfile::EpinionsLike.generate_network(400, &mut rng);
        let d_timik = timik.density();
        let d_epinions = epinions.density();
        assert!(
            d_timik > d_epinions,
            "Timik-like ({d_timik}) should be denser than Epinions-like ({d_epinions})"
        );
        // Yelp-like is locally clustered: higher clustering coefficient than
        // the Erdős–Rényi Epinions-like graph.
        let c_yelp = GraphStats::compute(&yelp).clustering_coefficient;
        let c_epinions = GraphStats::compute(&epinions).clustering_coefficient;
        assert!(
            c_yelp > c_epinions,
            "Yelp-like clustering {c_yelp} vs Epinions-like {c_epinions}"
        );
    }

    #[test]
    fn small_specs_build_valid_instances() {
        let mut rng = StdRng::seed_from_u64(5);
        for profile in DatasetProfile::all() {
            let inst = InstanceSpec::small(profile).build(&mut rng);
            assert_eq!(inst.num_users(), 15);
            assert_eq!(inst.num_items(), 30);
            assert_eq!(inst.num_slots(), 4);
            assert!(
                inst.graph().num_friend_pairs() > 0,
                "{profile:?} sampled an edgeless group"
            );
        }
    }

    #[test]
    fn yelp_like_preferences_are_more_diverse_than_epinions_like() {
        let mut rng = StdRng::seed_from_u64(9);
        let top_overlap = |profile: DatasetProfile, rng: &mut StdRng| -> f64 {
            let inst = InstanceSpec {
                num_users: 25,
                num_items: 60,
                ..InstanceSpec::small(profile)
            }
            .build(rng);
            let tops: Vec<usize> = (0..inst.num_users())
                .map(|u| {
                    (0..inst.num_items())
                        .max_by(|&a, &b| {
                            inst.preference(u, a)
                                .partial_cmp(&inst.preference(u, b))
                                .unwrap()
                        })
                        .unwrap()
                })
                .collect();
            let distinct: std::collections::HashSet<_> = tops.iter().collect();
            1.0 - distinct.len() as f64 / tops.len() as f64
        };
        let yelp = top_overlap(DatasetProfile::YelpLike, &mut rng);
        let epinions = top_overlap(DatasetProfile::EpinionsLike, &mut rng);
        assert!(
            yelp <= epinions + 1e-9,
            "Yelp-like favourite-item overlap {yelp} should not exceed Epinions-like {epinions}"
        );
    }

    #[test]
    fn spec_respects_custom_model() {
        let mut rng = StdRng::seed_from_u64(13);
        let spec = InstanceSpec {
            model: Some(UtilityModel {
                kind: UtilityModelKind::AgreeLike,
                ..Default::default()
            }),
            ..InstanceSpec::small(DatasetProfile::TimikLike)
        };
        let inst = spec.build(&mut rng);
        if inst.graph().num_edges() > 0 {
            let (u, v) = inst.graph().edges()[0];
            let first = inst.social(u, v, 0);
            for c in 1..inst.num_items() {
                assert!((inst.social(u, v, c) - first).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must not exceed")]
    fn invalid_spec_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = InstanceSpec {
            num_items: 2,
            num_slots: 5,
            ..InstanceSpec::small(DatasetProfile::TimikLike)
        };
        let _ = spec.build(&mut rng);
    }
}
