//! The blocking TCP server: one engine, one acceptor, per-connection reader
//! and writer threads.
//!
//! Thread anatomy (all `std::thread`, no async runtime):
//!
//! ```text
//!                  ┌────────────┐   Job (request id, EngineRequest,
//!   conn A reader ─┤            │        reply sender)
//!   conn B reader ─┤ mpsc queue ├──► engine thread (owns the Engine,
//!   conn C reader ─┤            │    handles jobs strictly in arrival
//!                  └────────────┘    order — the serving path stays
//!                                    the engine's own batched scheduler)
//!        ▲                                      │
//!   acceptor thread                per-connection writer threads
//!   (TcpListener::incoming)        (response frames, matched by id)
//! ```
//!
//! Every connection gets its own reader thread (decodes frames into typed
//! requests) and writer thread (serializes response frames); the single
//! engine thread is the only place engine state is touched, so the server
//! adds **no** concurrency semantics the in-process engine did not already
//! have — a trace served over N connections is handled in the exact arrival
//! order of its requests. Responses carry the request id of the frame that
//! caused them, so a pipelining client can match them.
//!
//! Failure containment: a frame that fails to *decode* is answered with an
//! `EngineError::Transport` response (the connection lives on); a stream
//! whose framing is unrecoverable (bad magic, oversized length, mid-frame
//! death) is dropped without the engine ever seeing a partial request — a
//! malformed client cannot mutate any engine state.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use svgic_engine::codec::{decode_request, encode_response};
use svgic_engine::{Engine, EngineError, EngineRequest, Phase, SpanRecord, Tracer};

use crate::frame::{read_frame, write_frame, Frame, FrameKind};

/// A unit of work handed from a connection reader to the engine thread.
enum Job {
    /// A decoded request plus the route back to its connection's writer.
    Request {
        request_id: u64,
        request: EngineRequest,
        reply: Sender<Frame>,
        /// When the reader finished decoding the frame (tracing only, `None`
        /// while tracing is off). The engine thread closes this into a
        /// [`Phase::WireWait`] span at pickup: the time a decoded request
        /// spent queued behind other connections' work.
        decoded_at: Option<Instant>,
    },
    /// Stop the engine thread (sent when a client requests shutdown).
    Shutdown,
}

/// A running server: an [`Engine`] fronted by a TCP listener.
///
/// Construct with [`NetServer::bind`]; the server serves in background
/// threads until a client sends a shutdown frame
/// ([`crate::NetClient::shutdown_server`]), then [`NetServer::join`]
/// returns. Dropping the handle detaches the threads (the process keeps
/// serving), which is what `loadgen serve` relies on after printing the
/// bound address.
pub struct NetServer {
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    engine_thread: JoinHandle<()>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port) and
    /// starts serving `engine` in background threads.
    pub fn bind(addr: impl ToSocketAddrs, engine: Engine) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (job_tx, job_rx) = channel::<Job>();
        let stopping = Arc::new(AtomicBool::new(false));
        // The readers need the tracer to stamp decode times, but the engine
        // itself moves into its thread — clone the (Arc-backed) handle first.
        let tracer = engine.tracer().clone();

        let engine_thread = {
            let tracer = tracer.clone();
            std::thread::spawn(move || {
                let mut engine = engine;
                while let Ok(job) = job_rx.recv() {
                    match job {
                        Job::Request {
                            request_id,
                            request,
                            reply,
                            decoded_at,
                        } => {
                            // Close the wire-wait span: decode done → engine
                            // pickup, the queueing delay the mpsc hop added.
                            tracer.finish(
                                decoded_at,
                                Phase::WireWait,
                                request_id,
                                0,
                                SpanRecord::NO_SHARD,
                            );
                            // Serve under the frame's request id so the
                            // engine's Serve span (and everything inside it)
                            // correlates with the id the client chose and
                            // will see echoed.
                            let result = engine.handle_traced(request_id, request);
                            // A dead connection just drops its responses.
                            let _ = reply.send(Frame {
                                kind: FrameKind::Response,
                                request_id,
                                payload: encode_response(&result),
                            });
                        }
                        Job::Shutdown => break,
                    }
                }
            })
        };

        let acceptor = {
            let stopping = Arc::clone(&stopping);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let job_tx = job_tx.clone();
                    let stopping = Arc::clone(&stopping);
                    let tracer = tracer.clone();
                    std::thread::spawn(move || {
                        serve_connection(stream, addr, job_tx, stopping, tracer)
                    });
                }
            })
        };

        Ok(NetServer {
            addr,
            acceptor,
            engine_thread,
        })
    }

    /// The address the server actually bound (resolves `:0` ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client shuts the server down.
    pub fn join(self) {
        let _ = self.engine_thread.join();
        let _ = self.acceptor.join();
    }
}

/// Reader half of one connection: decode frames, feed the engine queue,
/// spawn the writer. Runs until the client hangs up, the stream desyncs, or
/// a shutdown frame arrives.
fn serve_connection(
    stream: TcpStream,
    server_addr: SocketAddr,
    job_tx: Sender<Job>,
    stopping: Arc<AtomicBool>,
    tracer: Tracer,
) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (conn_tx, conn_rx) = channel::<Frame>();
    let writer = std::thread::spawn(move || {
        let mut write_half = write_half;
        while let Ok(frame) = conn_rx.recv() {
            if write_frame(&mut write_half, &frame).is_err() {
                break;
            }
        }
    });

    let mut read_half = stream;
    // Clean hangup or unrecoverable framing (bad magic, oversized length,
    // mid-frame death) falls out of the `while let`: the connection closes
    // and the engine is never touched by the broken bytes.
    while let Ok(frame) = read_frame(&mut read_half) {
        match frame.kind {
            FrameKind::Request => match decode_request(&frame.payload) {
                Ok(request) => {
                    if job_tx
                        .send(Job::Request {
                            request_id: frame.request_id,
                            request,
                            reply: conn_tx.clone(),
                            decoded_at: tracer.begin(),
                        })
                        .is_err()
                    {
                        break; // engine thread already stopped
                    }
                }
                // Structurally sound frame, malformed payload: tell the
                // client and keep serving — the engine never saw it.
                Err(e) => {
                    let error: Result<svgic_engine::EngineResponse, EngineError> =
                        Err(EngineError::Transport(format!("request decode: {e}")));
                    let _ = conn_tx.send(Frame {
                        kind: FrameKind::Response,
                        request_id: frame.request_id,
                        payload: encode_response(&error),
                    });
                }
            },
            FrameKind::Shutdown => {
                stopping.store(true, Ordering::SeqCst);
                let _ = job_tx.send(Job::Shutdown);
                // Ack the shutdown, then poke the acceptor loose from
                // its blocking accept with a throwaway connection.
                let _ = conn_tx.send(Frame {
                    kind: FrameKind::Shutdown,
                    request_id: frame.request_id,
                    payload: Vec::new(),
                });
                let _ = TcpStream::connect(server_addr);
                break;
            }
            // A server never receives response frames; the stream is
            // confused — drop it.
            FrameKind::Response => break,
        }
    }
    drop(conn_tx);
    let _ = writer.join();
}
