//! The driver-facing TCP client: an [`EngineTransport`] over one framed
//! connection.
//!
//! [`NetClient`] is deliberately synchronous: each [`EngineTransport`]
//! call writes one request frame and blocks for the response frame with the
//! matching request id. That mirrors the in-process engine's call-and-return
//! semantics exactly, which is what keeps a driver generic over
//! `EngineTransport` byte-identical in its served configurations whether it
//! talks to an [`svgic_engine::Engine`] in this process or a `loadgen serve`
//! process across the network.
//!
//! Transport-level failures (connection death, framing desync, codec
//! rejects) surface as [`svgic_engine::EngineError::Transport`]; engine
//! rejections come back as the engine's own error variants, decoded from the
//! response payload.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

use svgic_engine::codec::{decode_response, encode_request};
use svgic_engine::transport::EngineTransport;
use svgic_engine::{EngineError, EngineRequest, EngineResponse};
use svgic_obs::{Phase, SpanRecord, Tracer};

use crate::frame::{read_frame, write_frame, Frame, FrameError, FrameKind};

/// A connection to a remote engine served by [`crate::NetServer`].
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
    tracer: Tracer,
}

impl NetClient {
    /// Connects to a serving engine (e.g. `"127.0.0.1:7741"`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            next_id: 1,
            tracer: Tracer::default(),
        })
    }

    /// Attaches a tracer: each request then records client-side
    /// [`Phase::WireEncode`], [`Phase::Serve`] (the network round trip) and
    /// [`Phase::WireDecode`] spans carrying the frame's request id — the same
    /// id the server's engine stamps on its own spans for that request, so
    /// client and server traces correlate without clock sync.
    pub fn with_tracer(mut self, tracer: Tracer) -> NetClient {
        self.tracer = tracer;
        self
    }

    /// The remote server's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Sends one frame and blocks for the frame echoing its request id.
    fn exchange(&mut self, kind: FrameKind, payload: Vec<u8>) -> Result<Frame, FrameError> {
        let request_id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.stream,
            &Frame {
                kind,
                request_id,
                payload,
            },
        )?;
        loop {
            let frame = read_frame(&mut self.stream)?;
            if frame.request_id == request_id {
                return Ok(frame);
            }
            // A frame for another id can only be a stale response from an
            // abandoned exchange on this connection; skip it.
        }
    }

    /// Asks the server to stop serving and waits for the acknowledgement.
    /// Consumes the client — the connection is useless afterwards.
    pub fn shutdown_server(mut self) -> Result<(), FrameError> {
        let ack = self.exchange(FrameKind::Shutdown, Vec::new())?;
        match ack.kind {
            FrameKind::Shutdown => Ok(()),
            other => Err(FrameError::Io(format!(
                "expected shutdown ack, got {other:?} frame"
            ))),
        }
    }
}

impl EngineTransport for NetClient {
    fn request(&mut self, request: EngineRequest) -> Result<EngineResponse, EngineError> {
        // The id exchange() will assign to this frame (it allocates
        // sequentially), so the spans below carry it.
        let request_id = self.next_id;
        let t_encode = self.tracer.begin();
        let payload = encode_request(&request);
        self.tracer.finish(
            t_encode,
            Phase::WireEncode,
            request_id,
            0,
            SpanRecord::NO_SHARD,
        );
        let t_serve = self.tracer.begin();
        let frame = self
            .exchange(FrameKind::Request, payload)
            .map_err(|e| EngineError::Transport(e.to_string()))?;
        self.tracer
            .finish(t_serve, Phase::Serve, request_id, 0, SpanRecord::NO_SHARD);
        if frame.kind != FrameKind::Response {
            return Err(EngineError::Transport(format!(
                "expected response frame, got {:?}",
                frame.kind
            )));
        }
        let t_decode = self.tracer.begin();
        let response = decode_response(&frame.payload)
            .map_err(|e| EngineError::Transport(format!("response decode: {e}")))?;
        self.tracer.finish(
            t_decode,
            Phase::WireDecode,
            request_id,
            0,
            SpanRecord::NO_SHARD,
        );
        response
    }
}
