//! The driver-facing TCP client: an [`EngineTransport`] over one framed
//! connection.
//!
//! [`NetClient`] is deliberately synchronous: each [`EngineTransport`]
//! call writes one request frame and blocks for the response frame with the
//! matching request id. That mirrors the in-process engine's call-and-return
//! semantics exactly, which is what keeps a driver generic over
//! `EngineTransport` byte-identical in its served configurations whether it
//! talks to an [`svgic_engine::Engine`] in this process or a `loadgen serve`
//! process across the network.
//!
//! Transport-level failures (connection death, framing desync, codec
//! rejects) surface as [`svgic_engine::EngineError::Transport`]; engine
//! rejections come back as the engine's own error variants, decoded from the
//! response payload.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use svgic_engine::codec::{decode_response, encode_request};
use svgic_engine::transport::EngineTransport;
use svgic_engine::{EngineError, EngineRequest, EngineResponse};
use svgic_obs::{Phase, SpanRecord, Tracer};

use crate::frame::{read_frame, write_frame, Frame, FrameError, FrameKind};

/// How a [`NetClient`] behaves when a request fails at the transport level
/// (connection death, a read timeout, framing desync).
///
/// With the default policy ([`RetryPolicy::none`]) a failure surfaces
/// immediately as [`EngineError::Transport`] — the pre-existing behaviour.
/// With retries enabled, the client sleeps `base_backoff · 2^attempt`,
/// reconnects to the address it originally dialled, and resends the request;
/// after `max_retries` failed retries the *last* error surfaces. Retrying
/// resends the whole request, so a request that reached the engine before the
/// connection died may execute twice — callers that enable retries accept
/// at-least-once semantics in exchange for surviving flaky networks (the
/// drivers' traffic is replayed deterministically, so CI smoke runs only
/// enable this against servers that fail *before* serving, never after).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (`0` = fail fast).
    pub max_retries: u32,
    /// Backoff before retry `n` is `base_backoff · 2^n`.
    pub base_backoff: Duration,
    /// Per-request read timeout on the socket (`None` = block forever). A
    /// request whose response does not arrive in time fails like any other
    /// transport error — and is retried under the same policy.
    pub request_timeout: Option<Duration>,
}

impl RetryPolicy {
    /// Fail-fast: no retries, no timeout (the behaviour of a plain
    /// [`NetClient::connect`]).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            request_timeout: None,
        }
    }

    /// The backoff before retry `attempt` (zero-based): `base_backoff ·
    /// 2^attempt`, saturating.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        self.base_backoff
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// A connection to a remote engine served by [`crate::NetServer`].
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
    tracer: Tracer,
    /// The address originally dialled — where a retrying client reconnects.
    addr: Option<SocketAddr>,
    policy: RetryPolicy,
}

impl NetClient {
    /// Connects to a serving engine (e.g. `"127.0.0.1:7741"`) with the
    /// fail-fast [`RetryPolicy::none`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        NetClient::connect_with_policy(addr, RetryPolicy::none())
    }

    /// Connects with an explicit retry/timeout policy.
    pub fn connect_with_policy(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(policy.request_timeout)?;
        let addr = stream.peer_addr().ok();
        Ok(NetClient {
            stream,
            next_id: 1,
            tracer: Tracer::default(),
            addr,
            policy,
        })
    }

    /// Dials a fresh connection to the original address, replacing the
    /// (presumed dead) stream.
    fn reconnect(&mut self) -> Result<(), FrameError> {
        let addr = self
            .addr
            .ok_or_else(|| FrameError::Io("peer address unknown; cannot reconnect".into()))?;
        let stream =
            TcpStream::connect(addr).map_err(|e| FrameError::Io(format!("reconnect: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| FrameError::Io(format!("reconnect: {e}")))?;
        stream
            .set_read_timeout(self.policy.request_timeout)
            .map_err(|e| FrameError::Io(format!("reconnect: {e}")))?;
        self.stream = stream;
        Ok(())
    }

    /// One exchange under the retry policy: fail-fast policies call
    /// [`NetClient::exchange`] directly; retrying policies sleep the
    /// exponential backoff, reconnect and resend until a response arrives or
    /// the retry budget is spent (the last error surfaces).
    fn exchange_resilient(
        &mut self,
        kind: FrameKind,
        payload: Vec<u8>,
    ) -> Result<Frame, FrameError> {
        if self.policy.max_retries == 0 {
            return self.exchange(kind, payload);
        }
        let mut last_error = match self.exchange(kind, payload.clone()) {
            Ok(frame) => return Ok(frame),
            Err(error) => error,
        };
        for attempt in 0..self.policy.max_retries {
            std::thread::sleep(self.policy.backoff_for(attempt));
            if let Err(error) = self.reconnect() {
                last_error = error;
                continue;
            }
            match self.exchange(kind, payload.clone()) {
                Ok(frame) => return Ok(frame),
                Err(error) => last_error = error,
            }
        }
        Err(last_error)
    }

    /// Attaches a tracer: each request then records client-side
    /// [`Phase::WireEncode`], [`Phase::Serve`] (the network round trip) and
    /// [`Phase::WireDecode`] spans carrying the frame's request id — the same
    /// id the server's engine stamps on its own spans for that request, so
    /// client and server traces correlate without clock sync.
    pub fn with_tracer(mut self, tracer: Tracer) -> NetClient {
        self.tracer = tracer;
        self
    }

    /// The remote server's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Sends one frame and blocks for the frame echoing its request id.
    fn exchange(&mut self, kind: FrameKind, payload: Vec<u8>) -> Result<Frame, FrameError> {
        let request_id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.stream,
            &Frame {
                kind,
                request_id,
                payload,
            },
        )?;
        loop {
            let frame = read_frame(&mut self.stream)?;
            if frame.request_id == request_id {
                return Ok(frame);
            }
            // A frame for another id can only be a stale response from an
            // abandoned exchange on this connection; skip it.
        }
    }

    /// Asks the server to stop serving and waits for the acknowledgement.
    /// Consumes the client — the connection is useless afterwards.
    pub fn shutdown_server(mut self) -> Result<(), FrameError> {
        let ack = self.exchange(FrameKind::Shutdown, Vec::new())?;
        match ack.kind {
            FrameKind::Shutdown => Ok(()),
            other => Err(FrameError::Io(format!(
                "expected shutdown ack, got {other:?} frame"
            ))),
        }
    }
}

impl EngineTransport for NetClient {
    fn request(&mut self, request: EngineRequest) -> Result<EngineResponse, EngineError> {
        // The id exchange() will assign to this frame (it allocates
        // sequentially), so the spans below carry it.
        let request_id = self.next_id;
        let t_encode = self.tracer.begin();
        let payload = encode_request(&request);
        self.tracer.finish(
            t_encode,
            Phase::WireEncode,
            request_id,
            0,
            SpanRecord::NO_SHARD,
        );
        let t_serve = self.tracer.begin();
        let frame = self
            .exchange_resilient(FrameKind::Request, payload)
            .map_err(|e| EngineError::Transport(e.to_string()))?;
        self.tracer
            .finish(t_serve, Phase::Serve, request_id, 0, SpanRecord::NO_SHARD);
        if frame.kind != FrameKind::Response {
            return Err(EngineError::Transport(format!(
                "expected response frame, got {:?}",
                frame.kind
            )));
        }
        let t_decode = self.tracer.begin();
        let response = decode_response(&frame.payload)
            .map_err(|e| EngineError::Transport(format!("response decode: {e}")))?;
        self.tracer.finish(
            t_decode,
            Phase::WireDecode,
            request_id,
            0,
            SpanRecord::NO_SHARD,
        );
        response
    }
}
