//! The wire frame: magic, version, kind, request id, length-prefixed
//! payload.
//!
//! Every message on a `svgic-net` connection is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic           b"SVGN"
//! 4       1     version         1
//! 5       1     kind            1 = request, 2 = response, 3 = shutdown
//! 6       8     request id      u64 little-endian, echoed in the response
//! 14      4     payload length  u32 little-endian, ≤ MAX_PAYLOAD
//! 18      n     payload         codec bytes (svgic_engine::codec)
//! ```
//!
//! The request id is assigned by the client and echoed verbatim by the
//! server, which is how responses are matched to requests when a connection
//! pipelines. Payloads of request frames are canonical
//! [`svgic_engine::codec::encode_request`] bytes; response frames carry
//! [`svgic_engine::codec::encode_response`] bytes; shutdown frames carry an
//! empty payload.
//!
//! Reading is **corruption-safe**: a wrong magic, an unsupported version, an
//! unknown kind or an oversized length prefix is rejected *before* any
//! payload allocation, and a connection that dies mid-frame surfaces as
//! [`FrameError::Truncated`] — never a panic, never a partial frame handed
//! upward. A connection closed cleanly *between* frames reads as
//! [`FrameError::Disconnected`], which servers treat as a normal hangup.

use std::io::{Read, Write};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SVGN";

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Upper bound on a frame payload (64 MiB). Large enough for any realistic
/// `CreateSession`/`ImportSession` instance, small enough that a corrupted
/// or hostile length prefix cannot balloon memory.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// What a frame is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: an encoded [`svgic_engine::EngineRequest`].
    Request,
    /// Server → client: an encoded `Result<EngineResponse, EngineError>`.
    Response,
    /// Client → server: stop serving (acked with an empty shutdown frame).
    Shutdown,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
            FrameKind::Shutdown => 3,
        }
    }

    fn from_byte(byte: u8) -> Result<Self, FrameError> {
        match byte {
            1 => Ok(FrameKind::Request),
            2 => Ok(FrameKind::Response),
            3 => Ok(FrameKind::Shutdown),
            other => Err(FrameError::BadKind(other)),
        }
    }
}

/// One framed message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What the frame is.
    pub kind: FrameKind,
    /// Client-assigned correlation id, echoed by the server.
    pub request_id: u64,
    /// Codec payload.
    pub payload: Vec<u8>,
}

/// Why a frame could not be read or written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Disconnected,
    /// The connection died (or the payload ended) mid-frame.
    Truncated,
    /// The first four bytes were not [`MAGIC`] — the peer is not speaking
    /// this protocol, or the stream lost sync.
    BadMagic([u8; 4]),
    /// The version byte is not one this build speaks.
    BadVersion(u8),
    /// The kind byte has no matching [`FrameKind`].
    BadKind(u8),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// An IO error other than EOF.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Disconnected => write!(f, "peer disconnected"),
            FrameError::Truncated => write!(f, "connection died mid-frame"),
            FrameError::BadMagic(bytes) => write!(f, "bad frame magic {bytes:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Oversized(n) => {
                write!(f, "payload length {n} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            FrameError::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => FrameError::Truncated,
            std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted => {
                FrameError::Truncated
            }
            _ => FrameError::Io(e.to_string()),
        }
    }
}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame(writer: &mut impl Write, frame: &Frame) -> Result<(), FrameError> {
    debug_assert!(frame.payload.len() <= MAX_PAYLOAD as usize);
    let mut header = [0u8; 18];
    header[0..4].copy_from_slice(&MAGIC);
    header[4] = VERSION;
    header[5] = frame.kind.to_byte();
    header[6..14].copy_from_slice(&frame.request_id.to_le_bytes());
    header[14..18].copy_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    writer.write_all(&header)?;
    writer.write_all(&frame.payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame, validating magic, version, kind and payload length
/// before allocating the payload.
pub fn read_frame(reader: &mut impl Read) -> Result<Frame, FrameError> {
    // Read the first byte with a bare `read` so a clean close (0 bytes)
    // is distinguishable from a mid-frame death.
    let mut first = [0u8; 1];
    loop {
        match reader.read(&mut first) {
            Ok(0) => return Err(FrameError::Disconnected),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let mut rest = [0u8; 17];
    reader.read_exact(&mut rest)?;
    let mut header = [0u8; 18];
    header[0] = first[0];
    header[1..].copy_from_slice(&rest);

    let magic = [header[0], header[1], header[2], header[3]];
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    if header[4] != VERSION {
        return Err(FrameError::BadVersion(header[4]));
    }
    let kind = FrameKind::from_byte(header[5])?;
    let request_id = u64::from_le_bytes([
        header[6], header[7], header[8], header[9], header[10], header[11], header[12], header[13],
    ]);
    let len = u32::from_le_bytes([header[14], header[15], header[16], header[17]]);
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(Frame {
        kind,
        request_id,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Frame {
        Frame {
            kind: FrameKind::Request,
            request_id: 0x0123_4567_89AB_CDEF,
            payload: vec![7, 7, 7],
        }
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        assert_eq!(buf.len(), 18 + 3);
        let frame = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(frame, sample());
    }

    #[test]
    fn clean_close_is_disconnected_but_midframe_is_truncated() {
        let empty: &[u8] = &[];
        assert_eq!(
            read_frame(&mut Cursor::new(empty)).err(),
            Some(FrameError::Disconnected)
        );
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        for cut in 1..buf.len() {
            assert_eq!(
                read_frame(&mut Cursor::new(&buf[..cut])).err(),
                Some(FrameError::Truncated),
                "cut at byte {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_version_kind_and_oversized_lengths_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad_magic)),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad_version = buf.clone();
        bad_version[4] = 99;
        assert_eq!(
            read_frame(&mut Cursor::new(&bad_version)).err(),
            Some(FrameError::BadVersion(99))
        );

        let mut bad_kind = buf.clone();
        bad_kind[5] = 0;
        assert_eq!(
            read_frame(&mut Cursor::new(&bad_kind)).err(),
            Some(FrameError::BadKind(0))
        );

        let mut oversized = buf.clone();
        oversized[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut Cursor::new(&oversized)).err(),
            Some(FrameError::Oversized(u32::MAX))
        );
    }
}
