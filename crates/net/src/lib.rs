//! # svgic-net — a real wire protocol for the serving engine
//!
//! Four PRs of serving infrastructure (engine, workload, cluster) ran
//! entirely in-process: the cluster's scale-out numbers were busy-clock
//! *projections*, not measurements over real hosts. This crate closes that
//! gap with a hand-rolled, offline-safe TCP transport:
//!
//! * [`frame`] — the length-prefixed binary frame (magic `SVGN`, version,
//!   kind, request id, payload), with corruption-safe reading: bad magic,
//!   oversized lengths and mid-frame disconnects error cleanly before any
//!   engine state is touched;
//! * [`server`] — a blocking [`std::net::TcpListener`] server fronting one
//!   [`svgic_engine::Engine`]: one acceptor, per-connection reader/writer
//!   threads, and a single engine thread that handles requests in arrival
//!   order (responses are matched to requests by id);
//! * [`client`] — [`NetClient`], which implements the same
//!   [`EngineTransport`](svgic_engine::transport::EngineTransport) trait as
//!   the in-process engine, so the `svgic-workload` load drivers and the
//!   `svgic-cluster` router run **unchanged** over TCP.
//!
//! The payload format is `svgic_engine::codec` — canonical bytes, specified
//! in `docs/FORMATS.md`. Because the engine is deterministic and the codec
//! is canonical, the same trace produces the **identical configuration
//! digest** in-process, over one TCP server, or over N server processes
//! (`loadgen serve` / `loadgen --connect`); CI's `net-smoke` step and
//! `tests/net_service.rs` assert exactly that.
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use svgic_engine::prelude::*;
//! use svgic_net::{NetClient, NetServer};
//!
//! // Server half: an engine behind an ephemeral loopback port.
//! let engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
//! let server = NetServer::bind("127.0.0.1:0", engine)?;
//!
//! // Client half: the same driver-facing trait as the in-process engine.
//! let mut client = NetClient::connect(server.local_addr())?;
//! let view = client.create_session(CreateSession {
//!     instance: svgic_core::example::running_example(),
//!     initial_present: vec![],
//!     seed: 7,
//! })?;
//! assert!(view.configuration.is_valid(view.catalog.len()));
//! client.shutdown_server()?;
//! server.join();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod server;

pub use client::{NetClient, RetryPolicy};
pub use frame::{Frame, FrameError, FrameKind, MAGIC, MAX_PAYLOAD, VERSION};
pub use server::NetServer;
