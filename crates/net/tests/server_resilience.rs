//! Malformed-frame and failure handling of the TCP server.
//!
//! The contract under test (ISSUE 5's malformed-frame satellite): truncated
//! frames, bad magic, oversized length prefixes and mid-frame disconnects
//! must error **cleanly** — no panic anywhere, no partial state mutation in
//! the engine — and a malformed connection must never take the server down
//! for well-behaved clients.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use svgic_core::example::running_example;
use svgic_engine::prelude::*;
use svgic_net::frame::{read_frame, write_frame, Frame, FrameKind};
use svgic_net::{NetClient, NetServer, RetryPolicy};

fn test_engine() -> Engine {
    Engine::new(EngineConfig {
        workers: 1,
        shards: 1,
        auto_flush_pending: 0,
        ..EngineConfig::default()
    })
}

fn create_spec(seed: u64) -> CreateSession {
    CreateSession {
        instance: running_example(),
        initial_present: vec![],
        seed,
    }
}

/// A healthy client must keep working after other connections misbehave in
/// every way the frame layer can reject.
#[test]
fn malformed_connections_do_not_poison_the_server() {
    let server = NetServer::bind("127.0.0.1:0", test_engine()).expect("binds");
    let addr = server.local_addr();

    // 1. Pure garbage bytes (bad magic): server drops the connection.
    {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("writes");
        // The server closes; reading yields EOF rather than hanging.
        let result = read_frame(&mut stream);
        assert!(result.is_err(), "garbage must not elicit a frame");
    }

    // 2. Oversized length prefix: rejected before allocation, connection
    //    dropped.
    {
        let mut stream = TcpStream::connect(addr).expect("connects");
        let mut header = Vec::new();
        header.extend_from_slice(b"SVGN");
        header.push(1); // version
        header.push(1); // request frame
        header.extend_from_slice(&7u64.to_le_bytes());
        header.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        stream.write_all(&header).expect("writes");
        let result = read_frame(&mut stream);
        assert!(result.is_err(), "oversized frame must be dropped");
    }

    // 3. Mid-frame disconnect: write half a header, hang up.
    {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream.write_all(b"SVGN\x01").expect("writes");
        drop(stream);
    }

    // 4. Valid frame, garbage payload: answered with a Transport error on
    //    the same connection, which stays usable.
    {
        let mut stream = TcpStream::connect(addr).expect("connects");
        write_frame(
            &mut stream,
            &Frame {
                kind: FrameKind::Request,
                request_id: 42,
                payload: vec![0xFF, 0x00, 0x13],
            },
        )
        .expect("writes");
        let frame = read_frame(&mut stream).expect("server answers");
        assert_eq!(frame.request_id, 42);
        assert_eq!(frame.kind, FrameKind::Response);
        let decoded = svgic_engine::codec::decode_response(&frame.payload).expect("decodes");
        assert!(
            matches!(decoded, Err(EngineError::Transport(_))),
            "expected a transport error, got {decoded:?}"
        );
        // Same connection still serves a valid request.
        write_frame(
            &mut stream,
            &Frame {
                kind: FrameKind::Request,
                request_id: 43,
                payload: svgic_engine::codec::encode_request(&EngineRequest::Describe),
            },
        )
        .expect("writes");
        let frame = read_frame(&mut stream).expect("server answers");
        assert_eq!(frame.request_id, 43);
    }

    // After all that abuse: a fresh well-behaved client works, and the
    // engine saw *zero* sessions from the malformed traffic.
    let mut client = NetClient::connect(addr).expect("connects");
    let info = client.describe().expect("describes");
    assert_eq!(info.sessions, 0, "malformed frames must not mutate state");
    let view = client.create_session(create_spec(5)).expect("creates");
    assert!(view.configuration.is_valid(view.catalog.len()));
    client.close_session(view.session).expect("closes");
    client.shutdown_server().expect("shuts down");
    server.join();
}

/// A semantically hostile `ImportSession` (valid frame, valid structure,
/// invalid session state — e.g. λ = 2.0) is rejected at decode and answered
/// with a Transport error; the engine thread survives and stays empty.
#[test]
fn hostile_import_cannot_kill_the_server() {
    let server = NetServer::bind("127.0.0.1:0", test_engine()).expect("binds");
    let mut client = NetClient::connect(server.local_addr()).expect("connects");
    // Build a real export, then poison its λ. Encoding doesn't validate
    // (it serializes trusted in-process values); decoding must.
    let view = client.create_session(create_spec(3)).expect("creates");
    let mut export = client.export_session(view.session).expect("exports");
    export.lambda = 2.0;
    let err = client
        .import_session(export)
        .expect_err("poisoned export must be rejected");
    assert!(matches!(err, EngineError::Transport(_)), "{err:?}");
    // The engine thread is alive and no half-imported session exists.
    let info = client.describe().expect("server still serves");
    assert_eq!(info.sessions, 0);
    // A clean export/import still round-trips on the same connection.
    let view = client.create_session(create_spec(4)).expect("creates");
    let export = client.export_session(view.session).expect("exports");
    let id = client.import_session(export).expect("imports");
    client.close_session(id).expect("closes");
    client.shutdown_server().expect("shuts down");
    server.join();
}

/// Engine-level rejections travel the wire as the engine's own error
/// variants, not transport failures.
#[test]
fn engine_errors_roundtrip_over_the_wire() {
    let server = NetServer::bind("127.0.0.1:0", test_engine()).expect("binds");
    let mut client = NetClient::connect(server.local_addr()).expect("connects");
    assert_eq!(
        client.query_configuration(SessionId(999)).err(),
        Some(EngineError::UnknownSession(SessionId(999)))
    );
    let view = client.create_session(create_spec(1)).expect("creates");
    let err = client
        .submit_event(
            view.session,
            SessionEvent::Membership(svgic_core::extensions::DynamicEvent::Join(10_000)),
        )
        .expect_err("out-of-range user");
    assert!(matches!(err, EngineError::InvalidEvent(_)), "{err:?}");
    client.shutdown_server().expect("shuts down");
    server.join();
}

/// Two pipelined requests on one connection come back in order with their
/// own request ids.
#[test]
fn pipelined_requests_are_matched_by_id() {
    let server = NetServer::bind("127.0.0.1:0", test_engine()).expect("binds");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connects");
    for (id, request) in [
        (100, EngineRequest::Describe),
        (200, EngineRequest::QueryStats),
        (300, EngineRequest::Flush),
    ] {
        write_frame(
            &mut stream,
            &Frame {
                kind: FrameKind::Request,
                request_id: id,
                payload: svgic_engine::codec::encode_request(&request),
            },
        )
        .expect("writes");
    }
    let ids: Vec<u64> = (0..3)
        .map(|_| read_frame(&mut stream).expect("answers").request_id)
        .collect();
    assert_eq!(ids, vec![100, 200, 300], "responses arrive in order");
    drop(stream);
    let client = NetClient::connect(server.local_addr()).expect("connects");
    client.shutdown_server().expect("shuts down");
    server.join();
}

/// How a sabotaged connection misbehaves after reading the client's first
/// request frame (which therefore "arrived" but is never forwarded).
#[derive(Clone, Copy)]
enum Sabotage {
    /// Hang up immediately: the client's response read sees EOF.
    Drop,
    /// Go silent: the client's response read must hit its own timeout.
    Hold(Duration),
}

/// A TCP saboteur in front of a real server: the first `sabotaged`
/// connections each have one request frame read and swallowed (the engine
/// behind never sees a byte of them), then misbehave per `mode`; every
/// later connection is forwarded verbatim both ways. Returns the proxy
/// address and the accepted-connection counter. The accept thread is
/// deliberately leaked — it blocks on `accept` and dies with the process.
fn sabotage_proxy(
    upstream: SocketAddr,
    sabotaged: usize,
    mode: Sabotage,
) -> (SocketAddr, Arc<AtomicUsize>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
    let addr = listener.local_addr().expect("bound");
    let connections = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&connections);
    std::thread::spawn(move || {
        for (index, stream) in listener.incoming().enumerate() {
            let Ok(mut client_side) = stream else { break };
            seen.fetch_add(1, Ordering::SeqCst);
            if index < sabotaged {
                // Sabotage on its own thread, so a held connection never
                // starves the accept loop the retry will arrive on.
                std::thread::spawn(move || {
                    let _ = read_frame(&mut client_side);
                    if let Sabotage::Hold(pause) = mode {
                        std::thread::sleep(pause);
                    }
                    drop(client_side);
                });
                continue;
            }
            let Ok(server_side) = TcpStream::connect(upstream) else {
                break;
            };
            let mut c2s_read = client_side.try_clone().expect("clones");
            let mut c2s_write = server_side.try_clone().expect("clones");
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut c2s_read, &mut c2s_write);
            });
            let mut s2c_read = server_side;
            let mut s2c_write = client_side;
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut s2c_read, &mut s2c_write);
            });
        }
    });
    (addr, connections)
}

/// ISSUE 10's retry satellite, the drop case: the server path swallows the
/// first request frame and hangs up. A fail-fast client surfaces the
/// failure; a retrying client reconnects, resends, and succeeds — and the
/// swallowed attempt mutated **zero** engine state (exactly one session
/// exists afterwards, created by the retry).
#[test]
fn retry_reconnects_and_resends_after_a_dropped_frame() {
    let server = NetServer::bind("127.0.0.1:0", test_engine()).expect("binds");
    let (addr, connections) = sabotage_proxy(server.local_addr(), 1, Sabotage::Drop);
    let mut client = NetClient::connect_with_policy(
        addr,
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            request_timeout: None,
        },
    )
    .expect("connects");
    let view = client.create_session(create_spec(21)).expect("retry lands");
    assert!(view.configuration.is_valid(view.catalog.len()));
    let info = client.describe().expect("describes");
    assert_eq!(
        info.sessions, 1,
        "the dropped first attempt must not have mutated the engine"
    );
    assert_eq!(
        connections.load(Ordering::SeqCst),
        2,
        "one sabotaged connection, one successful reconnect"
    );
    client.shutdown_server().expect("shuts down");
    server.join();
}

/// The delay case: the server path reads the request and goes silent. The
/// client's per-request read timeout fires, it reconnects and resends; the
/// engine ends up with exactly the retried state.
#[test]
fn retry_recovers_from_a_silent_server_via_request_timeout() {
    let server = NetServer::bind("127.0.0.1:0", test_engine()).expect("binds");
    let (addr, connections) = sabotage_proxy(
        server.local_addr(),
        1,
        Sabotage::Hold(Duration::from_millis(400)),
    );
    let mut client = NetClient::connect_with_policy(
        addr,
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            request_timeout: Some(Duration::from_millis(50)),
        },
    )
    .expect("connects");
    let started = Instant::now();
    let view = client.create_session(create_spec(22)).expect("retry lands");
    assert!(view.configuration.is_valid(view.catalog.len()));
    assert!(
        started.elapsed() >= Duration::from_millis(50),
        "the first attempt must have waited out the request timeout"
    );
    let info = client.describe().expect("describes");
    assert_eq!(info.sessions, 1, "the timed-out attempt mutated nothing");
    assert!(connections.load(Ordering::SeqCst) >= 2);
    client.shutdown_server().expect("shuts down");
    server.join();
}

/// Exhaustion: every connection is dropped after its first frame. The
/// retry budget is spent with exponential backoff between attempts, then
/// the *last* error surfaces as a clean [`EngineError::Transport`] — no
/// panic, no hang — and the attempt count is exactly `1 + max_retries`.
#[test]
fn exhausted_retries_surface_a_clean_transport_error() {
    // No upstream at all: every connection is sabotaged.
    let dead_upstream: SocketAddr = "127.0.0.1:1".parse().expect("parses");
    let (addr, connections) = sabotage_proxy(dead_upstream, usize::MAX, Sabotage::Drop);
    let policy = RetryPolicy {
        max_retries: 2,
        base_backoff: Duration::from_millis(5),
        request_timeout: None,
    };
    assert_eq!(policy.backoff_for(0), Duration::from_millis(5));
    assert_eq!(policy.backoff_for(1), Duration::from_millis(10));
    let mut client = NetClient::connect_with_policy(addr, policy).expect("connects");
    let started = Instant::now();
    let err = client
        .create_session(create_spec(23))
        .expect_err("no attempt can succeed");
    assert!(matches!(err, EngineError::Transport(_)), "{err:?}");
    assert!(
        started.elapsed() >= Duration::from_millis(15),
        "backoffs 5ms + 10ms must have been slept"
    );
    assert_eq!(
        connections.load(Ordering::SeqCst),
        3,
        "initial attempt + exactly max_retries reconnects"
    );
}

/// A client that dies mid-run leaves its sessions behind but the server
/// keeps serving; a new client sees the leftover state via Describe.
#[test]
fn client_death_leaves_server_consistent() {
    let server = NetServer::bind("127.0.0.1:0", test_engine()).expect("binds");
    let addr = server.local_addr();
    {
        let mut client = NetClient::connect(addr).expect("connects");
        client.create_session(create_spec(9)).expect("creates");
        // Dropped without close: simulates a crashed driver.
    }
    let mut client = NetClient::connect(addr).expect("connects");
    let info = client.describe().expect("describes");
    assert_eq!(info.sessions, 1, "session survives its client");
    client.shutdown_server().expect("shuts down");
    server.join();
}
