//! # svgic-metrics
//!
//! Evaluation metrics for SAVG k-Configurations, matching the measures
//! reported in §6 of the paper:
//!
//! 1. total SAVG utility (and the SVGIC-ST variant),
//! 2. execution time (collected by the experiment harness, not here),
//! 3. *Personal%* / *Social%* — the split of the total utility,
//! 4. *Inter%* / *Intra%* — fraction of friend pairs landing across / inside
//!    per-slot subgroups,
//! 5. normalized subgroup density,
//! 6. *Co-display%* — fraction of friend pairs sharing at least one view,
//! 7. *Alone%* — fraction of users never sharing a view with anyone,
//! 8. regret ratio (per user) and its empirical CDF,
//! 9. feasibility ratio under a subgroup-size cap, and
//! 10. size-constraint violation counts.
//!
//! Plus Pearson / Spearman correlation used by the user-study analysis (§6.9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use svgic_core::utility::{self, UtilitySplit};
use svgic_core::{Configuration, StParams, SvgicInstance};

/// The full set of subgroup-quality metrics for one configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SubgroupMetrics {
    /// Fraction of friend pairs that are in the same subgroup, averaged over
    /// slots (*Intra%*).
    pub intra_fraction: f64,
    /// `1 - intra_fraction` (*Inter%*).
    pub inter_fraction: f64,
    /// Average per-slot subgroup density normalized by the whole-graph density.
    pub normalized_density: f64,
    /// Fraction of friend pairs co-displayed at least one common item
    /// (*Co-display%*).
    pub co_display_fraction: f64,
    /// Fraction of users that never share a view with any friend (*Alone%*).
    pub alone_fraction: f64,
    /// Average number of subgroups per slot.
    pub avg_subgroups_per_slot: f64,
    /// Largest subgroup observed at any slot.
    pub max_subgroup_size: usize,
}

/// Computes the subgroup metrics of a configuration.
pub fn subgroup_metrics(instance: &SvgicInstance, config: &Configuration) -> SubgroupMetrics {
    let graph = instance.graph();
    let pairs = instance.friend_pairs();
    let k = config.num_slots();
    let n = config.num_users();

    // Intra% averaged across slots.
    let (mut intra_sum, mut density_sum, mut subgroup_count_sum) = (0.0, 0.0, 0.0);
    let graph_density = graph.density();
    for s in 0..k {
        let groups = config.subgroups_at_slot(s);
        subgroup_count_sum += groups.len() as f64;
        if !pairs.is_empty() {
            let intra = pairs
                .iter()
                .filter(|p| config.get(p.u, s) == config.get(p.v, s))
                .count();
            intra_sum += intra as f64 / pairs.len() as f64;
        }
        if graph_density > 0.0 && !groups.is_empty() {
            let avg_density: f64 = groups
                .iter()
                .map(|(_, members)| graph.subgroup_density(members))
                .sum::<f64>()
                / groups.len() as f64;
            density_sum += avg_density / graph_density;
        }
    }
    let intra_fraction = if k == 0 { 0.0 } else { intra_sum / k as f64 };
    let normalized_density = if k == 0 { 0.0 } else { density_sum / k as f64 };

    // Co-display% over friend pairs and Alone% over users.
    let co_display = if pairs.is_empty() {
        0.0
    } else {
        pairs
            .iter()
            .filter(|p| config.shares_view(p.u, p.v))
            .count() as f64
            / pairs.len() as f64
    };
    let mut alone = 0usize;
    for u in 0..n {
        let shares = graph
            .neighbors(u)
            .into_iter()
            .any(|v| config.shares_view(u, v));
        if !shares {
            alone += 1;
        }
    }

    SubgroupMetrics {
        intra_fraction,
        inter_fraction: 1.0 - intra_fraction,
        normalized_density,
        co_display_fraction: co_display,
        alone_fraction: if n == 0 { 0.0 } else { alone as f64 / n as f64 },
        avg_subgroups_per_slot: if k == 0 {
            0.0
        } else {
            subgroup_count_sum / k as f64
        },
        max_subgroup_size: config.max_subgroup_size(),
    }
}

/// Weighted Personal% / Social% split (re-exported from the core crate for a
/// single metrics entry point).
pub fn utility_split(instance: &SvgicInstance, config: &Configuration) -> UtilitySplit {
    utility::utility_split(instance, config)
}

/// Per-user regret ratios (§6.5), one entry per user, each in `[0, 1]`.
pub fn regret_ratios(instance: &SvgicInstance, config: &Configuration) -> Vec<f64> {
    (0..instance.num_users())
        .map(|u| utility::regret_ratio(instance, config, u))
        .collect()
}

/// Empirical CDF of `values` evaluated at `points`: the fraction of values
/// `≤ p` for every `p` in `points`.
pub fn empirical_cdf(values: &[f64], points: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return vec![0.0; points.len()];
    }
    points
        .iter()
        .map(|&p| values.iter().filter(|&&v| v <= p + 1e-12).count() as f64 / values.len() as f64)
        .collect()
}

/// Mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Pearson correlation coefficient; 0 when either side has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "correlation inputs must align");
    if x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Spearman rank correlation (Pearson on average ranks; ties share ranks).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "correlation inputs must align");
    pearson(&ranks(x), &ranks(y))
}

fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && (values[idx[j + 1]] - values[idx[i]]).abs() < 1e-12 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Feasibility and violation statistics under a subgroup-size cap (§6.8).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StMetrics {
    /// Total number of excess users over all slots and items.
    pub total_violation: usize,
    /// Number of oversized subgroups.
    pub oversized_subgroups: usize,
    /// Whether the configuration is feasible.
    pub feasible: bool,
}

/// Computes the SVGIC-ST violation metrics of one configuration.
pub fn st_metrics(st: &StParams, config: &Configuration) -> StMetrics {
    StMetrics {
        total_violation: st.total_violation(config),
        oversized_subgroups: st.oversized_subgroups(config),
        feasible: st.is_feasible(config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::{paper_configurations, running_example};

    #[test]
    fn group_configuration_has_full_intra_and_codisplay() {
        let inst = running_example();
        let cfg = paper_configurations().group;
        let m = subgroup_metrics(&inst, &cfg);
        assert!((m.intra_fraction - 1.0).abs() < 1e-12);
        assert!((m.inter_fraction - 0.0).abs() < 1e-12);
        assert!((m.co_display_fraction - 1.0).abs() < 1e-12);
        assert_eq!(m.alone_fraction, 0.0);
        assert!((m.normalized_density - 1.0).abs() < 1e-12);
        assert!((m.avg_subgroups_per_slot - 1.0).abs() < 1e-12);
        assert_eq!(m.max_subgroup_size, 4);
    }

    #[test]
    fn personalized_configuration_is_mostly_alone() {
        let inst = running_example();
        let cfg = paper_configurations().personalized;
        let m = subgroup_metrics(&inst, &cfg);
        assert_eq!(m.co_display_fraction, 0.0);
        assert_eq!(m.alone_fraction, 1.0);
        assert_eq!(m.intra_fraction, 0.0);
        assert_eq!(m.max_subgroup_size, 1);
    }

    #[test]
    fn optimal_configuration_sits_between_the_extremes() {
        let inst = running_example();
        let m = subgroup_metrics(&inst, &paper_configurations().optimal);
        assert!(m.intra_fraction > 0.0 && m.intra_fraction < 1.0);
        assert!((m.co_display_fraction - 1.0).abs() < 1e-12);
        assert_eq!(m.alone_fraction, 0.0);
    }

    #[test]
    fn regret_and_cdf_behave() {
        let inst = running_example();
        let regrets = regret_ratios(&inst, &paper_configurations().optimal);
        assert_eq!(regrets.len(), 4);
        assert!(regrets.iter().all(|r| (0.0..=1.0).contains(r)));
        let cdf = empirical_cdf(&regrets, &[0.0, 0.5, 1.0]);
        assert_eq!(cdf.len(), 3);
        assert!(cdf[2] >= cdf[1] && cdf[1] >= cdf[0]);
        assert!((cdf[2] - 1.0).abs() < 1e-12);
        assert_eq!(empirical_cdf(&[], &[0.5]), vec![0.0]);
    }

    #[test]
    fn correlations_on_known_data() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y_lin = [2.0, 4.0, 6.0, 8.0, 10.0];
        assert!((pearson(&x, &y_lin) - 1.0).abs() < 1e-9);
        assert!((spearman(&x, &y_lin) - 1.0).abs() < 1e-9);
        let y_anti = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&x, &y_anti) + 1.0).abs() < 1e-9);
        let y_mono = [1.0, 10.0, 11.0, 50.0, 100.0];
        assert!(spearman(&x, &y_mono) > 0.999);
        assert!(pearson(&x, &y_mono) < 1.0);
        let constant = [3.0; 5];
        assert_eq!(pearson(&x, &constant), 0.0);
    }

    #[test]
    fn st_metrics_report_violations() {
        let inst = running_example();
        let cfg = paper_configurations().group;
        let tight = StParams::new(0.5, 2);
        let m = st_metrics(&tight, &cfg);
        assert_eq!(m.total_violation, 2 * inst.num_slots());
        assert_eq!(m.oversized_subgroups, inst.num_slots());
        assert!(!m.feasible);
        let loose = StParams::new(0.5, 4);
        assert!(st_metrics(&loose, &cfg).feasible);
    }

    #[test]
    fn mean_and_ranks_handle_ties() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        let r = ranks(&[1.0, 2.0, 2.0, 5.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
