//! Compact directed social-graph representation with stable edge indices.
//!
//! The SVGIC social-utility input `τ(u, v, c)` is keyed per *directed* edge:
//! the utility user `u` gains from discussing item `c` with friend `v` may
//! differ from what `v` gains from `u`.  The [`SocialGraph`] therefore stores
//! directed edges, assigns every edge a stable [`EdgeIdx`] in insertion order,
//! and offers helpers for the *undirected friend pairs* the paper's co-display
//! analysis iterates over.

use std::collections::{HashMap, HashSet, VecDeque};

/// Index of a node (user) in a [`SocialGraph`].
pub type NodeIdx = usize;

/// Index of a directed edge in a [`SocialGraph`], stable across the graph's
/// lifetime (edges cannot be removed, only added).
pub type EdgeIdx = usize;

/// A directed graph over `n` nodes with stable edge indices and adjacency
/// lists in both directions.
///
/// Parallel edges are rejected; self loops are rejected (a shopper does not
/// discuss items with herself).
#[derive(Clone, Debug, Default)]
pub struct SocialGraph {
    n: usize,
    /// Directed edges `(source, target)` in insertion order.
    edges: Vec<(NodeIdx, NodeIdx)>,
    /// Outgoing adjacency: `out_adj[u]` lists `(v, e)` with `edges[e] == (u, v)`.
    out_adj: Vec<Vec<(NodeIdx, EdgeIdx)>>,
    /// Incoming adjacency: `in_adj[v]` lists `(u, e)` with `edges[e] == (u, v)`.
    in_adj: Vec<Vec<(NodeIdx, EdgeIdx)>>,
    /// Fast membership lookup for `(u, v)` directed pairs.
    edge_lookup: HashMap<(NodeIdx, NodeIdx), EdgeIdx>,
}

impl SocialGraph {
    /// Creates an empty graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
            edge_lookup: HashMap::new(),
        }
    }

    /// Creates a graph from a list of directed edges over `n` nodes.
    ///
    /// Duplicate edges and self loops are silently skipped so that generators
    /// can over-produce candidate edges.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeIdx, NodeIdx)>) -> Self {
        let mut g = Self::new(n);
        for (u, v) in edges {
            let _ = g.add_edge(u, v);
        }
        g
    }

    /// Creates a graph from a list of *undirected* friendships over `n` nodes;
    /// every pair `(u, v)` is inserted as the two directed edges `(u, v)` and
    /// `(v, u)`, matching how the paper's datasets store friendships.
    pub fn from_undirected_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeIdx, NodeIdx)>,
    ) -> Self {
        let mut g = Self::new(n);
        for (u, v) in edges {
            let _ = g.add_edge(u, v);
            let _ = g.add_edge(v, u);
        }
        g
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns true if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds the directed edge `(u, v)`.
    ///
    /// Returns `Some(edge_index)` if inserted, `None` if the edge already
    /// existed or would be a self loop.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: NodeIdx, v: NodeIdx) -> Option<EdgeIdx> {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        if u == v || self.edge_lookup.contains_key(&(u, v)) {
            return None;
        }
        let e = self.edges.len();
        self.edges.push((u, v));
        self.out_adj[u].push((v, e));
        self.in_adj[v].push((u, e));
        self.edge_lookup.insert((u, v), e);
        Some(e)
    }

    /// Returns the endpoints `(source, target)` of edge `e`.
    pub fn edge(&self, e: EdgeIdx) -> (NodeIdx, NodeIdx) {
        self.edges[e]
    }

    /// All directed edges in insertion order.
    pub fn edges(&self) -> &[(NodeIdx, NodeIdx)] {
        &self.edges
    }

    /// Index of directed edge `(u, v)` if present.
    pub fn edge_index(&self, u: NodeIdx, v: NodeIdx) -> Option<EdgeIdx> {
        self.edge_lookup.get(&(u, v)).copied()
    }

    /// True if the directed edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeIdx, v: NodeIdx) -> bool {
        self.edge_lookup.contains_key(&(u, v))
    }

    /// True if `u` and `v` are friends in either direction.
    pub fn are_friends(&self, u: NodeIdx, v: NodeIdx) -> bool {
        self.has_edge(u, v) || self.has_edge(v, u)
    }

    /// Outgoing neighbours of `u` with their edge indices.
    pub fn out_neighbors(&self, u: NodeIdx) -> &[(NodeIdx, EdgeIdx)] {
        &self.out_adj[u]
    }

    /// Incoming neighbours of `v` with their edge indices.
    pub fn in_neighbors(&self, v: NodeIdx) -> &[(NodeIdx, EdgeIdx)] {
        &self.in_adj[v]
    }

    /// All distinct neighbours of `u` (union of in- and out-neighbours).
    pub fn neighbors(&self, u: NodeIdx) -> Vec<NodeIdx> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for &(v, _) in &self.out_adj[u] {
            if seen.insert(v) {
                out.push(v);
            }
        }
        for &(v, _) in &self.in_adj[u] {
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeIdx) -> usize {
        self.out_adj[u].len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: NodeIdx) -> usize {
        self.in_adj[u].len()
    }

    /// Total (undirected) degree of `u`: number of distinct neighbours.
    pub fn degree(&self, u: NodeIdx) -> usize {
        self.neighbors(u).len()
    }

    /// Distinct undirected friend pairs `(u, v)` with `u < v`, each with the
    /// list of directed edge indices connecting them (one or two entries).
    ///
    /// These are the pairs the co-display analysis of the paper iterates over:
    /// the pair contributes `τ(u, v, c) + τ(v, u, c)` (where a missing
    /// direction contributes zero) when `u` and `v` are co-displayed `c`.
    pub fn friend_pairs(&self) -> Vec<(NodeIdx, NodeIdx, Vec<EdgeIdx>)> {
        let mut map: HashMap<(NodeIdx, NodeIdx), Vec<EdgeIdx>> = HashMap::new();
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            let key = if u < v { (u, v) } else { (v, u) };
            map.entry(key).or_default().push(e);
        }
        let mut pairs: Vec<_> = map.into_iter().map(|((u, v), es)| (u, v, es)).collect();
        pairs.sort_by_key(|&(u, v, _)| (u, v));
        pairs
    }

    /// Number of distinct undirected friend pairs.
    pub fn num_friend_pairs(&self) -> usize {
        self.friend_pairs().len()
    }

    /// Induced subgraph on `nodes`.
    ///
    /// Returns the subgraph together with the mapping `new index -> old index`
    /// (i.e. `mapping[i]` is the original node of subgraph node `i`).
    pub fn induced_subgraph(&self, nodes: &[NodeIdx]) -> (SocialGraph, Vec<NodeIdx>) {
        let mut index_of: HashMap<NodeIdx, usize> = HashMap::new();
        let mut mapping = Vec::with_capacity(nodes.len());
        for &v in nodes {
            if let std::collections::hash_map::Entry::Vacant(e) = index_of.entry(v) {
                e.insert(mapping.len());
                mapping.push(v);
            }
        }
        let mut sub = SocialGraph::new(mapping.len());
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            let _ = e;
            if let (Some(&iu), Some(&iv)) = (index_of.get(&u), index_of.get(&v)) {
                let _ = sub.add_edge(iu, iv);
            }
        }
        (sub, mapping)
    }

    /// Nodes reachable from `root` within `hops` undirected hops (the `root`
    /// itself is included).  Used to extract the 2-hop ego networks of the
    /// paper's Fig. 11 case study.
    pub fn ego_network(&self, root: NodeIdx, hops: usize) -> Vec<NodeIdx> {
        let mut dist: HashMap<NodeIdx, usize> = HashMap::new();
        dist.insert(root, 0);
        let mut queue = VecDeque::new();
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            let d = dist[&u];
            if d == hops {
                continue;
            }
            for v in self.neighbors(u) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(d + 1);
                    queue.push_back(v);
                }
            }
        }
        let mut nodes: Vec<NodeIdx> = dist.into_keys().collect();
        nodes.sort_unstable();
        nodes
    }

    /// Undirected connected components, each sorted ascending.
    pub fn connected_components(&self) -> Vec<Vec<NodeIdx>> {
        let mut seen = vec![false; self.n];
        let mut components = Vec::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::new();
            queue.push_back(start);
            seen[start] = true;
            while let Some(u) = queue.pop_front() {
                comp.push(u);
                for v in self.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        queue.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }

    /// Enumerates all undirected triangles `(a, b, c)` with `a < b < c`.
    ///
    /// Used by the Max-K3P hardness reduction of the paper (§3.3), which
    /// creates one item per triangle of the input graph.
    pub fn triangles(&self) -> Vec<(NodeIdx, NodeIdx, NodeIdx)> {
        let mut und: Vec<HashSet<NodeIdx>> = vec![HashSet::new(); self.n];
        for &(u, v) in &self.edges {
            und[u].insert(v);
            und[v].insert(u);
        }
        let mut triangles = Vec::new();
        for a in 0..self.n {
            let mut nbrs: Vec<_> = und[a].iter().copied().filter(|&b| b > a).collect();
            nbrs.sort_unstable();
            for i in 0..nbrs.len() {
                for j in (i + 1)..nbrs.len() {
                    let (b, c) = (nbrs[i], nbrs[j]);
                    if und[b].contains(&c) {
                        triangles.push((a, b, c));
                    }
                }
            }
        }
        triangles
    }

    /// Undirected density of the graph: `#friend pairs / (n * (n - 1) / 2)`.
    ///
    /// Returns 0 for graphs with fewer than two nodes.
    pub fn density(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let possible = (self.n * (self.n - 1)) as f64 / 2.0;
        self.num_friend_pairs() as f64 / possible
    }

    /// Density of the subgroup `nodes` (friend pairs inside the subgroup over
    /// all possible pairs inside it).  Singleton or empty subgroups have
    /// density 0.
    pub fn subgroup_density(&self, nodes: &[NodeIdx]) -> f64 {
        if nodes.len() < 2 {
            return 0.0;
        }
        let set: HashSet<_> = nodes.iter().copied().collect();
        let mut inside = 0usize;
        for (u, v, _) in self.friend_pairs() {
            if set.contains(&u) && set.contains(&v) {
                inside += 1;
            }
        }
        let possible = (set.len() * (set.len() - 1)) as f64 / 2.0;
        inside as f64 / possible
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> SocialGraph {
        // 0 - 1, 0 - 2, 1 - 2, 2 - 3  (undirected)
        SocialGraph::from_undirected_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
    }

    #[test]
    fn add_edge_rejects_duplicates_and_self_loops() {
        let mut g = SocialGraph::new(3);
        assert_eq!(g.add_edge(0, 1), Some(0));
        assert_eq!(g.add_edge(0, 1), None);
        assert_eq!(g.add_edge(1, 1), None);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = SocialGraph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn from_undirected_creates_both_directions() {
        let g = diamond();
        assert_eq!(g.num_edges(), 8);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.are_friends(3, 2));
        assert!(!g.are_friends(0, 3));
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = diamond();
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.out_degree(2), 3);
        assert_eq!(g.in_degree(2), 3);
        let mut nbrs = g.neighbors(0);
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![1, 2]);
    }

    #[test]
    fn friend_pairs_collapse_directions() {
        let g = diamond();
        let pairs = g.friend_pairs();
        assert_eq!(pairs.len(), 4);
        for (_, _, es) in &pairs {
            assert_eq!(es.len(), 2);
        }
        // A purely one-directional edge still forms a friend pair.
        let mut g2 = SocialGraph::new(2);
        g2.add_edge(0, 1);
        assert_eq!(g2.friend_pairs().len(), 1);
        assert_eq!(g2.friend_pairs()[0].2.len(), 1);
    }

    #[test]
    fn edge_index_lookup() {
        let g = diamond();
        let e = g.edge_index(2, 3).unwrap();
        assert_eq!(g.edge(e), (2, 3));
        assert!(g.edge_index(3, 0).is_none());
    }

    #[test]
    fn induced_subgraph_remaps_nodes() {
        let g = diamond();
        let (sub, mapping) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(mapping, vec![1, 2, 3]);
        // Edges 1-2 and 2-3 survive (both directions).
        assert_eq!(sub.num_edges(), 4);
        assert!(sub.are_friends(0, 1)); // old 1-2
        assert!(sub.are_friends(1, 2)); // old 2-3
        assert!(!sub.are_friends(0, 2));
    }

    #[test]
    fn ego_network_hops() {
        let g = diamond();
        assert_eq!(g.ego_network(3, 1), vec![2, 3]);
        assert_eq!(g.ego_network(3, 2), vec![0, 1, 2, 3]);
        assert_eq!(g.ego_network(0, 0), vec![0]);
    }

    #[test]
    fn connected_components_finds_isolated_nodes() {
        let mut g = SocialGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 3);
        let comps = g.connected_components();
        assert_eq!(comps.len(), 3);
        assert!(comps.contains(&vec![0, 1]));
        assert!(comps.contains(&vec![2, 3]));
        assert!(comps.contains(&vec![4]));
    }

    #[test]
    fn triangles_enumeration() {
        let g = diamond();
        assert_eq!(g.triangles(), vec![(0, 1, 2)]);
        let complete =
            SocialGraph::from_undirected_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(complete.triangles().len(), 4);
    }

    #[test]
    fn density_values() {
        let g = diamond();
        assert!((g.density() - 4.0 / 6.0).abs() < 1e-12);
        assert!((g.subgroup_density(&[0, 1, 2]) - 1.0).abs() < 1e-12);
        assert_eq!(g.subgroup_density(&[3]), 0.0);
        assert_eq!(SocialGraph::new(1).density(), 0.0);
    }
}
