//! # svgic-graph
//!
//! Directed social-graph substrate for the SVGIC reproduction.
//!
//! The SVGIC problem (Ko et al., VLDB 2020) takes as input a *directed* social
//! network `G = (V, E)` of shoppers.  This crate provides:
//!
//! * [`SocialGraph`] — a compact adjacency-list representation of a directed
//!   graph with stable edge indices (edge indices are what the core crate uses
//!   to key the social-utility table `τ(u, v, c)`),
//! * graph statistics (density, degree distributions, clustering coefficient)
//!   in [`stats`],
//! * synthetic topology generators (Erdős–Rényi, Barabási–Albert,
//!   Watts–Strogatz, planted communities) in [`generate`] used by the
//!   dataset-substitution layer,
//! * sampling procedures (random-walk, BFS/snowball, uniform) in [`sample`]
//!   mirroring how the paper samples shopping groups out of the full networks,
//! * community detection (label propagation, densest-subgroup peeling) in
//!   [`community`] used by the SDP baseline and the subgroup-by-friendship
//!   baseline, and
//! * k-means clustering over dense feature vectors in [`cluster`] used by the
//!   GRF / subgroup-by-preference baselines.
//!
//! The crate has no dependency on the rest of the workspace so it can be
//! reused as a generic lightweight graph library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod community;
pub mod generate;
pub mod graph;
pub mod sample;
pub mod stats;

pub use cluster::{kmeans, KMeansConfig, KMeansResult};
pub use community::{balanced_partition, densest_subgroup_peeling, label_propagation, Partition};
pub use generate::{
    barabasi_albert, complete_graph, erdos_renyi, planted_partition, star_graph, watts_strogatz,
};
pub use graph::{EdgeIdx, NodeIdx, SocialGraph};
pub use sample::{bfs_sample, random_walk_sample, uniform_sample};
pub use stats::GraphStats;
