//! Descriptive statistics of a [`SocialGraph`].
//!
//! Used by the dataset-substitution layer to verify that the synthetic
//! Timik/Yelp/Epinions-like topologies exhibit the qualitative properties the
//! paper's analysis relies on (density, degree skew, local clustering), and by
//! the experiment harness to report them.

use crate::graph::{NodeIdx, SocialGraph};
use std::collections::HashSet;

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub directed_edges: usize,
    /// Number of distinct undirected friend pairs.
    pub friend_pairs: usize,
    /// Undirected density in `[0, 1]`.
    pub density: f64,
    /// Average undirected degree.
    pub avg_degree: f64,
    /// Maximum undirected degree.
    pub max_degree: usize,
    /// Global clustering coefficient (3 × triangles / connected triples);
    /// zero if the graph has no connected triples.
    pub clustering_coefficient: f64,
    /// Number of connected components.
    pub components: usize,
}

impl GraphStats {
    /// Computes the statistics of `graph`.
    pub fn compute(graph: &SocialGraph) -> Self {
        let n = graph.num_nodes();
        let degrees: Vec<usize> = (0..n).map(|u| graph.degree(u)).collect();
        let avg_degree = if n == 0 {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / n as f64
        };
        let triangles = graph.triangles().len();
        let triples: usize = degrees.iter().map(|&d| d * d.saturating_sub(1) / 2).sum();
        let clustering_coefficient = if triples == 0 {
            0.0
        } else {
            3.0 * triangles as f64 / triples as f64
        };
        Self {
            nodes: n,
            directed_edges: graph.num_edges(),
            friend_pairs: graph.num_friend_pairs(),
            density: graph.density(),
            avg_degree,
            max_degree: degrees.iter().copied().max().unwrap_or(0),
            clustering_coefficient,
            components: graph.connected_components().len(),
        }
    }
}

/// Counts the number of friend pairs fully inside `subgroup`.
pub fn internal_friend_pairs(graph: &SocialGraph, subgroup: &[NodeIdx]) -> usize {
    let set: HashSet<_> = subgroup.iter().copied().collect();
    graph
        .friend_pairs()
        .into_iter()
        .filter(|&(u, v, _)| set.contains(&u) && set.contains(&v))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{complete_graph, erdos_renyi, star_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stats_of_complete_graph() {
        let g = complete_graph(5);
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.friend_pairs, 10);
        assert!((s.density - 1.0).abs() < 1e-12);
        assert!((s.avg_degree - 4.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 4);
        assert!((s.clustering_coefficient - 1.0).abs() < 1e-12);
        assert_eq!(s.components, 1);
    }

    #[test]
    fn stats_of_star_graph_has_zero_clustering() {
        let g = star_graph(6);
        let s = GraphStats::compute(&g);
        assert_eq!(s.clustering_coefficient, 0.0);
        assert_eq!(s.max_degree, 5);
        assert_eq!(s.components, 1);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = SocialGraph::new(0);
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.components, 0);
    }

    #[test]
    fn internal_pairs_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi(30, 0.2, &mut rng);
        let all: Vec<usize> = (0..30).collect();
        assert_eq!(internal_friend_pairs(&g, &all), g.num_friend_pairs());
        assert_eq!(internal_friend_pairs(&g, &[0]), 0);
    }
}
