//! K-means clustering over dense feature vectors.
//!
//! The GRF baseline and the subgroup-by-preference approach partition the
//! shopping group by *preference similarity* (each user is represented by her
//! preference vector over the candidate items).  A small, dependency-free
//! Lloyd's k-means with k-means++ seeding is sufficient at the paper's scale
//! (n ≤ a few hundred users).

use rand::Rng;

/// Configuration for [`kmeans`].
#[derive(Clone, Debug)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement (squared L2).
    pub tolerance: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 2,
            max_iters: 100,
            tolerance: 1e-9,
        }
    }
}

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster index for each input point.
    pub assignment: Vec<usize>,
    /// Final centroids, `k × dim`, row-major.
    pub centroids: Vec<Vec<f64>>,
    /// Total within-cluster sum of squared distances.
    pub inertia: f64,
    /// Number of iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs Lloyd's k-means with k-means++ initialisation on `points`
/// (each point a slice of equal dimension).
///
/// Empty clusters are re-seeded with the point farthest from its centroid so
/// the requested number of clusters is preserved whenever `points.len() >= k`.
///
/// # Panics
/// Panics if `points` is empty, `config.k == 0`, or points have inconsistent
/// dimensions.
pub fn kmeans<R: Rng + ?Sized>(
    points: &[Vec<f64>],
    config: &KMeansConfig,
    rng: &mut R,
) -> KMeansResult {
    assert!(!points.is_empty(), "kmeans requires at least one point");
    assert!(config.k > 0, "kmeans requires k >= 1");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "all points must share the same dimension"
    );
    let k = config.k.min(points.len());

    // --- k-means++ seeding -------------------------------------------------
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| sq_dist(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        let next = if total <= f64::EPSILON {
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, d) in dists.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[next].clone());
    }

    // --- Lloyd iterations ---------------------------------------------------
    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0usize;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step.
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = sq_dist(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignment[i] = best;
        }
        // Update step.
        let mut new_centroids = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (d, &x) in p.iter().enumerate() {
                new_centroids[assignment[i]][d] += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed empty cluster with the worst-fitted point.
                let (worst, _) = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, sq_dist(p, &centroids[assignment[i]])))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap();
                new_centroids[c] = points[worst].clone();
            } else {
                for x in &mut new_centroids[c] {
                    *x /= counts[c] as f64;
                }
            }
        }
        let movement: f64 = centroids
            .iter()
            .zip(&new_centroids)
            .map(|(a, b)| sq_dist(a, b))
            .sum();
        centroids = new_centroids;
        if movement < config.tolerance {
            break;
        }
    }

    // Final assignment & inertia with the converged centroids.
    let mut inertia = 0.0;
    for (i, p) in points.iter().enumerate() {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let d = sq_dist(p, centroid);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        assignment[i] = best;
        inertia += best_d;
    }

    KMeansResult {
        assignment,
        centroids,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn separates_two_obvious_blobs() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut points = Vec::new();
        for i in 0..20 {
            points.push(vec![0.0 + (i as f64) * 0.01, 0.0]);
            points.push(vec![10.0 + (i as f64) * 0.01, 10.0]);
        }
        let res = kmeans(
            &points,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            &mut rng,
        );
        // All even indices (blob A) share a label distinct from odd indices (blob B).
        let a = res.assignment[0];
        let b = res.assignment[1];
        assert_ne!(a, b);
        for i in 0..points.len() {
            let expect = if i % 2 == 0 { a } else { b };
            assert_eq!(res.assignment[i], expect);
        }
        assert!(res.inertia < 1.0);
    }

    #[test]
    fn k_larger_than_points_is_clamped() {
        let mut rng = StdRng::seed_from_u64(1);
        let points = vec![vec![1.0], vec![2.0]];
        let res = kmeans(
            &points,
            &KMeansConfig {
                k: 5,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(res.centroids.len(), 2);
    }

    #[test]
    fn identical_points_converge_immediately() {
        let mut rng = StdRng::seed_from_u64(3);
        let points = vec![vec![1.0, 1.0]; 8];
        let res = kmeans(
            &points,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(res.inertia < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same dimension")]
    fn dimension_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let points = vec![vec![1.0, 1.0], vec![1.0]];
        let _ = kmeans(&points, &KMeansConfig::default(), &mut rng);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let points = vec![vec![0.0], vec![2.0], vec![4.0]];
        let res = kmeans(
            &points,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
            &mut rng,
        );
        assert!((res.centroids[0][0] - 2.0).abs() < 1e-9);
        assert_eq!(res.assignment, vec![0, 0, 0]);
    }
}
