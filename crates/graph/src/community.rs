//! Community detection and partitioning primitives.
//!
//! Two of the paper's baselines pre-partition the shopping group before
//! choosing items:
//!
//! * **SDP / subgroup-by-friendship** form *socially tight* subgroups — here
//!   implemented via [`label_propagation`] and [`densest_subgroup_peeling`];
//! * the SVGIC-ST "-P" variants pre-partition the user set into ⌈N/M⌉
//!   *balanced* subgroups — implemented by [`balanced_partition`].

use crate::graph::{NodeIdx, SocialGraph};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// A partition of the node set into disjoint groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// `groups[g]` is the sorted list of members of group `g`; groups are
    /// non-empty.
    pub groups: Vec<Vec<NodeIdx>>,
    /// `assignment[v]` is the group index of node `v`.
    pub assignment: Vec<usize>,
}

impl Partition {
    /// Builds a partition from a per-node assignment vector, compacting group
    /// labels to `0..num_groups`.
    pub fn from_assignment(assignment: &[usize]) -> Self {
        let mut relabel: HashMap<usize, usize> = HashMap::new();
        let mut groups: Vec<Vec<NodeIdx>> = Vec::new();
        let mut compact = vec![0usize; assignment.len()];
        for (v, &label) in assignment.iter().enumerate() {
            let g = *relabel.entry(label).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[g].push(v);
            compact[v] = g;
        }
        for g in &mut groups {
            g.sort_unstable();
        }
        Self {
            groups,
            assignment: compact,
        }
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Size of the largest group.
    pub fn max_group_size(&self) -> usize {
        self.groups.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// True if `u` and `v` are in the same group.
    pub fn same_group(&self, u: NodeIdx, v: NodeIdx) -> bool {
        self.assignment[u] == self.assignment[v]
    }

    /// Fraction of friend pairs whose endpoints fall in the same group
    /// (the paper's *Intra%*); returns 0 for edgeless graphs.
    pub fn intra_edge_fraction(&self, graph: &SocialGraph) -> f64 {
        let pairs = graph.friend_pairs();
        if pairs.is_empty() {
            return 0.0;
        }
        let intra = pairs
            .iter()
            .filter(|&&(u, v, _)| self.same_group(u, v))
            .count();
        intra as f64 / pairs.len() as f64
    }

    /// Average subgroup density normalized by the whole-graph density
    /// (the paper's *normalized density*); singleton groups contribute 0.
    /// Returns 0 when the graph itself has zero density.
    pub fn normalized_density(&self, graph: &SocialGraph) -> f64 {
        let base = graph.density();
        if base <= 0.0 || self.groups.is_empty() {
            return 0.0;
        }
        let avg: f64 = self
            .groups
            .iter()
            .map(|g| graph.subgroup_density(g))
            .sum::<f64>()
            / self.groups.len() as f64;
        avg / base
    }
}

/// Synchronous label propagation community detection.
///
/// Every node starts in its own community; in each round nodes adopt the most
/// frequent label among their neighbours (ties broken towards the smallest
/// label for determinism).  Stops after `max_rounds` or when no label changes.
pub fn label_propagation<R: Rng + ?Sized>(
    graph: &SocialGraph,
    max_rounds: usize,
    rng: &mut R,
) -> Partition {
    let n = graph.num_nodes();
    let mut labels: Vec<usize> = (0..n).collect();
    let mut order: Vec<NodeIdx> = (0..n).collect();
    for _ in 0..max_rounds {
        order.shuffle(rng);
        let mut changed = false;
        for &v in &order {
            let nbrs = graph.neighbors(v);
            if nbrs.is_empty() {
                continue;
            }
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for u in nbrs {
                *counts.entry(labels[u]).or_insert(0) += 1;
            }
            let best = counts
                .iter()
                .map(|(&label, &cnt)| (cnt, std::cmp::Reverse(label)))
                .max()
                .map(|(_, std::cmp::Reverse(label))| label)
                .unwrap();
            if best != labels[v] {
                labels[v] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Partition::from_assignment(&labels)
}

/// Densest-subgroup peeling: repeatedly extracts a dense subgroup by greedy
/// degeneracy peeling of the remaining graph, optionally capping the subgroup
/// size at `max_size`.
///
/// This mimics the SDP baseline's "socially tight subgroup" extraction: it
/// finds the subgraph maximizing average internal degree (2·|E(S)| / |S|)
/// among the peeling prefixes, removes it, and repeats until all nodes are
/// assigned.  Nodes that end up isolated form singleton groups.
pub fn densest_subgroup_peeling(graph: &SocialGraph, max_size: Option<usize>) -> Partition {
    let n = graph.num_nodes();
    let mut assignment = vec![usize::MAX; n];
    let mut remaining: Vec<bool> = vec![true; n];
    let mut next_group = 0usize;
    let cap = max_size.unwrap_or(usize::MAX).max(1);
    loop {
        let alive: Vec<NodeIdx> = (0..n).filter(|&v| remaining[v]).collect();
        if alive.is_empty() {
            break;
        }
        let best = densest_prefix(graph, &alive, cap);
        for &v in &best {
            assignment[v] = next_group;
            remaining[v] = false;
        }
        next_group += 1;
    }
    Partition::from_assignment(&assignment)
}

/// Greedy peeling on the subgraph induced by `alive`: iteratively removes the
/// minimum-degree node and returns the prefix (as a set) with the highest
/// density `|E(S)| / |S|`, truncated to at most `cap` nodes (the densest
/// suffix of the peeling order of length ≤ cap).
fn densest_prefix(graph: &SocialGraph, alive: &[NodeIdx], cap: usize) -> Vec<NodeIdx> {
    let set: HashMap<NodeIdx, usize> = alive.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let m = alive.len();
    // Local undirected adjacency within `alive`.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (u, v, _) in graph.friend_pairs() {
        if let (Some(&iu), Some(&iv)) = (set.get(&u), set.get(&v)) {
            adj[iu].push(iv);
            adj[iv].push(iu);
        }
    }
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut removed = vec![false; m];
    let mut edges_left: usize = degree.iter().sum::<usize>() / 2;
    let mut order = Vec::with_capacity(m);
    let mut best_density = f64::NEG_INFINITY;
    let mut best_suffix_start = 0usize;
    for step in 0..m {
        let nodes_left = m - step;
        if nodes_left <= cap {
            let d = edges_left as f64 / nodes_left as f64;
            if d > best_density {
                best_density = d;
                best_suffix_start = step;
            }
        }
        // Remove the minimum-degree remaining node (ties toward smaller index).
        let v = (0..m)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| (degree[v], v))
            .expect("non-empty");
        removed[v] = true;
        order.push(v);
        for &w in &adj[v] {
            if !removed[w] {
                degree[w] -= 1;
                edges_left -= 1;
            }
        }
    }
    // The best subgroup is everything not removed before `best_suffix_start`.
    let chosen: Vec<NodeIdx> = (best_suffix_start..m)
        .map(|i| alive[order_index(&order, i)])
        .collect();
    let mut chosen = chosen;
    chosen.sort_unstable();
    chosen
}

/// Maps "position in the peeling order" back to the local node index removed
/// at that position.
fn order_index(order: &[usize], pos: usize) -> usize {
    order[pos]
}

/// Splits the node set into `ceil(n / group_size)` groups of (nearly) equal
/// size, preferring to keep friends together: nodes are visited in BFS order
/// so that connected users land in the same block where possible.
pub fn balanced_partition<R: Rng + ?Sized>(
    graph: &SocialGraph,
    group_size: usize,
    rng: &mut R,
) -> Partition {
    let n = graph.num_nodes();
    let group_size = group_size.max(1);
    let order = crate::sample::bfs_sample(graph, n, rng);
    // bfs_sample returns sorted nodes; re-derive a BFS visitation order instead.
    let mut assignment = vec![0usize; n];
    let mut visit_order: Vec<NodeIdx> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for &seed in &order {
        if seen[seed] {
            continue;
        }
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(seed);
        seen[seed] = true;
        while let Some(u) = queue.pop_front() {
            visit_order.push(u);
            let mut nbrs = graph.neighbors(u);
            nbrs.sort_unstable();
            for v in nbrs {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    for (pos, &v) in visit_order.iter().enumerate() {
        assignment[v] = pos / group_size;
    }
    Partition::from_assignment(&assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{complete_graph, planted_partition};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn partition_from_assignment_compacts_labels() {
        let p = Partition::from_assignment(&[7, 3, 7, 9]);
        assert_eq!(p.num_groups(), 3);
        assert!(p.same_group(0, 2));
        assert!(!p.same_group(0, 1));
        assert_eq!(p.groups.iter().map(Vec::len).sum::<usize>(), 4);
    }

    #[test]
    fn intra_fraction_and_density() {
        let g = complete_graph(4);
        let whole = Partition::from_assignment(&[0, 0, 0, 0]);
        assert!((whole.intra_edge_fraction(&g) - 1.0).abs() < 1e-12);
        assert!((whole.normalized_density(&g) - 1.0).abs() < 1e-12);
        let split = Partition::from_assignment(&[0, 0, 1, 1]);
        assert!((split.intra_edge_fraction(&g) - 2.0 / 6.0).abs() < 1e-12);
        // Each half is a clique of 2 => density 1 => normalized 1/graph density (=1) => 1.
        assert!((split.normalized_density(&g) - 1.0).abs() < 1e-12);
        let singles = Partition::from_assignment(&[0, 1, 2, 3]);
        assert_eq!(singles.intra_edge_fraction(&g), 0.0);
        assert_eq!(singles.normalized_density(&g), 0.0);
    }

    #[test]
    fn label_propagation_recovers_planted_communities() {
        let mut rng = StdRng::seed_from_u64(13);
        let (g, truth) = planted_partition(90, 3, 0.6, 0.01, &mut rng);
        let p = label_propagation(&g, 30, &mut rng);
        // Most pairs in the same true community should share a detected label.
        let mut agree = 0usize;
        let mut total = 0usize;
        for u in 0..90 {
            for v in (u + 1)..90 {
                if truth[u] == truth[v] {
                    total += 1;
                    if p.same_group(u, v) {
                        agree += 1;
                    }
                }
            }
        }
        assert!(
            agree as f64 / total as f64 > 0.8,
            "agreement {agree}/{total}"
        );
    }

    #[test]
    fn label_propagation_isolated_nodes_stay_singletons() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = SocialGraph::new(5);
        let p = label_propagation(&g, 10, &mut rng);
        assert_eq!(p.num_groups(), 5);
    }

    #[test]
    fn densest_peeling_finds_the_clique() {
        // A 5-clique plus a long path: the clique should come out as one group.
        let mut edges = vec![];
        for u in 0..5 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        for u in 5..11 {
            edges.push((u, u + 1));
        }
        let g = SocialGraph::from_undirected_edges(12, edges);
        let p = densest_subgroup_peeling(&g, None);
        let clique_group = p.assignment[0];
        for v in 1..5 {
            assert_eq!(p.assignment[v], clique_group, "clique node {v} split off");
        }
        assert!(p.groups[clique_group].len() == 5);
    }

    #[test]
    fn densest_peeling_respects_cap() {
        let g = complete_graph(9);
        let p = densest_subgroup_peeling(&g, Some(3));
        assert!(p.max_group_size() <= 3);
        assert_eq!(p.groups.iter().map(Vec::len).sum::<usize>(), 9);
    }

    #[test]
    fn balanced_partition_sizes() {
        let mut rng = StdRng::seed_from_u64(21);
        let (g, _) = planted_partition(25, 5, 0.5, 0.05, &mut rng);
        let p = balanced_partition(&g, 4, &mut rng);
        assert!(p.max_group_size() <= 4);
        assert_eq!(p.groups.iter().map(Vec::len).sum::<usize>(), 25);
        assert_eq!(p.num_groups(), 7); // ceil(25/4)
    }
}
