//! Synthetic social-network topology generators.
//!
//! The paper evaluates on three real social networks (Timik, Yelp, Epinions)
//! that are not redistributable.  The dataset-substitution layer
//! (`svgic-datasets`) instead synthesizes networks whose *qualitative*
//! properties drive the paper's conclusions: density, degree skew, and
//! community structure.  This module provides the classic generators used for
//! that purpose.  All generators are deterministic given the RNG passed in.

use crate::graph::{NodeIdx, SocialGraph};
use rand::seq::SliceRandom;
use rand::Rng;

/// Generates an undirected Erdős–Rényi graph `G(n, p)` (each pair connected
/// independently with probability `p`), returned as a directed graph with both
/// directions present for every friendship.
///
/// Used for sparse, weakly clustered topologies (Epinions-like trust network).
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> SocialGraph {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    SocialGraph::from_undirected_edges(n, edges)
}

/// Generates an undirected Barabási–Albert preferential-attachment graph:
/// nodes arrive one at a time and attach to `m_attach` existing nodes with
/// probability proportional to degree.
///
/// Produces the heavy-tailed degree distribution typical of the Timik VR
/// social network (a few extremely popular users / locations).
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m_attach: usize, rng: &mut R) -> SocialGraph {
    assert!(m_attach >= 1, "m_attach must be at least 1");
    let m_attach = m_attach.min(n.saturating_sub(1)).max(1);
    let mut edges: Vec<(NodeIdx, NodeIdx)> = Vec::new();
    // Repeated-node list implements preferential attachment in O(1) per draw.
    let mut repeated: Vec<NodeIdx> = Vec::new();
    let seed = (m_attach + 1).min(n);
    // Start from a small clique so early nodes have non-zero degree.
    for u in 0..seed {
        for v in (u + 1)..seed {
            edges.push((u, v));
            repeated.push(u);
            repeated.push(v);
        }
    }
    for u in seed..n {
        let mut targets = Vec::with_capacity(m_attach);
        let mut guard = 0usize;
        while targets.len() < m_attach && guard < 50 * m_attach {
            guard += 1;
            let t = if repeated.is_empty() {
                rng.gen_range(0..u)
            } else {
                repeated[rng.gen_range(0..repeated.len())]
            };
            if t != u && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((u, t));
            repeated.push(u);
            repeated.push(t);
        }
    }
    SocialGraph::from_undirected_edges(n, edges)
}

/// Generates a Watts–Strogatz small-world graph: a ring lattice where every
/// node is connected to its `k_ring` nearest neighbours, with each edge
/// rewired with probability `beta`.
///
/// Produces the locally clustered topology of location-based social networks
/// (Yelp-like).
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k_ring: usize,
    beta: f64,
    rng: &mut R,
) -> SocialGraph {
    let half = (k_ring / 2).max(1);
    let mut edge_set: Vec<(NodeIdx, NodeIdx)> = Vec::new();
    for u in 0..n {
        for d in 1..=half {
            let v = (u + d) % n;
            if u != v {
                edge_set.push((u.min(v), u.max(v)));
            }
        }
    }
    edge_set.sort_unstable();
    edge_set.dedup();
    // Rewire.
    let mut rewired = Vec::with_capacity(edge_set.len());
    for &(u, v) in &edge_set {
        if rng.gen::<f64>() < beta && n > 2 {
            let mut w = rng.gen_range(0..n);
            let mut guard = 0;
            while (w == u || w == v) && guard < 20 {
                w = rng.gen_range(0..n);
                guard += 1;
            }
            if w != u && w != v {
                rewired.push((u, w));
                continue;
            }
        }
        rewired.push((u, v));
    }
    SocialGraph::from_undirected_edges(n, rewired)
}

/// Generates a planted-partition graph: `communities` equally sized blocks,
/// within-block edge probability `p_in`, across-block probability `p_out`.
///
/// Used to synthesize networks with clear community structure for testing the
/// SDP / subgroup-by-friendship baselines and the Fig. 11 case study.
pub fn planted_partition<R: Rng + ?Sized>(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> (SocialGraph, Vec<usize>) {
    let communities = communities.max(1);
    let mut labels = vec![0usize; n];
    for (i, l) in labels.iter_mut().enumerate() {
        *l = i % communities;
    }
    labels.shuffle(rng);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if labels[u] == labels[v] { p_in } else { p_out };
            if rng.gen::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    (SocialGraph::from_undirected_edges(n, edges), labels)
}

/// Complete graph on `n` nodes (every pair of users are friends).  Used by the
/// Theorem 1 gap instances and by unit tests.
pub fn complete_graph(n: usize) -> SocialGraph {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    SocialGraph::from_undirected_edges(n, edges)
}

/// Star graph: node 0 is connected to every other node.
pub fn star_graph(n: usize) -> SocialGraph {
    SocialGraph::from_undirected_edges(n, (1..n).map(|v| (0, v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        let empty = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(full.num_friend_pairs(), 45);
    }

    #[test]
    fn erdos_renyi_density_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi(200, 0.1, &mut rng);
        let d = g.density();
        assert!(d > 0.05 && d < 0.15, "density {d} too far from p = 0.1");
    }

    #[test]
    fn barabasi_albert_connected_and_skewed() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = barabasi_albert(150, 3, &mut rng);
        assert_eq!(g.connected_components().len(), 1);
        let max_deg = (0..g.num_nodes()).map(|u| g.degree(u)).max().unwrap();
        let avg_deg: f64 =
            (0..g.num_nodes()).map(|u| g.degree(u) as f64).sum::<f64>() / g.num_nodes() as f64;
        assert!(
            max_deg as f64 > 3.0 * avg_deg,
            "expected hub nodes (max {max_deg}, avg {avg_deg})"
        );
    }

    #[test]
    fn barabasi_albert_small_n() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = barabasi_albert(3, 5, &mut rng);
        assert_eq!(g.num_nodes(), 3);
        assert!(g.num_friend_pairs() <= 3);
    }

    #[test]
    fn watts_strogatz_keeps_edge_count_roughly() {
        let mut rng = StdRng::seed_from_u64(5);
        let g0 = watts_strogatz(60, 6, 0.0, &mut rng);
        let g1 = watts_strogatz(60, 6, 0.3, &mut rng);
        // Without rewiring, exactly n * k/2 ring edges.
        assert_eq!(g0.num_friend_pairs(), 60 * 3);
        // Rewiring can only merge duplicates, never add pairs.
        assert!(g1.num_friend_pairs() <= 60 * 3);
        assert!(g1.num_friend_pairs() >= 60 * 2);
    }

    #[test]
    fn planted_partition_has_denser_blocks() {
        let mut rng = StdRng::seed_from_u64(9);
        let (g, labels) = planted_partition(120, 4, 0.5, 0.02, &mut rng);
        assert_eq!(labels.len(), 120);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v, _) in g.friend_pairs() {
            if labels[u] == labels[v] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter, "intra {intra} should dominate inter {inter}");
    }

    /// Workload scenarios sweep group sizes down to a solo shopper; every
    /// generator must handle the degenerate sizes without panicking.
    #[test]
    fn generators_handle_empty_and_singleton_graphs() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in [0usize, 1] {
            for g in [
                erdos_renyi(n, 0.5, &mut rng),
                barabasi_albert(n, 3, &mut rng),
                watts_strogatz(n, 4, 0.3, &mut rng),
                planted_partition(n, 3, 0.5, 0.1, &mut rng).0,
                complete_graph(n),
                star_graph(n),
            ] {
                assert_eq!(g.num_nodes(), n);
                assert_eq!(g.num_edges(), 0, "no self-loops possible at n = {n}");
                assert_eq!(g.connected_components().len(), n);
            }
        }
        // Labels stay well-formed even when there are more communities than
        // nodes.
        let (_, labels) = planted_partition(1, 5, 0.9, 0.0, &mut rng);
        assert_eq!(labels.len(), 1);
    }

    #[test]
    fn fully_disconnected_graphs_are_safe() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = erdos_renyi(12, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.connected_components().len(), 12);
        assert!((0..12).all(|u| g.degree(u) == 0 && g.neighbors(u).is_empty()));
        // Planted partitions with zero edge probabilities are the same shape.
        let (p, labels) = planted_partition(9, 3, 0.0, 0.0, &mut rng);
        assert_eq!(p.num_edges(), 0);
        assert_eq!(labels.len(), 9);
    }

    #[test]
    fn pair_graphs_have_at_most_one_friendship() {
        let mut rng = StdRng::seed_from_u64(23);
        for g in [
            erdos_renyi(2, 1.0, &mut rng),
            barabasi_albert(2, 4, &mut rng),
            watts_strogatz(2, 6, 0.5, &mut rng),
            complete_graph(2),
            star_graph(2),
        ] {
            assert_eq!(g.num_nodes(), 2);
            assert!(g.num_friend_pairs() <= 1);
        }
    }

    #[test]
    fn complete_and_star() {
        let g = complete_graph(5);
        assert_eq!(g.num_friend_pairs(), 10);
        let s = star_graph(5);
        assert_eq!(s.num_friend_pairs(), 4);
        assert_eq!(s.degree(0), 4);
        assert_eq!(s.degree(1), 1);
    }
}
