//! Sampling shopping groups out of a large social network.
//!
//! The paper samples small evaluation instances out of the full networks by
//! random walk (following Nazi et al., "Walk, not wait") and samples items
//! uniformly.  This module provides the node-sampling half; item sampling is a
//! one-liner in the dataset layer.

use crate::graph::{NodeIdx, SocialGraph};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;
use std::collections::VecDeque;

/// Samples `count` distinct nodes by a random walk with restarts.
///
/// Starting from a random node, the walk moves to a uniformly random
/// neighbour; with probability `restart_prob` (or when stuck at an isolated
/// node) it jumps to a uniformly random node.  Every *newly* visited node is
/// collected until `count` distinct nodes have been gathered.  The returned
/// nodes are sorted ascending.
pub fn random_walk_sample<R: Rng + ?Sized>(
    graph: &SocialGraph,
    count: usize,
    restart_prob: f64,
    rng: &mut R,
) -> Vec<NodeIdx> {
    let n = graph.num_nodes();
    let count = count.min(n);
    if count == 0 {
        return Vec::new();
    }
    let mut visited: HashSet<NodeIdx> = HashSet::with_capacity(count);
    let mut order: Vec<NodeIdx> = Vec::with_capacity(count);
    let mut current = rng.gen_range(0..n);
    visited.insert(current);
    order.push(current);
    // Generous step budget; falls back to uniform jumps so it always finishes.
    let max_steps = 200 * n.max(count) + 1000;
    let mut steps = 0usize;
    while order.len() < count && steps < max_steps {
        steps += 1;
        let nbrs = graph.neighbors(current);
        let jump = nbrs.is_empty() || rng.gen::<f64>() < restart_prob;
        current = if jump {
            rng.gen_range(0..n)
        } else {
            nbrs[rng.gen_range(0..nbrs.len())]
        };
        if visited.insert(current) {
            order.push(current);
        }
    }
    // If the walk budget ran out (e.g. extremely fragmented graph), top up
    // uniformly so callers always get `count` nodes.
    if order.len() < count {
        let mut remaining: Vec<NodeIdx> = (0..n).filter(|v| !visited.contains(v)).collect();
        remaining.shuffle(rng);
        for v in remaining.into_iter().take(count - order.len()) {
            order.push(v);
        }
    }
    order.sort_unstable();
    order
}

/// Samples `count` nodes by breadth-first (snowball) expansion from a random
/// seed, topping up from new random seeds when a component is exhausted.
/// Returned nodes are sorted ascending.
pub fn bfs_sample<R: Rng + ?Sized>(graph: &SocialGraph, count: usize, rng: &mut R) -> Vec<NodeIdx> {
    let n = graph.num_nodes();
    let count = count.min(n);
    if count == 0 {
        return Vec::new();
    }
    let mut visited: HashSet<NodeIdx> = HashSet::with_capacity(count);
    let mut order = Vec::with_capacity(count);
    while order.len() < count {
        let mut seed = rng.gen_range(0..n);
        let mut guard = 0;
        while visited.contains(&seed) && guard < 10 * n {
            seed = rng.gen_range(0..n);
            guard += 1;
        }
        if visited.contains(&seed) {
            // All nodes visited (shouldn't happen because count <= n).
            break;
        }
        let mut queue = VecDeque::new();
        queue.push_back(seed);
        visited.insert(seed);
        order.push(seed);
        while let Some(u) = queue.pop_front() {
            if order.len() >= count {
                break;
            }
            for v in graph.neighbors(u) {
                if order.len() >= count {
                    break;
                }
                if visited.insert(v) {
                    order.push(v);
                    queue.push_back(v);
                }
            }
        }
    }
    order.sort_unstable();
    order
}

/// Samples `count` nodes uniformly at random without replacement, sorted
/// ascending.
pub fn uniform_sample<R: Rng + ?Sized>(
    graph: &SocialGraph,
    count: usize,
    rng: &mut R,
) -> Vec<NodeIdx> {
    let n = graph.num_nodes();
    let count = count.min(n);
    let mut all: Vec<NodeIdx> = (0..n).collect();
    all.shuffle(rng);
    all.truncate(count);
    all.sort_unstable();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{barabasi_albert, erdos_renyi};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn distinct_sorted(v: &[usize]) -> bool {
        v.windows(2).all(|w| w[0] < w[1])
    }

    #[test]
    fn random_walk_sample_returns_requested_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = barabasi_albert(300, 3, &mut rng);
        for &count in &[0usize, 1, 25, 125, 300, 500] {
            let s = random_walk_sample(&g, count, 0.15, &mut rng);
            assert_eq!(s.len(), count.min(300));
            assert!(distinct_sorted(&s));
        }
    }

    #[test]
    fn random_walk_sample_handles_isolated_nodes() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = SocialGraph::new(20); // no edges at all
        let s = random_walk_sample(&g, 10, 0.15, &mut rng);
        assert_eq!(s.len(), 10);
        assert!(distinct_sorted(&s));
    }

    #[test]
    fn random_walk_prefers_connected_region() {
        let mut rng = StdRng::seed_from_u64(3);
        // Two cliques of 20 with no connection: a low-restart walk should stay
        // mostly inside the component it starts in.
        let mut edges = Vec::new();
        for u in 0..20 {
            for v in (u + 1)..20 {
                edges.push((u, v));
                edges.push((u + 20, v + 20));
            }
        }
        let g = SocialGraph::from_undirected_edges(40, edges);
        let s = random_walk_sample(&g, 15, 0.01, &mut rng);
        let in_first = s.iter().filter(|&&v| v < 20).count();
        let in_second = s.len() - in_first;
        assert!(in_first == 0 || in_second == 0 || in_first.max(in_second) >= 12);
    }

    #[test]
    fn bfs_sample_is_connected_when_possible() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = barabasi_albert(200, 2, &mut rng);
        let s = bfs_sample(&g, 30, &mut rng);
        assert_eq!(s.len(), 30);
        let (sub, _) = g.induced_subgraph(&s);
        assert_eq!(sub.connected_components().len(), 1);
    }

    #[test]
    fn uniform_sample_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi(50, 0.1, &mut rng);
        let s = uniform_sample(&g, 80, &mut rng);
        assert_eq!(s.len(), 50);
        let s = uniform_sample(&g, 10, &mut rng);
        assert_eq!(s.len(), 10);
        assert!(distinct_sorted(&s));
    }
}
