//! # svgic-algorithms
//!
//! Solvers for SVGIC and SVGIC-ST:
//!
//! * [`factors`] — solves the LP relaxation (exact simplex, condensed LP_SIMP,
//!   or scalable block-coordinate ascent) and exposes the *utility factors*
//!   `x*_{u,s}^c` that drive the rounding algorithms;
//! * [`rounding`] — the trivial independent rounding scheme (Algorithm 1),
//!   kept as the negative baseline of Lemma 3;
//! * [`avg`] — the randomized **Alignment-aware VR subGroup formation (AVG)**
//!   algorithm (Algorithms 2 and 4) built on Co-display Subgroup Formation,
//!   with plain / advanced focal-parameter sampling, repeated runs
//!   (Corollary 4.1), and the SVGIC-ST extension with subgroup-size locking;
//! * [`avg_d`] — the derandomized **AVG-D** (Algorithm 3) with the balancing
//!   ratio `r` (Theorem 5);
//! * [`exact`] — exact solvers: exhaustive search for tiny instances and
//!   branch & bound over the paper's full IP model, with the time-boxed MIP
//!   strategy variants used in Fig. 9(a);
//! * [`extensions`] — solvers for the practical scenarios of §5 (commodity
//!   values, slot significance, multi-view display, subgroup-change repair,
//!   dynamic user arrival/departure, and the Social Event Organization
//!   mapping).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avg;
pub mod avg_d;
pub mod exact;
pub mod extensions;
pub mod factors;
pub mod rounding;

pub use avg::{solve_avg, solve_avg_st, AvgConfig, AvgSolution, SamplingScheme};
pub use avg_d::{solve_avg_d, solve_avg_d_st, AvgDConfig};
pub use exact::{solve_exact, ExactConfig, ExactSolution, ExactStrategy};
pub use factors::{solve_relaxation, LpBackend, UtilityFactors};
pub use rounding::independent_rounding;
