//! The randomized AVG algorithm (Algorithms 2 and 4 of the paper).
//!
//! AVG first solves the LP relaxation (see [`crate::factors`]) and then builds
//! the SAVG k-Configuration by repeated **Co-display Subgroup Formation
//! (CSF)**: it samples a set of *focal parameters* — a focal item `c`, a focal
//! slot `s`, and a grouping threshold `α` — and co-displays `c` at `s` to every
//! *eligible* user whose utility factor `x*_{u,s}^c` reaches `α`.  Dependent
//! rounding through a shared threshold is what aligns friends on common items
//! and yields the expected 4-approximation (Theorem 4); repeating the whole
//! rounding and keeping the best run gives a `(4+ε)`-approximation with high
//! probability (Corollary 4.1).
//!
//! Two sampling schemes are provided:
//!
//! * [`SamplingScheme::Plain`] — uniform `(c, s, α)` sampling as in
//!   Algorithm 2 (idle iterations possible);
//! * [`SamplingScheme::Advanced`] — the §4.4 scheme: `(c, s)` drawn
//!   proportionally to the current maximum eligible factor `x̄*_s^c` and `α`
//!   uniform in `(0, x̄*_s^c]`, so every iteration assigns at least one unit
//!   (Observation 3 shows the conditional outcome distribution is unchanged).
//!
//! The SVGIC-ST variant caps every target subgroup at `M` members (taking the
//! highest-factor eligible users first) and *locks* the `(c, s)` pair once the
//! cap is reached, exactly as described in §4.4.

use crate::factors::{solve_relaxation, LpBackend, RelaxationOptions, UtilityFactors};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use svgic_core::utility::{total_utility, total_utility_st};
use svgic_core::{Configuration, PartialConfiguration, StParams, SvgicInstance};

/// Focal-parameter sampling scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingScheme {
    /// Uniform `(c, s, α)` sampling (Algorithm 2); iterations whose target
    /// subgroup is empty are idle.
    Plain,
    /// Advanced sampling of §4.4 driven by the maximum eligible factors.
    Advanced,
}

/// Configuration of an AVG run.
#[derive(Clone, Debug)]
pub struct AvgConfig {
    /// LP relaxation backend.
    pub relaxation: RelaxationOptions,
    /// Sampling scheme.
    pub sampling: SamplingScheme,
    /// Number of independent rounding repetitions; the best configuration is
    /// kept (Corollary 4.1).  Must be ≥ 1.
    pub repetitions: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Safety valve for [`SamplingScheme::Plain`]: after this many consecutive
    /// idle iterations the run falls back to advanced sampling for the rest of
    /// the construction.
    pub max_idle_iterations: usize,
}

impl Default for AvgConfig {
    fn default() -> Self {
        Self {
            relaxation: RelaxationOptions::default(),
            sampling: SamplingScheme::Advanced,
            repetitions: 1,
            seed: 0x05EE_DAB0,
            max_idle_iterations: 10_000,
        }
    }
}

impl AvgConfig {
    /// Convenience constructor selecting a backend and seed.
    pub fn with_backend(backend: LpBackend, seed: u64) -> Self {
        Self {
            relaxation: RelaxationOptions {
                backend,
                ..Default::default()
            },
            seed,
            ..Default::default()
        }
    }
}

/// Result of an AVG (or AVG-D) run.
#[derive(Clone, Debug)]
pub struct AvgSolution {
    /// The constructed SAVG k-Configuration.
    pub configuration: Configuration,
    /// Its total SAVG utility (SVGIC objective; for ST runs the ST objective).
    pub utility: f64,
    /// Upper bound from the fractional relaxation (true utility scale); only a
    /// genuine upper bound when an exact LP backend was used.
    pub relaxation_bound: f64,
    /// Number of CSF iterations over all repetitions.
    pub iterations: usize,
    /// Number of rounding repetitions performed.
    pub repetitions: usize,
}

/// Solves SVGIC with AVG.
pub fn solve_avg(instance: &SvgicInstance, config: &AvgConfig) -> AvgSolution {
    solve_avg_impl(instance, None, config)
}

/// Solves SVGIC-ST with the extended AVG (subgroup-size locking); the returned
/// utility is the SVGIC-ST objective.
pub fn solve_avg_st(instance: &SvgicInstance, st: &StParams, config: &AvgConfig) -> AvgSolution {
    solve_avg_impl(instance, Some(*st), config)
}

/// Runs the CSF rounding on externally supplied factors (used by ablations and
/// by the dynamic-scenario extension which reuses stale factors).
pub fn round_with_factors<R: Rng + ?Sized>(
    instance: &SvgicInstance,
    factors: &UtilityFactors,
    st: Option<&StParams>,
    sampling: SamplingScheme,
    max_idle_iterations: usize,
    rng: &mut R,
) -> (Configuration, usize) {
    let mut state = CsfState::new(instance, factors, st.copied());
    let mut iterations = 0usize;
    let mut idle = 0usize;
    let mut scheme = sampling;
    while !state.partial.is_complete() {
        iterations += 1;
        let progressed = match scheme {
            SamplingScheme::Plain => state.plain_iteration(rng),
            SamplingScheme::Advanced => state.advanced_iteration(rng),
        };
        if progressed {
            idle = 0;
        } else {
            idle += 1;
            if idle >= max_idle_iterations {
                // Plain sampling can stall when almost all factors are tiny;
                // Observation 3 guarantees switching to advanced sampling does
                // not change the conditional outcome distribution.
                scheme = SamplingScheme::Advanced;
                idle = 0;
            }
        }
        // Absolute safety valve: complete greedily if sampling cannot finish
        // (e.g. every remaining factor is zero).
        if iterations > 50 * state.total_units + max_idle_iterations {
            state.complete_greedily();
            break;
        }
    }
    (state.partial.into_configuration(), iterations)
}

fn solve_avg_impl(
    instance: &SvgicInstance,
    st: Option<StParams>,
    config: &AvgConfig,
) -> AvgSolution {
    assert!(config.repetitions >= 1, "at least one repetition required");
    let factors = solve_relaxation(instance, &config.relaxation);
    let bound = factors.utility_upper_bound(instance);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut best: Option<(Configuration, f64)> = None;
    let mut iterations = 0usize;
    for _ in 0..config.repetitions {
        let (cfg, iters) = round_with_factors(
            instance,
            &factors,
            st.as_ref(),
            config.sampling,
            config.max_idle_iterations,
            &mut rng,
        );
        iterations += iters;
        let utility = match &st {
            Some(st) => total_utility_st(instance, st, &cfg),
            None => total_utility(instance, &cfg),
        };
        if best.as_ref().is_none_or(|(_, u)| utility > *u) {
            best = Some((cfg, utility));
        }
    }
    let (configuration, utility) = best.expect("at least one repetition ran");
    AvgSolution {
        configuration,
        utility,
        relaxation_bound: bound,
        iterations,
        repetitions: config.repetitions,
    }
}

/// Internal state of the CSF rounding loop.
struct CsfState<'a> {
    instance: &'a SvgicInstance,
    factors: &'a UtilityFactors,
    st: Option<StParams>,
    partial: PartialConfiguration,
    /// `x̄*_s^c`: maximum per-slot factor over users still eligible for (c, s);
    /// kept lazily and refreshed for dirty columns.
    max_factor: Vec<f64>,
    dirty: Vec<bool>,
    /// Locked `(c, s)` pairs (SVGIC-ST size cap reached).
    locked: Vec<bool>,
    total_units: usize,
    n: usize,
    m: usize,
    k: usize,
}

impl<'a> CsfState<'a> {
    fn new(instance: &'a SvgicInstance, factors: &'a UtilityFactors, st: Option<StParams>) -> Self {
        let n = instance.num_users();
        let m = instance.num_items();
        let k = instance.num_slots();
        let mut state = Self {
            instance,
            factors,
            st,
            partial: PartialConfiguration::empty(n, k),
            max_factor: vec![0.0; m * k],
            dirty: vec![true; m * k],
            locked: vec![false; m * k],
            total_units: n * k,
            n,
            m,
            k,
        };
        state.refresh_dirty();
        state
    }

    #[inline]
    fn col(&self, c: usize, s: usize) -> usize {
        c * self.k + s
    }

    fn refresh_dirty(&mut self) {
        for c in 0..self.m {
            for s in 0..self.k {
                let col = self.col(c, s);
                if !self.dirty[col] {
                    continue;
                }
                self.dirty[col] = false;
                if self.locked[col] {
                    self.max_factor[col] = 0.0;
                    continue;
                }
                let mut best: f64 = 0.0;
                for u in 0..self.n {
                    if self.partial.eligible(u, c, s) {
                        best = best.max(self.factors.per_slot(u, s, c));
                    }
                }
                self.max_factor[col] = best;
            }
        }
    }

    /// Marks all columns affected by assigning item `c` at slot `s` to `users`.
    fn mark_dirty_after_assign(&mut self, c: usize, s: usize) {
        // Slot s: every item column changes (those users are no longer eligible
        // for anything at slot s).
        for item in 0..self.m {
            let col = self.col(item, s);
            self.dirty[col] = true;
        }
        // Item c: the assigned users are no longer eligible for c at any slot.
        for slot in 0..self.k {
            let col = self.col(c, slot);
            self.dirty[col] = true;
        }
    }

    /// Performs CSF for the given focal parameters; returns the number of users
    /// assigned.
    fn csf(&mut self, c: usize, s: usize, alpha: f64) -> usize {
        if self.locked[self.col(c, s)] {
            return 0;
        }
        // Collect eligible users meeting the threshold.
        let mut chosen: Vec<(f64, usize)> = (0..self.n)
            .filter(|&u| self.partial.eligible(u, c, s))
            .map(|u| (self.factors.per_slot(u, s, c), u))
            .filter(|&(x, _)| x >= alpha && x > 0.0)
            .collect();
        if chosen.is_empty() {
            return 0;
        }
        if let Some(st) = &self.st {
            // Highest factors first; cap the subgroup at M minus what is
            // already displayed (c, s) from earlier iterations.
            chosen.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
            let current = self.partial.subgroup_size(c, s);
            let capacity = st.max_subgroup.saturating_sub(current);
            if chosen.len() >= capacity {
                chosen.truncate(capacity);
                // Lock the pair: no further users may be added to (c, s).
                let col = self.col(c, s);
                self.locked[col] = true;
                self.dirty[col] = true;
            }
        }
        let assigned = chosen.len();
        for (_, u) in chosen {
            self.partial.assign(u, s, c);
        }
        if assigned > 0 {
            self.mark_dirty_after_assign(c, s);
        }
        assigned
    }

    /// One iteration of plain uniform sampling (Algorithm 2); returns whether
    /// any user was assigned.
    fn plain_iteration<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        let c = rng.gen_range(0..self.m);
        let s = rng.gen_range(0..self.k);
        let alpha: f64 = rng.gen::<f64>();
        self.csf(c, s, alpha) > 0
    }

    /// One iteration of advanced sampling (§4.4); returns whether any user was
    /// assigned.
    fn advanced_iteration<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        self.refresh_dirty();
        let total: f64 = self.max_factor.iter().sum();
        if total <= f64::EPSILON {
            // No fractional mass left on eligible units: finish greedily.
            self.complete_greedily();
            return true;
        }
        // Sample (c, s) proportionally to x̄*_s^c.
        let mut target = rng.gen::<f64>() * total;
        let mut chosen_col = self.max_factor.len() - 1;
        for (col, &w) in self.max_factor.iter().enumerate() {
            target -= w;
            if target <= 0.0 && w > 0.0 {
                chosen_col = col;
                break;
            }
        }
        let c = chosen_col / self.k;
        let s = chosen_col % self.k;
        let ceiling = self.max_factor[chosen_col];
        if ceiling <= 0.0 {
            return false;
        }
        let alpha = rng.gen::<f64>() * ceiling;
        self.csf(c, s, alpha.max(f64::MIN_POSITIVE)) > 0
    }

    /// Assigns every remaining display unit its best eligible item (highest
    /// factor, ties by preference), respecting the ST cap.  Used as the final
    /// fallback when no fractional mass remains.
    fn complete_greedily(&mut self) {
        for u in 0..self.n {
            for s in 0..self.k {
                if self.partial.get(u, s).is_some() {
                    continue;
                }
                let mut best: Option<(f64, f64, usize)> = None;
                for c in 0..self.m {
                    if !self.partial.eligible(u, c, s) {
                        continue;
                    }
                    if let Some(st) = &self.st {
                        if self.partial.subgroup_size(c, s) >= st.max_subgroup {
                            continue;
                        }
                    }
                    let key = (
                        self.factors.per_slot(u, s, c),
                        self.instance.preference(u, c),
                        c,
                    );
                    if best.is_none_or(|(bf, bp, bc)| {
                        key.0 > bf || (key.0 == bf && (key.1 > bp || (key.1 == bp && c < bc)))
                    }) {
                        best = Some(key);
                    }
                }
                let c = match best {
                    Some((_, _, c)) => c,
                    None => {
                        // Every item respecting both the no-duplication
                        // constraint and the ST cap is exhausted (only possible
                        // when the instance barely admits a feasible
                        // configuration); fall back to the least-loaded item
                        // that still respects no-duplication.
                        (0..self.m)
                            .filter(|&c| self.partial.eligible(u, c, s))
                            .min_by_key(|&c| (self.partial.subgroup_size(c, s), c))
                            .expect("k <= m guarantees an item without duplication")
                    }
                };
                self.partial.assign(u, s, c);
                self.mark_dirty_after_assign(c, s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;
    use svgic_core::utility::unweighted_total_utility;

    fn default_config(seed: u64) -> AvgConfig {
        AvgConfig {
            relaxation: RelaxationOptions {
                backend: LpBackend::ExactSimplex,
                ..Default::default()
            },
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn avg_produces_valid_configurations() {
        let inst = running_example();
        for seed in 0..10 {
            let sol = solve_avg(&inst, &default_config(seed));
            assert!(sol.configuration.is_valid(inst.num_items()));
            assert!(sol.utility > 0.0);
            assert!(sol.utility <= sol.relaxation_bound + 1e-6);
        }
    }

    #[test]
    fn avg_beats_a_quarter_of_the_optimum_on_the_running_example() {
        // Theorem 4 gives a 4-approximation in expectation; on the running
        // example (optimum 10.35 unweighted) even single runs comfortably beat
        // the bound.
        let inst = running_example();
        for seed in 0..20 {
            let sol = solve_avg(&inst, &default_config(seed));
            let unweighted = unweighted_total_utility(&inst, &sol.configuration);
            assert!(
                unweighted >= 10.35 / 4.0 - 1e-9,
                "seed {seed}: {unweighted} below OPT/4"
            );
        }
    }

    #[test]
    fn repeated_avg_is_at_least_as_good_as_single_run() {
        let inst = running_example();
        let single = solve_avg(&inst, &default_config(7));
        let repeated = solve_avg(
            &inst,
            &AvgConfig {
                repetitions: 8,
                ..default_config(7)
            },
        );
        assert!(repeated.utility >= single.utility - 1e-9);
        assert_eq!(repeated.repetitions, 8);
    }

    #[test]
    fn plain_and_advanced_sampling_both_terminate() {
        let inst = running_example();
        for sampling in [SamplingScheme::Plain, SamplingScheme::Advanced] {
            let sol = solve_avg(
                &inst,
                &AvgConfig {
                    sampling,
                    max_idle_iterations: 200,
                    ..default_config(3)
                },
            );
            assert!(sol.configuration.is_valid(inst.num_items()));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = running_example();
        let a = solve_avg(&inst, &default_config(42));
        let b = solve_avg(&inst, &default_config(42));
        assert_eq!(a.configuration, b.configuration);
        assert_eq!(a.utility, b.utility);
    }

    #[test]
    fn structured_backend_also_works() {
        let inst = running_example();
        let sol = solve_avg(
            &inst,
            &AvgConfig {
                relaxation: RelaxationOptions {
                    backend: LpBackend::Structured,
                    ..Default::default()
                },
                ..default_config(5)
            },
        );
        assert!(sol.configuration.is_valid(inst.num_items()));
        assert!(unweighted_total_utility(&inst, &sol.configuration) >= 10.35 / 4.0);
    }

    #[test]
    fn st_variant_respects_the_subgroup_cap() {
        let inst = running_example();
        for m_cap in 1..=4 {
            let st = StParams::new(0.5, m_cap);
            let sol = solve_avg_st(&inst, &st, &default_config(9));
            assert!(sol.configuration.is_valid(inst.num_items()));
            assert!(
                st.is_feasible(&sol.configuration),
                "cap {m_cap} violated: max subgroup {}",
                sol.configuration.max_subgroup_size()
            );
        }
    }

    #[test]
    fn st_utility_accounts_for_teleportation() {
        let inst = running_example();
        let st = StParams::new(0.5, 4);
        let sol = solve_avg_st(&inst, &st, &default_config(2));
        let direct_only = total_utility(&inst, &sol.configuration);
        assert!(sol.utility >= direct_only - 1e-9);
    }
}
