//! The trivial independent rounding scheme (Algorithm 1 of the paper).
//!
//! Every display unit `(u, s)` independently draws an item with probability
//! proportional to the utility factors `x*_{u,s}^c`.  Lemma 3 shows this can
//! lose a factor `Θ(m)` of the optimum because friends rarely land on the same
//! item, and the raw scheme does not even respect the no-duplication
//! constraint — the implementation therefore offers a repaired variant that
//! redraws duplicates, which is what the experiments use when this baseline is
//! reported.

use crate::factors::UtilityFactors;
use rand::Rng;
use svgic_core::{Configuration, SvgicInstance};

/// Samples one item for every display unit independently with probability
/// proportional to the per-slot utility factors; duplicate draws for a user
/// are repaired by redrawing among the not-yet-used items (falling back to the
/// highest-factor unused item so the result is always a valid configuration).
pub fn independent_rounding<R: Rng + ?Sized>(
    instance: &SvgicInstance,
    factors: &UtilityFactors,
    rng: &mut R,
) -> Configuration {
    let n = instance.num_users();
    let m = instance.num_items();
    let k = instance.num_slots();
    let mut rows: Vec<Vec<usize>> = Vec::with_capacity(n);
    for u in 0..n {
        let mut used = vec![false; m];
        let mut row = Vec::with_capacity(k);
        for s in 0..k {
            let mut weights: Vec<f64> = (0..m)
                .map(|c| {
                    if used[c] {
                        0.0
                    } else {
                        factors.per_slot(u, s, c).max(0.0)
                    }
                })
                .collect();
            let total: f64 = weights.iter().sum();
            let chosen = if total <= f64::EPSILON {
                // No fractional mass left on unused items: fall back to the
                // highest-preference unused item.
                (0..m)
                    .filter(|&c| !used[c])
                    .max_by(|&a, &b| {
                        instance
                            .preference(u, a)
                            .partial_cmp(&instance.preference(u, b))
                            .unwrap()
                            .then(b.cmp(&a))
                    })
                    .expect("k <= m guarantees an unused item")
            } else {
                let mut target = rng.gen::<f64>() * total;
                let mut chosen = m - 1;
                for (c, w) in weights.iter_mut().enumerate() {
                    target -= *w;
                    if target <= 0.0 && *w > 0.0 {
                        chosen = c;
                        break;
                    }
                }
                if used[chosen] {
                    // Extremely unlikely numerical edge; pick any unused item.
                    chosen = (0..m).find(|&c| !used[c]).unwrap();
                }
                chosen
            };
            used[chosen] = true;
            row.push(chosen);
        }
        rows.push(row);
    }
    Configuration::from_rows(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::{solve_relaxation_with, LpBackend};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use svgic_core::example::running_example;
    use svgic_core::utility::total_utility;

    #[test]
    fn always_produces_valid_configurations() {
        let inst = running_example();
        let factors = solve_relaxation_with(&inst, LpBackend::ExactSimplex);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..25 {
            let cfg = independent_rounding(&inst, &factors, &mut rng);
            assert!(cfg.is_valid(inst.num_items()));
            assert!(total_utility(&inst, &cfg) > 0.0);
        }
    }

    #[test]
    fn is_typically_worse_than_the_lp_bound() {
        let inst = running_example();
        let factors = solve_relaxation_with(&inst, LpBackend::ExactSimplex);
        let bound = factors.utility_upper_bound(&inst);
        let mut rng = StdRng::seed_from_u64(11);
        let avg: f64 = (0..40)
            .map(|_| total_utility(&inst, &independent_rounding(&inst, &factors, &mut rng)))
            .sum::<f64>()
            / 40.0;
        assert!(avg <= bound + 1e-9);
    }

    #[test]
    fn indifference_instance_rarely_aligns_views() {
        // The Lemma 3 instance: uniform factors mean friends rarely share an
        // item, so the expected social utility is far below the optimum
        // (co-displaying everything to everyone).
        use svgic_core::SvgicInstanceBuilder;
        use svgic_graph::generate::complete_graph;
        let m = 12;
        let graph = complete_graph(4);
        let mut b = SvgicInstanceBuilder::new(graph, m, 2, 1.0);
        b.fill_social(|_, _, _| 1.0);
        let inst = b.build().unwrap();
        let aggregate = vec![inst.num_slots() as f64 / m as f64; 4 * m];
        let factors = UtilityFactors::from_aggregate(&inst, aggregate, 0.0, LpBackend::Structured);
        let mut rng = StdRng::seed_from_u64(5);
        let runs = 60;
        let avg_utility: f64 = (0..runs)
            .map(|_| total_utility(&inst, &independent_rounding(&inst, &factors, &mut rng)))
            .sum::<f64>()
            / runs as f64;
        // Optimal co-display utility: every ordered friend pair (12 of them)
        // on both slots = 24.  Independent rounding should stay well below half.
        assert!(
            avg_utility < 12.0,
            "independent rounding unexpectedly aligned views: {avg_utility}"
        );
    }
}
