//! LP-relaxation backends and the utility factors `x*_{u,s}^c`.
//!
//! The first phase of both AVG and AVG-D solves a relaxation of the SVGIC IP
//! and interprets the optimal fractional decision variables as *utility
//! factors*: how attractive it is to display item `c` to user `u` at slot `s`,
//! either because `u` prefers `c` or because `c` can trigger discussions.
//!
//! Backends (all produce the condensed per-user factors `x*_u^c`; Observation 2
//! of the paper turns them into per-slot factors by dividing by `k`):
//!
//! * [`LpBackend::ExactSimplex`] — builds LP_SIMP and solves it exactly with
//!   the two-phase simplex; appropriate for small/medium instances and used
//!   whenever the paper compares against the exact LP bound.
//! * [`LpBackend::Structured`] — block-coordinate ascent on the min-coupling
//!   form (the "β-approximate LP" of Corollary 4.2); scales to the paper's
//!   default `n = 125`, `k = 50` sizes without a commercial solver.
//! * [`LpBackend::FullLpSvgic`] — solves the per-slot LP_SVGIC exactly; only
//!   useful to validate Observation 2 (it is strictly larger than LP_SIMP).
//! * [`LpBackend::Auto`] — exact below a size threshold, structured above.

use svgic_core::ip_model::{build_full_model, build_lp_simp, build_min_coupling};
use svgic_core::{ItemIdx, SlotIdx, SvgicInstance, UserIdx};
use svgic_lp::{
    solve_lp, solve_min_coupling, CoordinateAscentOptions, SimplexError, SimplexOptions,
};

/// Which relaxation backend to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LpBackend {
    /// Exact two-phase simplex on the condensed LP_SIMP (§4.4).
    ExactSimplex,
    /// Block-coordinate ascent on the min-coupling form (scalable,
    /// β-approximate; Corollary 4.2).
    Structured,
    /// Exact simplex on the full per-slot LP_SVGIC (no LP transformation) —
    /// the ablation "AVG–ALP" of Fig. 9(b).
    FullLpSvgic,
    /// Exact simplex when `n·m + pairs·m` is small, structured otherwise.
    #[default]
    Auto,
}

/// Fractional utility factors produced by a relaxation backend.
#[derive(Clone, Debug)]
pub struct UtilityFactors {
    n: usize,
    m: usize,
    k: usize,
    /// Aggregate factors `x*_u^c ∈ [0, 1]`, row-major `n × m`.
    aggregate: Vec<f64>,
    /// Objective value of the fractional solution in the *scaled* convention
    /// (preferences scaled by `(1-λ)/λ`), i.e. `SAVG utility / λ` for `λ > 0`.
    pub scaled_objective: f64,
    /// Which backend produced the factors.
    pub backend: LpBackend,
}

impl UtilityFactors {
    /// Builds factors directly from an aggregate matrix (used in tests and by
    /// the dynamic-scenario incremental update).
    pub fn from_aggregate(
        instance: &SvgicInstance,
        aggregate: Vec<f64>,
        scaled_objective: f64,
        backend: LpBackend,
    ) -> Self {
        assert_eq!(
            aggregate.len(),
            instance.num_users() * instance.num_items(),
            "aggregate factor matrix has wrong dimensions"
        );
        Self {
            n: instance.num_users(),
            m: instance.num_items(),
            k: instance.num_slots(),
            aggregate,
            scaled_objective,
            backend,
        }
    }

    /// Rebuilds factors from raw dimensions and an aggregate matrix — the
    /// deserialization constructor used by the engine's wire codec, where no
    /// instance is at hand. Returns `None` when `aggregate` is not an
    /// `n × m` matrix or any entry is non-finite.
    pub fn from_parts(
        n: usize,
        m: usize,
        k: usize,
        aggregate: Vec<f64>,
        scaled_objective: f64,
        backend: LpBackend,
    ) -> Option<Self> {
        if aggregate.len() != n * m || aggregate.iter().any(|x| !x.is_finite()) {
            return None;
        }
        Some(Self {
            n,
            m,
            k,
            aggregate,
            scaled_objective,
            backend,
        })
    }

    /// The raw aggregate factor matrix, row-major `n × m` (`x*_u^c` at
    /// `u * m + c`) — the serialization accessor paired with
    /// [`UtilityFactors::from_parts`].
    pub fn aggregate_matrix(&self) -> &[f64] {
        &self.aggregate
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.n
    }
    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.m
    }
    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.k
    }

    /// Aggregate factor `x*_u^c`.
    #[inline]
    pub fn aggregate(&self, u: UserIdx, c: ItemIdx) -> f64 {
        self.aggregate[u * self.m + c]
    }

    /// Per-slot factor `x*_{u,s}^c = x*_u^c / k` (Observation 2).  The slot
    /// argument is accepted for readability even though the optimal condensed
    /// solution is slot-uniform.
    #[inline]
    pub fn per_slot(&self, u: UserIdx, _s: SlotIdx, c: ItemIdx) -> f64 {
        self.aggregate(u, c) / self.k as f64
    }

    /// Per-pair per-slot factor `y*_{e,s}^c = min(x*_{u,s}^c, x*_{v,s}^c)`.
    #[inline]
    pub fn pair_per_slot(&self, u: UserIdx, v: UserIdx, s: SlotIdx, c: ItemIdx) -> f64 {
        self.per_slot(u, s, c).min(self.per_slot(v, s, c))
    }

    /// The true (unscaled) LP objective value: an upper bound on the optimal
    /// total SAVG utility when produced by an exact backend.
    pub fn utility_upper_bound(&self, instance: &SvgicInstance) -> f64 {
        if instance.lambda() > 0.0 {
            self.scaled_objective * instance.lambda()
        } else {
            self.scaled_objective
        }
    }
}

/// Options for the relaxation solve.
#[derive(Clone, Debug)]
pub struct RelaxationOptions {
    /// Backend selection.
    pub backend: LpBackend,
    /// Size threshold (number of LP variables `n·m + pairs·m`) below which
    /// [`LpBackend::Auto`] uses the exact simplex.
    pub auto_exact_threshold: usize,
    /// Simplex options for the exact backends.
    pub simplex: SimplexOptions,
    /// Coordinate-ascent options for the structured backend.
    pub ascent: CoordinateAscentOptions,
}

impl Default for RelaxationOptions {
    fn default() -> Self {
        Self {
            backend: LpBackend::Auto,
            auto_exact_threshold: 1_500,
            simplex: SimplexOptions::default(),
            ascent: CoordinateAscentOptions::default(),
        }
    }
}

/// Solves the relaxation of `instance` with the requested backend.
pub fn solve_relaxation(instance: &SvgicInstance, options: &RelaxationOptions) -> UtilityFactors {
    let n = instance.num_users();
    let m = instance.num_items();
    let pairs = instance.friend_pairs().len();
    let backend = match options.backend {
        LpBackend::Auto => {
            if (n + pairs) * m <= options.auto_exact_threshold {
                LpBackend::ExactSimplex
            } else {
                LpBackend::Structured
            }
        }
        other => other,
    };
    match backend {
        LpBackend::ExactSimplex | LpBackend::Auto => {
            let model = build_lp_simp(instance);
            // LP_SIMP is always feasible (x = k/m is an interior point) and
            // bounded (every variable lives in [0, 1]), so the only reachable
            // errors are resource/stability aborts: the pivot budget, or the
            // simplex refusing to divide by a near-zero pivot element
            // (`SimplexError::Numerical`). Those must not take a serving
            // engine down — fall back to the division-free structured ascent,
            // which is deterministic for the same instance, so cached/warm
            // reuse stays byte-identical.
            match solve_lp(&model.lp, &options.simplex) {
                Ok(sol) => UtilityFactors::from_aggregate(
                    instance,
                    model.extract_factors(&sol),
                    sol.objective,
                    LpBackend::ExactSimplex,
                ),
                Err(SimplexError::IterationLimit | SimplexError::Numerical) => {
                    let problem = build_min_coupling(instance);
                    let sol = solve_min_coupling(&problem, &options.ascent);
                    UtilityFactors::from_aggregate(
                        instance,
                        sol.values,
                        sol.objective,
                        LpBackend::Structured,
                    )
                }
                Err(error) => unreachable!(
                    "LP_SIMP cannot be {error}: it has a feasible interior point and box bounds"
                ),
            }
        }
        LpBackend::FullLpSvgic => {
            let model = build_full_model(instance, false);
            // Same hardening as the ExactSimplex arm: LP_SVGIC is feasible
            // and bounded, so any error is a resource/stability abort — fall
            // back to the structured ascent rather than unwind.
            let sol = match solve_lp(&model.lp, &options.simplex) {
                Ok(sol) => sol,
                Err(SimplexError::IterationLimit | SimplexError::Numerical) => {
                    let problem = build_min_coupling(instance);
                    let sol = solve_min_coupling(&problem, &options.ascent);
                    return UtilityFactors::from_aggregate(
                        instance,
                        sol.values,
                        sol.objective,
                        LpBackend::Structured,
                    );
                }
                Err(error) => unreachable!(
                    "LP_SVGIC cannot be {error}: it has a feasible interior point and box bounds"
                ),
            };
            // Aggregate the per-slot variables into x*_u^c.
            let k = instance.num_slots();
            let mut aggregate = vec![0.0; n * m];
            for u in 0..n {
                for c in 0..m {
                    let mut total = 0.0;
                    for s in 0..k {
                        total += sol.value(model.x_var(u, s, c));
                    }
                    aggregate[u * m + c] = total.clamp(0.0, 1.0);
                }
            }
            UtilityFactors::from_aggregate(
                instance,
                aggregate,
                sol.objective,
                LpBackend::FullLpSvgic,
            )
        }
        LpBackend::Structured => {
            let problem = build_min_coupling(instance);
            let sol = solve_min_coupling(&problem, &options.ascent);
            UtilityFactors::from_aggregate(
                instance,
                sol.values,
                sol.objective,
                LpBackend::Structured,
            )
        }
    }
}

/// Convenience: solve with a bare backend choice and default options.
pub fn solve_relaxation_with(instance: &SvgicInstance, backend: LpBackend) -> UtilityFactors {
    solve_relaxation(
        instance,
        &RelaxationOptions {
            backend,
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;

    #[test]
    fn exact_factors_respect_budget_and_bounds() {
        let inst = running_example();
        let f = solve_relaxation_with(&inst, LpBackend::ExactSimplex);
        assert_eq!(f.num_users(), 4);
        assert_eq!(f.num_items(), 5);
        for u in 0..4 {
            let row_sum: f64 = (0..5).map(|c| f.aggregate(u, c)).sum();
            assert!((row_sum - 3.0).abs() < 1e-6, "user {u} budget {row_sum}");
            for c in 0..5 {
                let x = f.aggregate(u, c);
                assert!((-1e-9..=1.0 + 1e-9).contains(&x));
                assert!((f.per_slot(u, 0, c) - x / 3.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn exact_and_full_lp_agree_on_objective() {
        // Observation 2: LP_SIMP and LP_SVGIC have the same optimum.
        let inst = running_example()
            .restrict_items(&[0, 1, 4])
            .with_slots(2)
            .unwrap();
        let simp = solve_relaxation_with(&inst, LpBackend::ExactSimplex);
        let full = solve_relaxation_with(&inst, LpBackend::FullLpSvgic);
        assert!(
            (simp.scaled_objective - full.scaled_objective).abs() < 1e-5,
            "simp {} vs full {}",
            simp.scaled_objective,
            full.scaled_objective
        );
    }

    #[test]
    fn structured_backend_is_close_to_exact() {
        let inst = running_example();
        let exact = solve_relaxation_with(&inst, LpBackend::ExactSimplex);
        let approx = solve_relaxation_with(&inst, LpBackend::Structured);
        assert!(approx.scaled_objective <= exact.scaled_objective + 1e-6);
        assert!(
            approx.scaled_objective >= 0.85 * exact.scaled_objective,
            "structured {} vs exact {}",
            approx.scaled_objective,
            exact.scaled_objective
        );
        // Budgets still hold.
        for u in 0..4 {
            let row_sum: f64 = (0..5).map(|c| approx.aggregate(u, c)).sum();
            assert!((row_sum - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn simplex_abort_falls_back_to_structured_instead_of_panicking() {
        // Exhausting the pivot budget (and, equivalently, the near-zero-pivot
        // Numerical abort) must degrade to the structured ascent, not unwind
        // through a serving engine.
        let inst = running_example();
        let strangled = solve_relaxation(
            &inst,
            &RelaxationOptions {
                backend: LpBackend::ExactSimplex,
                simplex: SimplexOptions {
                    max_pivots: 0,
                    ..SimplexOptions::default()
                },
                ..Default::default()
            },
        );
        assert_eq!(strangled.backend, LpBackend::Structured);
        let reference = solve_relaxation_with(&inst, LpBackend::Structured);
        assert!((strangled.scaled_objective - reference.scaled_objective).abs() < 1e-9);
        // Budgets still hold on the fallback factors.
        for u in 0..inst.num_users() {
            let row_sum: f64 = (0..inst.num_items())
                .map(|c| strangled.aggregate(u, c))
                .sum();
            assert!((row_sum - inst.num_slots() as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn auto_switches_backend_by_size() {
        let inst = running_example();
        let small = solve_relaxation(
            &inst,
            &RelaxationOptions {
                backend: LpBackend::Auto,
                auto_exact_threshold: 10_000,
                ..Default::default()
            },
        );
        assert_eq!(small.backend, LpBackend::ExactSimplex);
        let large = solve_relaxation(
            &inst,
            &RelaxationOptions {
                backend: LpBackend::Auto,
                auto_exact_threshold: 1,
                ..Default::default()
            },
        );
        assert_eq!(large.backend, LpBackend::Structured);
    }

    #[test]
    fn upper_bound_dominates_optimum() {
        let inst = running_example();
        let f = solve_relaxation_with(&inst, LpBackend::ExactSimplex);
        // The paper optimum is 10.35 unweighted = 5.175 weighted at λ = ½.
        assert!(f.utility_upper_bound(&inst) >= 5.175 - 1e-6);
    }

    #[test]
    fn pair_factor_is_min_of_endpoints() {
        let inst = running_example();
        let f = solve_relaxation_with(&inst, LpBackend::ExactSimplex);
        let y = f.pair_per_slot(0, 1, 0, 4);
        assert!((y - f.per_slot(0, 0, 4).min(f.per_slot(1, 0, 4))).abs() < 1e-12);
    }
}
