//! Exact solvers for SVGIC / SVGIC-ST.
//!
//! The paper's "IP" baseline solves the full integer program of §3.3 with a
//! commercial solver; this module provides the equivalent functionality on top
//! of the in-workspace branch & bound:
//!
//! * [`ExactStrategy::Exhaustive`] — complete enumeration of per-user item
//!   sets with optimal slot alignment, practical only for *tiny* instances but
//!   useful as an independent oracle for the other solvers;
//! * the branch & bound strategies (`IpPrimal`, `IpDual`, `IpConcurrent`,
//!   `IpDeterministicConcurrent`, `IpBarrier`) — thin wrappers over
//!   [`svgic_lp::branch_bound`] with different node-selection rules, standing
//!   in for the Gurobi strategies compared in Fig. 9(a); all accept a time
//!   budget and return the best incumbent when it expires.

use std::time::Duration;

use svgic_core::ip_model::{build_full_model, build_full_model_st};
use svgic_core::utility::{total_utility, total_utility_st};
use svgic_core::{Configuration, StParams, SvgicInstance};
use svgic_lp::{BranchBoundConfig, MilpStatus, NodeSelection};

/// Strategy used by [`solve_exact`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExactStrategy {
    /// Complete enumeration (tiny instances only: the search space is
    /// `Θ(C(m,k)^n · poly)`).
    Exhaustive,
    /// Branch & bound, depth-first node selection ("primal-first").
    IpPrimal,
    /// Branch & bound, best-bound node selection ("dual-first").
    IpDual,
    /// Branch & bound, alternating hybrid ("concurrent").
    IpConcurrent,
    /// Branch & bound, deterministic alternation ("deterministic concurrent").
    IpDeterministicConcurrent,
    /// Branch & bound, best-bound with restart flavour ("barrier").
    IpBarrier,
}

impl ExactStrategy {
    fn node_selection(self) -> NodeSelection {
        match self {
            ExactStrategy::Exhaustive | ExactStrategy::IpConcurrent => NodeSelection::Hybrid,
            ExactStrategy::IpPrimal => NodeSelection::DepthFirst,
            ExactStrategy::IpDual => NodeSelection::BestBound,
            ExactStrategy::IpDeterministicConcurrent => NodeSelection::DeterministicHybrid,
            ExactStrategy::IpBarrier => NodeSelection::RestartBestBound,
        }
    }

    /// All branch-and-bound strategies (the Fig. 9(a) sweep).
    pub fn ip_strategies() -> [ExactStrategy; 5] {
        [
            ExactStrategy::IpPrimal,
            ExactStrategy::IpDual,
            ExactStrategy::IpConcurrent,
            ExactStrategy::IpDeterministicConcurrent,
            ExactStrategy::IpBarrier,
        ]
    }
}

/// Configuration of an exact solve.
#[derive(Clone, Debug)]
pub struct ExactConfig {
    /// Strategy.
    pub strategy: ExactStrategy,
    /// Wall-clock budget (None = unlimited).
    pub time_limit: Option<Duration>,
    /// Node budget for branch & bound.
    pub max_nodes: usize,
    /// Optional SVGIC-ST side constraints.
    pub st: Option<StParams>,
}

impl Default for ExactConfig {
    fn default() -> Self {
        Self {
            strategy: ExactStrategy::IpConcurrent,
            time_limit: None,
            max_nodes: 200_000,
            st: None,
        }
    }
}

/// Result of an exact solve.
#[derive(Clone, Debug)]
pub struct ExactSolution {
    /// Best configuration found.
    pub configuration: Configuration,
    /// Its objective (SVGIC or SVGIC-ST utility, matching `st`).
    pub utility: f64,
    /// Whether the search proved optimality.
    pub proved_optimal: bool,
    /// Number of branch & bound nodes (0 for exhaustive search).
    pub nodes: usize,
}

/// Solves the instance exactly (or as well as the budget allows).
pub fn solve_exact(instance: &SvgicInstance, config: &ExactConfig) -> ExactSolution {
    match config.strategy {
        ExactStrategy::Exhaustive => exhaustive(instance, config.st.as_ref()),
        _ => branch_bound(instance, config),
    }
}

fn branch_bound(instance: &SvgicInstance, config: &ExactConfig) -> ExactSolution {
    let model = match &config.st {
        Some(st) => build_full_model_st(instance, st, true),
        None => build_full_model(instance, true),
    };
    let res = svgic_lp::branch_bound::solve_milp(
        &model.lp,
        &BranchBoundConfig {
            node_selection: config.strategy.node_selection(),
            time_limit: config.time_limit,
            max_nodes: config.max_nodes,
            ..Default::default()
        },
    );
    let (configuration, proved_optimal) = match res.solution {
        Some(sol) => (
            model.extract_configuration(&sol),
            res.status == MilpStatus::Optimal,
        ),
        None => {
            // Budget exhausted before any incumbent: fall back to a trivially
            // feasible configuration (each user's top-k items, ST-capped).
            (fallback_configuration(instance, config.st.as_ref()), false)
        }
    };
    let utility = match &config.st {
        Some(st) => total_utility_st(instance, st, &configuration),
        None => total_utility(instance, &configuration),
    };
    ExactSolution {
        configuration,
        utility,
        proved_optimal,
        nodes: res.nodes_explored,
    }
}

/// Greedy fallback: each user takes her top-k preferred items; with an ST cap,
/// items are handed out first-come-first-served and overflowing users move to
/// their next item.
fn fallback_configuration(instance: &SvgicInstance, st: Option<&StParams>) -> Configuration {
    let n = instance.num_users();
    let m = instance.num_items();
    let k = instance.num_slots();
    let cap = st.map(|s| s.max_subgroup).unwrap_or(usize::MAX);
    let mut counts = vec![vec![0usize; k]; m];
    let mut rows = Vec::with_capacity(n);
    for u in 0..n {
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            instance
                .preference(u, b)
                .partial_cmp(&instance.preference(u, a))
                .unwrap()
                .then(a.cmp(&b))
        });
        let mut row = Vec::with_capacity(k);
        #[allow(clippy::needless_range_loop)]
        for s in 0..k {
            let c = order
                .iter()
                .copied()
                .find(|&c| !row.contains(&c) && counts[c][s] < cap)
                .expect("enough items for a feasible assignment");
            counts[c][s] += 1;
            row.push(c);
        }
        rows.push(row);
    }
    Configuration::from_rows(&rows)
}

/// Complete enumeration with per-slot alignment: enumerates every assignment
/// of items to display units recursively, pruning with an optimistic bound.
/// Only intended for very small instances (`n·k ≤ ~12`, small `m`).
fn exhaustive(instance: &SvgicInstance, st: Option<&StParams>) -> ExactSolution {
    let n = instance.num_users();
    let m = instance.num_items();
    let k = instance.num_slots();
    let units: Vec<(usize, usize)> = (0..n).flat_map(|u| (0..k).map(move |s| (u, s))).collect();
    assert!(
        (m as f64).powi(units.len() as i32) <= 5e8,
        "exhaustive search is limited to tiny instances"
    );
    let mut best: Option<(Configuration, f64)> = None;
    let mut assign = vec![0usize; units.len()];
    enumerate(instance, st, &units, 0, &mut assign, &mut best);
    let (configuration, utility) = best.expect("at least one feasible configuration exists");
    ExactSolution {
        configuration,
        utility,
        proved_optimal: true,
        nodes: 0,
    }
}

fn enumerate(
    instance: &SvgicInstance,
    st: Option<&StParams>,
    units: &[(usize, usize)],
    idx: usize,
    assign: &mut Vec<usize>,
    best: &mut Option<(Configuration, f64)>,
) {
    let n = instance.num_users();
    let k = instance.num_slots();
    if idx == units.len() {
        let mut rows = vec![vec![0usize; k]; n];
        for (i, &(u, s)) in units.iter().enumerate() {
            rows[u][s] = assign[i];
        }
        let cfg = Configuration::from_rows(&rows);
        if !cfg.is_valid(instance.num_items()) {
            return;
        }
        if let Some(st) = st {
            if !st.is_feasible(&cfg) {
                return;
            }
        }
        let utility = match st {
            Some(st) => total_utility_st(instance, st, &cfg),
            None => total_utility(instance, &cfg),
        };
        if best.as_ref().is_none_or(|(_, u)| utility > *u) {
            *best = Some((cfg, utility));
        }
        return;
    }
    let (u, _s) = units[idx];
    for c in 0..instance.num_items() {
        // Cheap no-duplication pruning against earlier slots of the same user.
        let duplicate = units[..idx]
            .iter()
            .enumerate()
            .any(|(i, &(pu, _))| pu == u && assign[i] == c);
        if duplicate {
            continue;
        }
        assign[idx] = c;
        enumerate(instance, st, units, idx + 1, assign, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;
    use svgic_core::utility::unweighted_total_utility;

    fn tiny_instance() -> SvgicInstance {
        // Restrict the running example to 3 users / 3 items / 2 slots so the
        // exhaustive oracle stays fast.
        running_example()
            .restrict_users(&[0, 1, 3])
            .restrict_items(&[0, 3, 4])
            .with_slots(2)
            .unwrap()
    }

    #[test]
    fn exhaustive_and_branch_bound_agree() {
        let inst = tiny_instance();
        let brute = solve_exact(
            &inst,
            &ExactConfig {
                strategy: ExactStrategy::Exhaustive,
                ..Default::default()
            },
        );
        let ip = solve_exact(&inst, &ExactConfig::default());
        assert!(brute.proved_optimal && ip.proved_optimal);
        assert!(
            (brute.utility - ip.utility).abs() < 1e-6,
            "exhaustive {} vs branch&bound {}",
            brute.utility,
            ip.utility
        );
    }

    #[test]
    fn ip_matches_paper_optimum_on_running_example() {
        let inst = running_example();
        let ip = solve_exact(
            &inst,
            &ExactConfig {
                strategy: ExactStrategy::IpDual,
                max_nodes: 20_000,
                ..Default::default()
            },
        );
        let unweighted = unweighted_total_utility(&inst, &ip.configuration);
        assert!(
            (unweighted - 10.35).abs() < 1e-6,
            "IP found {unweighted}, paper optimum is 10.35"
        );
    }

    #[test]
    fn all_strategies_return_feasible_solutions_under_budget() {
        let inst = tiny_instance();
        for strategy in ExactStrategy::ip_strategies() {
            let sol = solve_exact(
                &inst,
                &ExactConfig {
                    strategy,
                    max_nodes: 50,
                    ..Default::default()
                },
            );
            assert!(sol.configuration.is_valid(inst.num_items()), "{strategy:?}");
            assert!(sol.utility > 0.0, "{strategy:?}");
        }
    }

    #[test]
    fn st_exact_respects_cap() {
        let inst = tiny_instance();
        let st = StParams::new(0.5, 1);
        let sol = solve_exact(
            &inst,
            &ExactConfig {
                strategy: ExactStrategy::Exhaustive,
                st: Some(st),
                ..Default::default()
            },
        );
        assert!(st.is_feasible(&sol.configuration));
        // Cap 1 forbids all direct co-display: the optimum is pure preference
        // plus teleport-discounted indirect co-display.
        let unconstrained = solve_exact(
            &inst,
            &ExactConfig {
                strategy: ExactStrategy::Exhaustive,
                ..Default::default()
            },
        );
        assert!(sol.utility <= unconstrained.utility + 1e-9);
    }

    #[test]
    fn time_boxed_run_still_returns_something() {
        let inst = running_example();
        let sol = solve_exact(
            &inst,
            &ExactConfig {
                strategy: ExactStrategy::IpPrimal,
                time_limit: Some(Duration::from_millis(1)),
                max_nodes: 3,
                ..Default::default()
            },
        );
        assert!(sol.configuration.is_valid(inst.num_items()));
        assert!(sol.utility > 0.0);
    }
}
