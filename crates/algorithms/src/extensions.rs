//! Solvers for the practical-scenario extensions of §5.
//!
//! Each extension reuses the AVG machinery:
//!
//! * **A/B — commodity values & slot significance**: the item/slot weights are
//!   folded into the utilities before solving ([`solve_weighted_avg`]); the
//!   slot weights additionally drive a post-rounding slot reordering that
//!   places the most valuable subgroup assignments at the most significant
//!   slots.
//! * **C — multi-view display**: AVG produces the primary views; group views
//!   are then filled greedily with the friends' primary items that add the
//!   most social utility ([`solve_mvd`]).
//! * **E — subgroup change**: a local-search pass swaps the per-user slot
//!   order to reduce the partition edit distance between consecutive slots
//!   without changing the SVGIC objective ([`reduce_subgroup_changes`]).
//! * **F — dynamic scenario**: users join/leave; the stale utility factors are
//!   extended/shrunk and only the affected users are re-rounded
//!   ([`DynamicSolver`]).
//! * **SEO — social event organisation**: events are items, `k = 1`, event
//!   capacities map to the ST subgroup cap ([`solve_seo`]).

use crate::avg::{round_with_factors, AvgConfig, AvgSolution, SamplingScheme};
use crate::factors::{solve_relaxation, LpBackend, RelaxationOptions};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use svgic_core::extensions::{extended_total_utility, ExtendedParams, MvdConfiguration};
use svgic_core::utility::{total_utility, total_utility_st};
use svgic_core::{Configuration, StParams, SvgicInstance, SvgicInstanceBuilder};
use svgic_graph::SocialGraph;

/// Folds commodity values into the utilities: `p(u,c) ← ω_c·p(u,c)`,
/// `τ(u,v,c) ← ω_c·τ(u,v,c)` (extension A).  Slot significance cannot be
/// folded this way (it is slot- not item-indexed) and is instead handled by
/// reordering slots after rounding.
pub fn reweight_instance(instance: &SvgicInstance, params: &ExtendedParams) -> SvgicInstance {
    let n = instance.num_users();
    let m = instance.num_items();
    let graph = instance.graph().clone();
    let mut builder = SvgicInstanceBuilder::new(graph, m, instance.num_slots(), instance.lambda());
    for u in 0..n {
        for c in 0..m {
            builder.set_preference(u, c, instance.preference(u, c) * params.commodity_value(c));
        }
    }
    for (e, &(u, v)) in instance.graph().edges().to_vec().iter().enumerate() {
        for c in 0..m {
            builder.set_social(
                u,
                v,
                c,
                instance.social_by_edge(e, c) * params.commodity_value(c),
            );
        }
    }
    builder.build().expect("reweighted instance stays valid")
}

/// Solves the commodity-value / slot-significance weighted problem
/// (extensions A + B): AVG on the commodity-weighted instance, then slots are
/// permuted (identically for all users, preserving co-displays) so that the
/// slots carrying the most utility land on the most significant positions.
/// Returns the configuration and its extended objective.
pub fn solve_weighted_avg(
    instance: &SvgicInstance,
    params: &ExtendedParams,
    config: &AvgConfig,
) -> (Configuration, f64) {
    params
        .validate(instance)
        .expect("extension parameters must match the instance");
    let weighted = reweight_instance(instance, params);
    let sol = crate::avg::solve_avg(&weighted, config);
    let mut cfg = sol.configuration;
    if let Some(gamma) = &params.slot_significance {
        // Utility carried by each slot of the weighted instance.
        let k = instance.num_slots();
        let mut slot_value: Vec<(f64, usize)> = (0..k)
            .map(|s| {
                let mut v = 0.0;
                for u in 0..weighted.num_users() {
                    let c = cfg.get(u, s);
                    v += weighted.preference(u, c);
                    for &(w, e) in weighted.graph().out_neighbors(u) {
                        if cfg.get(w, s) == c {
                            v += weighted.social_by_edge(e, c);
                        }
                    }
                }
                (v, s)
            })
            .collect();
        // Highest-value slot goes to the highest-significance position.
        slot_value.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let mut order: Vec<(f64, usize)> = gamma.iter().copied().zip(0..k).collect();
        order.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let mut permuted = cfg.clone();
        for (rank, &(_, target_slot)) in order.iter().enumerate() {
            let (_, source_slot) = slot_value[rank];
            for u in 0..cfg.num_users() {
                permuted.set(u, target_slot, cfg.get(u, source_slot));
            }
        }
        cfg = permuted;
    }
    let objective = extended_total_utility(instance, params, &cfg);
    (cfg, objective)
}

/// Multi-view display (extension C): the AVG configuration provides the
/// primary views; each display unit is then topped up with at most `beta - 1`
/// group views chosen greedily among the items that friends' primary views
/// show at the same slot, ordered by the marginal gain in preference + social
/// utility.
pub fn solve_mvd(
    instance: &SvgicInstance,
    beta: usize,
    config: &AvgConfig,
) -> (MvdConfiguration, f64) {
    assert!(beta >= 1, "beta must allow at least the primary view");
    let sol = crate::avg::solve_avg(instance, config);
    let cfg = sol.configuration;
    let mut mvd = MvdConfiguration::from_configuration(&cfg, beta);
    let lambda = instance.lambda();
    for u in 0..instance.num_users() {
        for s in 0..instance.num_slots() {
            if beta == 1 {
                break;
            }
            // Candidate items: friends' primary views at this slot.
            let mut candidates: Vec<(f64, usize)> = instance
                .graph()
                .out_neighbors(u)
                .iter()
                .map(|&(v, e)| {
                    let c = cfg.get(v, s);
                    let gain = (1.0 - lambda) * instance.preference(u, c)
                        + lambda * instance.social_by_edge(e, c);
                    (gain, c)
                })
                .filter(|&(_, c)| c != mvd.primary(u, s))
                .collect();
            candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
            for (gain, c) in candidates {
                if gain <= 0.0 {
                    break;
                }
                let _ = mvd.add_group_view(u, s, c);
            }
        }
    }
    let objective = svgic_core::extensions::mvd_total_utility(instance, &mvd);
    (mvd, objective)
}

/// Subgroup-change reduction (extension E): greedily permutes each user's slot
/// order (which leaves the SVGIC objective unchanged only when the whole
/// subgroup moves together, so swaps are only applied when they do not lower
/// the objective) until the total partition edit distance stops improving or
/// `max_rounds` is reached.  Returns the improved configuration and its total
/// edit distance.
pub fn reduce_subgroup_changes(
    instance: &SvgicInstance,
    config: &Configuration,
    max_rounds: usize,
) -> (Configuration, usize) {
    let k = config.num_slots();
    let mut current = config.clone();
    let mut best_distance: usize = total_edit_distance(&current);
    let base_utility = total_utility(instance, &current);
    for _ in 0..max_rounds {
        let mut improved = false;
        for s1 in 0..k {
            for s2 in (s1 + 1)..k {
                // Swap the contents of slots s1 and s2 for every user: this is
                // a global slot relabelling, so co-displays are preserved and
                // the SVGIC objective is unchanged; only the adjacency of
                // partitions (edit distance) changes.
                let mut candidate = current.clone();
                for u in 0..current.num_users() {
                    let a = current.get(u, s1);
                    let b = current.get(u, s2);
                    candidate.set(u, s1, b);
                    candidate.set(u, s2, a);
                }
                debug_assert!((total_utility(instance, &candidate) - base_utility).abs() < 1e-6);
                let d = total_edit_distance(&candidate);
                if d < best_distance {
                    best_distance = d;
                    current = candidate;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    (current, best_distance)
}

/// Sum of partition edit distances over consecutive slots.
pub fn total_edit_distance(config: &Configuration) -> usize {
    (0..config.num_slots().saturating_sub(1))
        .map(|s| config.subgroup_edit_distance(s))
        .sum()
}

/// Incremental solver for the dynamic scenario (extension F): maintains the
/// current population and configuration; joins and leaves only re-round the
/// affected users against the existing utility factors instead of re-running
/// the whole pipeline.
pub struct DynamicSolver {
    /// The full catalogue instance over the *maximal* population (all users
    /// that may ever be present).
    full: SvgicInstance,
    /// Currently present users (original indices, sorted).
    present: Vec<usize>,
    config: AvgConfig,
    seed_counter: u64,
}

impl DynamicSolver {
    /// Creates a dynamic solver over the full population, with everyone in
    /// `initial` present.
    pub fn new(full: SvgicInstance, initial: Vec<usize>, config: AvgConfig) -> Self {
        let mut present = initial;
        present.sort_unstable();
        present.dedup();
        Self {
            full,
            present,
            config,
            seed_counter: 0,
        }
    }

    /// Currently present users (original indices).
    pub fn present(&self) -> &[usize] {
        &self.present
    }

    /// Applies a join/leave event.  Unknown users and duplicate joins are
    /// ignored.
    pub fn apply(&mut self, event: svgic_core::extensions::DynamicEvent) {
        use svgic_core::extensions::DynamicEvent::*;
        match event {
            Join(u) => {
                if u < self.full.num_users() && !self.present.contains(&u) {
                    self.present.push(u);
                    self.present.sort_unstable();
                }
            }
            Leave(u) => {
                self.present.retain(|&v| v != u);
            }
        }
    }

    /// Re-solves for the current population and returns the solution together
    /// with the restricted instance it refers to.
    pub fn resolve(&mut self) -> Option<(SvgicInstance, AvgSolution)> {
        if self.present.is_empty() {
            return None;
        }
        self.seed_counter += 1;
        let instance = self.full.restrict_users(&self.present);
        let factors = solve_relaxation(&instance, &self.config.relaxation);
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ self.seed_counter);
        let (cfg, iterations) = round_with_factors(
            &instance,
            &factors,
            None,
            SamplingScheme::Advanced,
            self.config.max_idle_iterations,
            &mut rng,
        );
        let utility = total_utility(&instance, &cfg);
        let bound = factors.utility_upper_bound(&instance);
        Some((
            instance,
            AvgSolution {
                configuration: cfg,
                utility,
                relaxation_bound: bound,
                iterations,
                repetitions: 1,
            },
        ))
    }
}

/// A Social Event Organisation (SEO) problem: users attend exactly one event
/// each, events have capacities, attendance yields a personal affinity and a
/// social benefit for every pair of friends attending together.
#[derive(Clone, Debug)]
pub struct SeoProblem {
    /// Social network of the attendees.
    pub graph: SocialGraph,
    /// Number of candidate events.
    pub num_events: usize,
    /// `affinity[u * num_events + e]` — preference of user `u` for event `e`.
    pub affinity: Vec<f64>,
    /// Social benefit of attending any common event, per directed edge (keyed
    /// like the graph's edge indices).
    pub togetherness: Vec<f64>,
    /// Capacity of each event.
    pub capacity: usize,
    /// Preference/social trade-off.
    pub lambda: f64,
}

/// Result of solving an SEO problem via the SVGIC-ST mapping.
#[derive(Clone, Debug)]
pub struct SeoSolution {
    /// Event assigned to each user.
    pub assignment: Vec<usize>,
    /// Total welfare (SVGIC-ST objective of the mapped instance).
    pub welfare: f64,
}

/// Maps SEO onto SVGIC-ST (`k = 1`, events = items, capacity = subgroup cap)
/// and solves it with the extended AVG (§4.4 "Supporting Social Event
/// Organization").
pub fn solve_seo(problem: &SeoProblem, config: &AvgConfig) -> SeoSolution {
    let n = problem.graph.num_nodes();
    assert_eq!(problem.affinity.len(), n * problem.num_events);
    let mut builder =
        SvgicInstanceBuilder::new(problem.graph.clone(), problem.num_events, 1, problem.lambda);
    for u in 0..n {
        for e in 0..problem.num_events {
            builder.set_preference(u, e, problem.affinity[u * problem.num_events + e]);
        }
    }
    for (idx, &(u, v)) in problem.graph.edges().to_vec().iter().enumerate() {
        for e in 0..problem.num_events {
            builder.set_social(u, v, e, problem.togetherness[idx]);
        }
    }
    let instance = builder.build().expect("valid SEO instance");
    let st = StParams::new(0.0, problem.capacity.max(1));
    let sol = crate::avg::solve_avg_st(&instance, &st, config);
    let assignment = (0..n).map(|u| sol.configuration.get(u, 0)).collect();
    SeoSolution {
        assignment,
        welfare: total_utility_st(&instance, &st, &sol.configuration),
    }
}

/// Convenience: a default AVG configuration suitable for the extensions
/// (structured backend, fixed seed).
pub fn default_extension_config(seed: u64) -> AvgConfig {
    AvgConfig {
        relaxation: RelaxationOptions {
            backend: LpBackend::Auto,
            ..Default::default()
        },
        seed,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::{paper_configurations, running_example};

    fn cfg(seed: u64) -> AvgConfig {
        AvgConfig::with_backend(LpBackend::ExactSimplex, seed)
    }

    #[test]
    fn reweight_scales_both_utility_kinds() {
        let inst = running_example();
        let params = ExtendedParams {
            commodity: Some(vec![2.0, 1.0, 1.0, 1.0, 0.5]),
            ..Default::default()
        };
        let w = reweight_instance(&inst, &params);
        assert!((w.preference(0, 0) - 2.0 * inst.preference(0, 0)).abs() < 1e-12);
        assert!((w.social(0, 2, 4) - 0.5 * inst.social(0, 2, 4)).abs() < 1e-12);
    }

    #[test]
    fn weighted_avg_produces_valid_configuration() {
        let inst = running_example();
        let params = ExtendedParams {
            commodity: Some(vec![1.0, 3.0, 1.0, 1.0, 1.0]),
            slot_significance: Some(vec![9.0, 1.0, 1.0]),
            ..Default::default()
        };
        let (cfg_out, objective) = solve_weighted_avg(&inst, &params, &cfg(4));
        assert!(cfg_out.is_valid(inst.num_items()));
        assert!(objective > 0.0);
        // The objective must equal the extended evaluation of the returned config.
        assert!((objective - extended_total_utility(&inst, &params, &cfg_out)).abs() < 1e-9);
    }

    #[test]
    fn slot_significance_moves_value_to_important_slots() {
        let inst = running_example();
        let params = ExtendedParams {
            slot_significance: Some(vec![10.0, 1.0, 1.0]),
            ..Default::default()
        };
        let (cfg_out, _) = solve_weighted_avg(&inst, &params, &cfg(4));
        // Slot 0 (significance 10) must carry at least as much raw utility as
        // any other slot after the reordering.
        let slot_utility = |s: usize| -> f64 {
            let mut v = 0.0;
            for u in 0..inst.num_users() {
                let c = cfg_out.get(u, s);
                v += inst.preference(u, c);
                for &(w, e) in inst.graph().out_neighbors(u) {
                    if cfg_out.get(w, s) == c {
                        v += inst.social_by_edge(e, c);
                    }
                }
            }
            v
        };
        assert!(slot_utility(0) + 1e-9 >= slot_utility(1).max(slot_utility(2)));
    }

    #[test]
    fn mvd_never_loses_utility_relative_to_single_view() {
        let inst = running_example();
        let (mvd, objective) = solve_mvd(&inst, 3, &cfg(8));
        assert!(mvd.primaries_valid(inst.num_items()));
        let single = crate::avg::solve_avg(&inst, &cfg(8));
        assert!(objective + 1e-9 >= single.utility);
    }

    #[test]
    fn subgroup_change_reduction_preserves_utility() {
        let inst = running_example();
        let cfgs = paper_configurations();
        let before = total_utility(&inst, &cfgs.optimal);
        let (smoothed, distance) = reduce_subgroup_changes(&inst, &cfgs.optimal, 5);
        assert!((total_utility(&inst, &smoothed) - before).abs() < 1e-9);
        assert!(distance <= total_edit_distance(&cfgs.optimal));
    }

    #[test]
    fn dynamic_solver_handles_joins_and_leaves() {
        use svgic_core::extensions::DynamicEvent;
        let inst = running_example();
        let mut solver = DynamicSolver::new(inst, vec![0, 1], cfg(1));
        let (i1, s1) = solver.resolve().unwrap();
        assert_eq!(i1.num_users(), 2);
        assert!(s1.configuration.is_valid(i1.num_items()));
        solver.apply(DynamicEvent::Join(3));
        solver.apply(DynamicEvent::Join(3)); // duplicate ignored
        solver.apply(DynamicEvent::Join(99)); // unknown ignored
        let (i2, s2) = solver.resolve().unwrap();
        assert_eq!(i2.num_users(), 3);
        assert!(s2.configuration.is_valid(i2.num_items()));
        solver.apply(DynamicEvent::Leave(0));
        solver.apply(DynamicEvent::Leave(1));
        solver.apply(DynamicEvent::Leave(3));
        assert!(solver.resolve().is_none());
    }

    #[test]
    fn seo_respects_event_capacity() {
        // 6 users in two cliques of 3, 3 events, capacity 3: each clique should
        // gather at one event.
        let graph =
            SocialGraph::from_undirected_edges(6, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]);
        let n = 6;
        let num_events = 3;
        let mut affinity = vec![0.1; n * num_events];
        for u in 0..3 {
            affinity[u * num_events] = 0.5; // clique A slightly prefers event 0
        }
        for u in 3..6 {
            affinity[u * num_events + 1] = 0.5; // clique B prefers event 1
        }
        let togetherness = vec![1.0; graph.num_edges()];
        let problem = SeoProblem {
            graph,
            num_events,
            affinity,
            togetherness,
            capacity: 3,
            lambda: 0.5,
        };
        let sol = solve_seo(&problem, &cfg(11));
        assert_eq!(sol.assignment.len(), 6);
        // Capacity respected.
        for e in 0..num_events {
            assert!(sol.assignment.iter().filter(|&&a| a == e).count() <= 3);
        }
        assert!(sol.welfare > 0.0);
    }
}
