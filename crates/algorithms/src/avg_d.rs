//! The derandomized AVG-D algorithm (Algorithm 3, Theorem 5 of the paper).
//!
//! Instead of sampling focal parameters, AVG-D evaluates every candidate pivot
//! `(c, s, α = x*_{u,s}^c)` and selects the one maximising
//!
//! ```text
//! f(c, s, α) = ALG(S_tar(c, s, α)) + r · OPT_LP(S_fut(c, s, α))
//! ```
//!
//! where `S_tar` is the target subgroup that Co-display Subgroup Formation
//! would assign, `ALG` is the (scaled) SAVG utility gained right now, and
//! `OPT_LP(S_fut)` is the expected future utility of the display units that
//! remain unassigned, evaluated on the fractional solution.  With `r = ¼` the
//! method-of-conditional-expectations argument of Theorem 5 yields a
//! deterministic 4-approximation; the knob `r` is exposed because Fig. 12 of
//! the paper studies its sensitivity (small `r` degenerates towards the group
//! approach, large `r` towards the personalized approach).

use crate::factors::{solve_relaxation, RelaxationOptions, UtilityFactors};
use svgic_core::utility::{total_utility, total_utility_st};
use svgic_core::{Configuration, PartialConfiguration, StParams, SvgicInstance};

use crate::avg::AvgSolution;

/// Configuration of an AVG-D run.
#[derive(Clone, Debug)]
pub struct AvgDConfig {
    /// LP relaxation backend options.
    pub relaxation: RelaxationOptions,
    /// Balancing ratio `r` between the immediate gain and the expected future
    /// gain; the theoretical guarantee uses `r = 0.25`.
    pub balancing_ratio: f64,
}

impl Default for AvgDConfig {
    fn default() -> Self {
        Self {
            relaxation: RelaxationOptions::default(),
            balancing_ratio: 0.25,
        }
    }
}

impl AvgDConfig {
    /// Constructor with an explicit balancing ratio.
    pub fn with_ratio(balancing_ratio: f64) -> Self {
        Self {
            balancing_ratio,
            ..Default::default()
        }
    }
}

/// Solves SVGIC with the deterministic AVG-D.
pub fn solve_avg_d(instance: &SvgicInstance, config: &AvgDConfig) -> AvgSolution {
    solve_avg_d_impl(instance, None, config)
}

/// Solves SVGIC-ST with the deterministic AVG-D (subgroup-size locking).
pub fn solve_avg_d_st(instance: &SvgicInstance, st: &StParams, config: &AvgDConfig) -> AvgSolution {
    solve_avg_d_impl(instance, Some(*st), config)
}

fn solve_avg_d_impl(
    instance: &SvgicInstance,
    st: Option<StParams>,
    config: &AvgDConfig,
) -> AvgSolution {
    let factors = solve_relaxation(instance, &config.relaxation);
    let bound = factors.utility_upper_bound(instance);
    let (configuration, iterations) =
        deterministic_rounding(instance, &factors, st.as_ref(), config.balancing_ratio);
    let utility = match &st {
        Some(st) => total_utility_st(instance, st, &configuration),
        None => total_utility(instance, &configuration),
    };
    AvgSolution {
        configuration,
        utility,
        relaxation_bound: bound,
        iterations,
        repetitions: 1,
    }
}

/// Deterministic pivot selection (DPS) + CSF loop.  Public so ablations and
/// the dynamic extension can reuse stale factors.
pub fn deterministic_rounding(
    instance: &SvgicInstance,
    factors: &UtilityFactors,
    st: Option<&StParams>,
    r: f64,
) -> (Configuration, usize) {
    let n = instance.num_users();
    let m = instance.num_items();
    let k = instance.num_slots();
    let lambda = instance.lambda();
    // Scaled preference used by the analysis (p' = (1-λ)/λ p for λ > 0,
    // otherwise raw preference).
    let scaled_pref = |u: usize, c: usize| -> f64 {
        if lambda > 0.0 {
            instance.scaled_preference(u, c)
        } else {
            instance.preference(u, c)
        }
    };

    let mut partial = PartialConfiguration::empty(n, k);
    let mut locked = vec![false; m * k];
    let col = |c: usize, s: usize| c * k + s;

    // Per-unit fractional contribution to OPT_LP (identical across slots):
    //   unit_lp(u) = Σ_c p'(u,c) · x*_{u,s}^c.
    let unit_lp: Vec<f64> = (0..n)
        .map(|u| {
            (0..m)
                .map(|c| scaled_pref(u, c) * factors.per_slot(u, 0, c))
                .sum()
        })
        .collect();
    // Per-pair fractional contribution at one slot:
    //   pair_lp(p) = Σ_c w_e^c · min(x*_{u,s}^c, x*_{v,s}^c).
    let pairs = instance.friend_pairs();
    let pair_lp: Vec<f64> = pairs
        .iter()
        .enumerate()
        .map(|(p, pair)| {
            (0..m)
                .map(|c| instance.pair_weight(p, c) * factors.pair_per_slot(pair.u, pair.v, 0, c))
                .sum()
        })
        .collect();
    // Adjacency of pairs per user for fast updates.
    let mut pairs_of_user: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (p, pair) in pairs.iter().enumerate() {
        pairs_of_user[pair.u].push(p);
        pairs_of_user[pair.v].push(p);
    }

    // OPT_LP(S_cur) is maintained incrementally: it is the sum over unassigned
    // units of unit_lp plus, for every slot, the sum of pair_lp over pairs
    // whose *both* endpoints are unassigned at that slot.
    let mut unit_open = vec![vec![true; k]; n]; // unit_open[u][s]
    let mut open_units_per_user = vec![k; n];
    let mut current_lp: f64 = unit_lp.iter().map(|&v| v * k as f64).sum::<f64>()
        + pair_lp.iter().map(|&v| v * k as f64).sum::<f64>();

    let mut iterations = 0usize;
    while !partial.is_complete() {
        iterations += 1;
        // ---- Deterministic pivot selection --------------------------------
        // For every (c, s), sort eligible users by factor and evaluate every
        // prefix (each prefix corresponds to a threshold α = factor of its
        // last member).  f = ALG(S_tar) + r · (OPT_LP(S_cur) − removed).
        let mut best: Option<(f64, usize, usize, Vec<usize>)> = None; // (f, c, s, members)
        for c in 0..m {
            for s in 0..k {
                if locked[col(c, s)] {
                    continue;
                }
                let mut eligible: Vec<(f64, usize)> = (0..n)
                    .filter(|&u| partial.eligible(u, c, s))
                    .map(|u| (factors.per_slot(u, s, c), u))
                    .collect();
                if eligible.is_empty() {
                    continue;
                }
                eligible.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
                let cap = st
                    .map(|st| st.max_subgroup.saturating_sub(partial.subgroup_size(c, s)))
                    .unwrap_or(usize::MAX);
                if cap == 0 {
                    continue;
                }
                let mut members: Vec<usize> = Vec::new();
                let mut alg = 0.0;
                let mut removed = 0.0;
                for &(factor, u) in eligible.iter().take(cap.min(eligible.len())) {
                    if factor <= 0.0 && !members.is_empty() {
                        break;
                    }
                    // Incremental ALG: preference plus social with members already in.
                    alg += scaled_pref(u, c);
                    for &p in &pairs_of_user[u] {
                        let other = if pairs[p].u == u {
                            pairs[p].v
                        } else {
                            pairs[p].u
                        };
                        if members.contains(&other) {
                            alg += instance.pair_weight(p, c);
                        }
                    }
                    // Incremental removal of (u, s) from S_fut.
                    removed += unit_lp[u];
                    for &p in &pairs_of_user[u] {
                        let other = if pairs[p].u == u {
                            pairs[p].v
                        } else {
                            pairs[p].u
                        };
                        // The pair term at slot s disappears when the first of
                        // the two endpoints leaves S_cur at s.
                        let other_open = unit_open[other][s] && !members.contains(&other);
                        if unit_open[u][s] && other_open {
                            removed += pair_lp[p];
                        }
                    }
                    members.push(u);
                    let f = alg + r * (current_lp - removed);
                    if best.as_ref().is_none_or(|(bf, _, _, _)| f > *bf + 1e-12) {
                        best = Some((f, c, s, members.clone()));
                    }
                    if factor <= 0.0 {
                        break;
                    }
                }
            }
        }

        let Some((_, c, s, members)) = best else {
            // No eligible pivot with positive contribution: finish greedily by
            // giving every open unit its best remaining item.
            complete_greedily(instance, factors, st, &mut partial);
            break;
        };
        // ---- Apply CSF with the selected pivot -----------------------------
        for &u in &members {
            // Update OPT_LP bookkeeping before marking the unit closed.
            current_lp -= unit_lp[u];
            for &p in &pairs_of_user[u] {
                let other = if pairs[p].u == u {
                    pairs[p].v
                } else {
                    pairs[p].u
                };
                if unit_open[u][s] && unit_open[other][s] {
                    current_lp -= pair_lp[p];
                }
                // Avoid double-subtracting when both endpoints are in `members`:
                // once u is marked closed below, the other endpoint's pass will
                // see unit_open[u][s] == false.
            }
            unit_open[u][s] = false;
            open_units_per_user[u] -= 1;
            partial.assign(u, s, c);
        }
        if let Some(st) = st {
            if partial.subgroup_size(c, s) >= st.max_subgroup {
                locked[col(c, s)] = true;
            }
        }
    }
    if !partial.is_complete() {
        complete_greedily(instance, factors, st, &mut partial);
    }
    (partial.into_configuration(), iterations)
}

fn complete_greedily(
    instance: &SvgicInstance,
    factors: &UtilityFactors,
    st: Option<&StParams>,
    partial: &mut PartialConfiguration,
) {
    let n = instance.num_users();
    let m = instance.num_items();
    let k = instance.num_slots();
    for u in 0..n {
        for s in 0..k {
            if partial.get(u, s).is_some() {
                continue;
            }
            let mut best: Option<(f64, f64, usize)> = None;
            for c in 0..m {
                if !partial.eligible(u, c, s) {
                    continue;
                }
                if let Some(st) = st {
                    if partial.subgroup_size(c, s) >= st.max_subgroup {
                        continue;
                    }
                }
                let key = (factors.per_slot(u, s, c), instance.preference(u, c), c);
                if best.is_none_or(|(bf, bp, bc)| {
                    key.0 > bf || (key.0 == bf && (key.1 > bp || (key.1 == bp && c < bc)))
                }) {
                    best = Some(key);
                }
            }
            let (_, _, c) = best.expect("an eligible item always exists");
            partial.assign(u, s, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::LpBackend;
    use svgic_core::example::running_example;
    use svgic_core::utility::unweighted_total_utility;

    fn exact_config(r: f64) -> AvgDConfig {
        AvgDConfig {
            relaxation: RelaxationOptions {
                backend: LpBackend::ExactSimplex,
                ..Default::default()
            },
            balancing_ratio: r,
        }
    }

    #[test]
    fn avg_d_is_deterministic_and_valid() {
        let inst = running_example();
        let a = solve_avg_d(&inst, &exact_config(0.25));
        let b = solve_avg_d(&inst, &exact_config(0.25));
        assert_eq!(a.configuration, b.configuration);
        assert!(a.configuration.is_valid(inst.num_items()));
        assert!(a.utility <= a.relaxation_bound + 1e-6);
    }

    #[test]
    fn avg_d_is_near_optimal_on_the_running_example() {
        // The paper reports 9.85 / 10.35 ≈ 95% for AVG-D on this instance; our
        // implementation must at least stay within the 4-approximation and in
        // practice lands well above 85% of the optimum.
        let inst = running_example();
        let sol = solve_avg_d(&inst, &exact_config(0.25));
        let unweighted = unweighted_total_utility(&inst, &sol.configuration);
        assert!(
            unweighted >= 0.85 * 10.35,
            "AVG-D reached only {unweighted} (optimum 10.35)"
        );
    }

    #[test]
    fn small_r_tends_towards_the_group_approach() {
        let inst = running_example();
        let grouped = solve_avg_d(&inst, &exact_config(0.01));
        // With r ≈ 0 the first pivot grabs every eligible user, so slot
        // subgroup counts collapse (mostly one subgroup per slot).
        let avg_subgroups: f64 = (0..3)
            .map(|s| grouped.configuration.num_subgroups_at_slot(s) as f64)
            .sum::<f64>()
            / 3.0;
        let personalized = solve_avg_d(&inst, &exact_config(10.0));
        let avg_subgroups_personalized: f64 = (0..3)
            .map(|s| personalized.configuration.num_subgroups_at_slot(s) as f64)
            .sum::<f64>()
            / 3.0;
        assert!(
            avg_subgroups <= avg_subgroups_personalized + 1e-9,
            "r=0.01 gives {avg_subgroups} subgroups/slot, r=10 gives {avg_subgroups_personalized}"
        );
    }

    #[test]
    fn avg_d_st_respects_cap() {
        let inst = running_example();
        for cap in 1..=3 {
            let st = StParams::new(0.5, cap);
            let sol = solve_avg_d_st(&inst, &st, &exact_config(0.25));
            assert!(sol.configuration.is_valid(inst.num_items()));
            assert!(st.is_feasible(&sol.configuration), "cap {cap} violated");
        }
    }

    #[test]
    fn avg_d_beats_the_approximation_bound() {
        let inst = running_example();
        for r in [0.1, 0.25, 0.5, 1.0] {
            let sol = solve_avg_d(&inst, &exact_config(r));
            let unweighted = unweighted_total_utility(&inst, &sol.configuration);
            assert!(unweighted >= 10.35 / 4.0, "r = {r}: {unweighted}");
        }
    }
}
