//! Fixture-file tests: every rule has a positive fixture (findings fire), a
//! suppressed fixture (a reasoned `// lint: allow(...)` silences them) and a
//! clean fixture (the compliant idiom produces nothing). The fixtures live in
//! `crates/lint/fixtures/`, which the workspace walker deliberately skips.

use svgic_lint::{analyze_file, Report};

/// Analyzes fixture `src` as if it lived at `path` (the path picks the rule
/// scope) and returns the report.
fn run(path: &str, src: &str) -> Report {
    let mut report = Report::default();
    analyze_file(path, src, &mut report);
    report
}

fn rules_of(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn hash_iter_fixtures() {
    let positive = run(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/hash_iter_positive.rs"),
    );
    assert_eq!(
        rules_of(&positive),
        ["hash-iter", "hash-iter"],
        "{positive:#?}"
    );

    let suppressed = run(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/hash_iter_suppressed.rs"),
    );
    assert!(suppressed.findings.is_empty(), "{suppressed:#?}");
    assert_eq!(suppressed.suppressions_used, 1);

    let clean = run(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/hash_iter_clean.rs"),
    );
    assert!(clean.findings.is_empty(), "{clean:#?}");
}

#[test]
fn hash_iter_scope_is_digest_crates_only() {
    // The same source in a non-digest crate (workload) is out of scope.
    let report = run(
        "crates/workload/src/fixture.rs",
        include_str!("../fixtures/hash_iter_positive.rs"),
    );
    assert!(!rules_of(&report).contains(&"hash-iter"), "{report:#?}");
}

#[test]
fn wall_clock_fixtures() {
    let positive = run(
        "crates/workload/src/fixture.rs",
        include_str!("../fixtures/wall_clock_positive.rs"),
    );
    // `Instant::now()`, plus every `SystemTime` mention (import, return
    // type, `::now()`): the rule is deliberately blunt about SystemTime.
    assert_eq!(
        rules_of(&positive),
        ["wall-clock", "wall-clock", "wall-clock", "wall-clock"],
        "{positive:#?}"
    );

    let suppressed = run(
        "crates/workload/src/fixture.rs",
        include_str!("../fixtures/wall_clock_suppressed.rs"),
    );
    assert!(suppressed.findings.is_empty(), "{suppressed:#?}");
    assert_eq!(suppressed.suppressions_used, 1);

    let clean = run(
        "crates/workload/src/fixture.rs",
        include_str!("../fixtures/wall_clock_clean.rs"),
    );
    assert!(clean.findings.is_empty(), "{clean:#?}");
}

#[test]
fn wall_clock_is_exempt_inside_crates_obs() {
    let report = run(
        "crates/obs/src/fixture.rs",
        include_str!("../fixtures/wall_clock_positive.rs"),
    );
    assert!(!rules_of(&report).contains(&"wall-clock"), "{report:#?}");
}

#[test]
fn no_panic_fixtures() {
    let positive = run(
        "crates/net/src/fixture.rs",
        include_str!("../fixtures/no_panic_positive.rs"),
    );
    assert_eq!(
        rules_of(&positive),
        ["no-panic", "no-panic", "no-panic"],
        "{positive:#?}"
    );

    let suppressed = run(
        "crates/net/src/fixture.rs",
        include_str!("../fixtures/no_panic_suppressed.rs"),
    );
    assert!(suppressed.findings.is_empty(), "{suppressed:#?}");
    assert_eq!(suppressed.suppressions_used, 1);

    let clean = run(
        "crates/net/src/fixture.rs",
        include_str!("../fixtures/no_panic_clean.rs"),
    );
    assert!(clean.findings.is_empty(), "{clean:#?}");
}

#[test]
fn prealloc_fixtures() {
    let positive = run(
        "crates/net/src/fixture.rs",
        include_str!("../fixtures/prealloc_positive.rs"),
    );
    assert_eq!(
        rules_of(&positive),
        ["prealloc", "prealloc"],
        "{positive:#?}"
    );

    let suppressed = run(
        "crates/net/src/fixture.rs",
        include_str!("../fixtures/prealloc_suppressed.rs"),
    );
    assert!(suppressed.findings.is_empty(), "{suppressed:#?}");
    assert_eq!(suppressed.suppressions_used, 1);

    let clean = run(
        "crates/net/src/fixture.rs",
        include_str!("../fixtures/prealloc_clean.rs"),
    );
    assert!(clean.findings.is_empty(), "{clean:#?}");
}

#[test]
fn relaxed_store_fixtures() {
    let positive = run(
        "crates/obs/src/fixture.rs",
        include_str!("../fixtures/relaxed_store_positive.rs"),
    );
    assert_eq!(
        rules_of(&positive),
        ["relaxed-store", "relaxed-store", "relaxed-store"],
        "{positive:#?}"
    );

    let suppressed = run(
        "crates/obs/src/fixture.rs",
        include_str!("../fixtures/relaxed_store_suppressed.rs"),
    );
    assert!(suppressed.findings.is_empty(), "{suppressed:#?}");
    assert_eq!(suppressed.suppressions_used, 1);

    let clean = run(
        "crates/obs/src/fixture.rs",
        include_str!("../fixtures/relaxed_store_clean.rs"),
    );
    assert!(clean.findings.is_empty(), "{clean:#?}");
}

#[test]
fn allow_hygiene_fixture() {
    // A reasonless allow is a finding, suppresses nothing (so the wall-clock
    // read underneath it still fires), and a reasoned allow matching nothing
    // is reported stale.
    let report = run(
        "crates/workload/src/fixture.rs",
        include_str!("../fixtures/allow_hygiene.rs"),
    );
    let mut rules = rules_of(&report);
    rules.sort_unstable();
    assert_eq!(
        rules,
        ["allow-syntax", "unused-allow", "wall-clock"],
        "{report:#?}"
    );
    assert_eq!(report.suppressions_used, 0);
}

#[test]
fn fixtures_are_excluded_from_the_workspace_walk() {
    // The fixtures deliberately contain violations; the workspace analysis
    // must never pick them up (EXCLUDED_DIRS covers `fixtures/`).
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = svgic_lint::run_workspace(&root);
    assert!(
        !report.findings.iter().any(|f| f.file.contains("fixtures/")),
        "fixture files leaked into the workspace walk"
    );
}
