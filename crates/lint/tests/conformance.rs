//! Conformance tests against the real repository: the `docs/FORMATS.md`
//! wire-tag tables must exactly match the codec's encode/decode arms and the
//! `EngineRequest`/`EngineResponse` enums, and the documented metrics key
//! table must match what `StatsSnapshot::metrics()` emits. These are the
//! drift checks `svgic-lint --deny` runs in CI, executed here so `cargo
//! test` alone also catches drift.

use std::path::PathBuf;

use svgic_lint::rules::drift;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn read(rel: &str) -> String {
    let path = repo_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn wire_tag_tables_match_the_codec_exactly() {
    let api = read("crates/engine/src/api.rs");
    let codec = read("crates/engine/src/codec.rs");
    let formats = read("docs/FORMATS.md");
    let findings = drift::check_wire_drift(
        &api,
        &codec,
        &formats,
        "crates/engine/src/api.rs",
        "crates/engine/src/codec.rs",
        "docs/FORMATS.md",
    );
    assert!(
        findings.is_empty(),
        "wire-tag drift between api.rs, codec.rs and FORMATS.md:\n{}",
        findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn metrics_key_table_matches_the_registry_exactly() {
    let stats = read("crates/engine/src/stats.rs");
    let formats = read("docs/FORMATS.md");
    let findings = drift::check_metrics_drift(
        &stats,
        &formats,
        "crates/engine/src/stats.rs",
        "docs/FORMATS.md",
    );
    assert!(
        findings.is_empty(),
        "metrics-key drift between stats.rs and FORMATS.md §2.4:\n{}",
        findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_is_lint_clean() {
    // The acceptance bar for `svgic-lint --deny`, in test form: every
    // finding in the workspace is either fixed or suppressed with a reason.
    let report = svgic_lint::run_workspace(&repo_root());
    assert!(
        report.findings.is_empty(),
        "unsuppressed lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 100, "walk looks truncated");
    assert!(report.suppressions_used > 50, "suppressions not honored");
}
