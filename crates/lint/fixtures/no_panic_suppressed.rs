// Fixture: an annotated panic site is suppressed.
pub fn locked(mutex: &std::sync::Mutex<u32>) -> u32 {
    // lint: allow(no-panic, a poisoned lock means a worker already panicked; state is unrecoverable)
    *mutex.lock().expect("poisoned")
}
