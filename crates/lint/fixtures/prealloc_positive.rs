// Fixture: allocating from an unvalidated wire length must be flagged.
pub fn read_payload(len: u32) -> Vec<u8> {
    let payload = vec![0u8; len as usize];
    payload
}

pub fn reserve(count: usize) -> Vec<u64> {
    Vec::with_capacity(count)
}
