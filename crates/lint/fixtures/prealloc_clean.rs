// Fixture: validating the length before allocating — clean.
const MAX_PAYLOAD: usize = 1 << 20;

pub fn read_payload(len: u32) -> Option<Vec<u8>> {
    let len = len as usize;
    if len > MAX_PAYLOAD {
        return None;
    }
    Some(vec![0u8; len])
}
