// Fixture: hash-order iteration in a digest crate must be flagged.
use std::collections::HashMap;

pub fn leak_order(weights: &HashMap<u32, f64>) -> Vec<u32> {
    let mut out = Vec::new();
    for (&k, _) in weights.iter() {
        out.push(k);
    }
    out
}

pub fn local_binding() -> Vec<u32> {
    let merged = HashMap::new();
    merged.insert(1u32, 2u32);
    merged.keys().copied().collect()
}
