// Fixture: no wall-clock reads at all — nothing to flag.
pub fn logical_clock(tick: u64) -> u64 {
    tick + 1
}
