// Fixture: an annotated wall-clock read is suppressed.
use std::time::Instant;

pub fn report_timing() -> u128 {
    // lint: allow(wall-clock, latency sample for the load report only)
    let started = Instant::now();
    started.elapsed().as_nanos()
}
