// Fixture: ordered containers and non-iterating HashMap use are clean.
// (Container detection is per-file and name-based, so the BTreeMap parameter
// must not share a name with a HashMap binding elsewhere in the file.)
use std::collections::{BTreeMap, HashMap};

pub fn ordered(sorted_weights: &BTreeMap<u32, f64>) -> Vec<u32> {
    sorted_weights.keys().copied().collect()
}

pub fn point_lookup(weights: &HashMap<u32, f64>) -> Option<f64> {
    weights.get(&7).copied()
}
