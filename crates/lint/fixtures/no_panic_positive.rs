// Fixture: panicking constructs in a connection path must be flagged.
pub fn read_header(buf: &[u8]) -> u64 {
    let bytes: [u8; 8] = buf[0..8].try_into().unwrap();
    u64::from_le_bytes(bytes)
}

pub fn dispatch(kind: u8) {
    match kind {
        1 => {}
        _ => panic!("unknown frame kind"),
    }
}

pub fn must_have(field: Option<u32>) -> u32 {
    field.expect("field missing")
}
