// Fixture: an annotated pre-validation allocation is suppressed.
pub fn read_payload(len: u32) -> Vec<u8> {
    // lint: allow(prealloc, len is validated against MAX_PAYLOAD by the caller)
    let payload = vec![0u8; len as usize];
    payload
}
