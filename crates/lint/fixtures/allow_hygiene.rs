// Fixture: a reasonless allow is itself a finding and suppresses nothing;
// an allow that matches nothing is stale.
use std::time::Instant;

pub fn reasonless() -> Instant {
    // lint: allow(wall-clock)
    Instant::now()
}

// lint: allow(no-panic, nothing here can panic)
pub fn stale() -> u32 {
    7
}
