// Fixture: error propagation instead of panicking — clean.
pub fn read_header(buf: &[u8]) -> Result<u64, std::io::Error> {
    if buf.len() < 8 {
        return Err(std::io::ErrorKind::UnexpectedEof.into());
    }
    Ok(u64::from_le_bytes([
        buf[0], buf[1], buf[2], buf[3], buf[4], buf[5], buf[6], buf[7],
    ]))
}
