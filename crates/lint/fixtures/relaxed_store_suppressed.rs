// Fixture: an annotated relaxed write is suppressed.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn count(counter: &AtomicU64) {
    // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
    counter.fetch_add(1, Ordering::Relaxed);
}
