// Fixture: the same iteration with a reasoned allow must be suppressed.
use std::collections::HashMap;

pub fn commutative_total(weights: &HashMap<u32, f64>) -> f64 {
    // lint: allow(hash-iter, summation is commutative; order cannot change the total)
    weights.values().sum()
}
