// Fixture: unannotated wall-clock reads outside crates/obs must be flagged.
use std::time::{Instant, SystemTime};

pub fn naive_timing() -> u128 {
    let started = Instant::now();
    started.elapsed().as_nanos()
}

pub fn naive_timestamp() -> SystemTime {
    SystemTime::now()
}
