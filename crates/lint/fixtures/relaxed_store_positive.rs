// Fixture: unannotated relaxed atomic writes must be flagged.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish_pair(entries: &AtomicU64, bytes: &AtomicU64) {
    entries.store(5, Ordering::Relaxed);
    bytes.store(4096, Ordering::Relaxed);
}

pub fn count(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}
