// Fixture: Release stores and Relaxed loads are clean — the rule only
// covers relaxed writes.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(flag: &AtomicU64) {
    flag.store(1, Ordering::Release);
}

pub fn observe(flag: &AtomicU64) -> u64 {
    flag.load(Ordering::Relaxed)
}
