//! Drift rules: the wire format and the metrics list are *documented
//! normatively* in `docs/FORMATS.md`; these rules make the documentation
//! load-bearing by cross-checking it against the source of truth on every
//! run.
//!
//! * **`wire-drift`** — the `EngineRequest` / `EngineResponse` variants in
//!   `api.rs`, the encode/decode tag arms in `codec.rs`, and the §3.3/§3.4
//!   wire-tag tables in `FORMATS.md` must describe the same `(variant,
//!   tag)` sets.
//! * **`metrics-drift`** — every key `StatsSnapshot::metrics()` emits must
//!   be documented in the §2.4 key table, and every documented key must
//!   still be emitted.

use std::collections::BTreeMap;

use crate::findings::Finding;
use crate::lexer::{lex, Token, TokenKind};

/// Rule id for wire-tag drift.
pub const WIRE_DRIFT: &str = "wire-drift";

/// Rule id for metrics-key drift.
pub const METRICS_DRIFT: &str = "metrics-drift";

/// Cross-checks enum variants, codec arms and the FORMATS.md tag tables.
///
/// `api_src` / `codec_src` are the contents of `crates/engine/src/api.rs`
/// and `codec.rs`; `formats_md` is `docs/FORMATS.md`. Paths are only used
/// to label findings.
pub fn check_wire_drift(
    api_src: &str,
    codec_src: &str,
    formats_md: &str,
    api_path: &str,
    codec_path: &str,
    formats_path: &str,
) -> Vec<Finding> {
    let api = lex(api_src).tokens;
    let codec = lex(codec_src).tokens;
    let mut findings = Vec::new();

    for (enum_name, encode_fn, decode_fn, section) in [
        ("EngineRequest", "encode_request", "decode_request", "3.3"),
        (
            "EngineResponse",
            "encode_response",
            "decode_response",
            "3.4",
        ),
    ] {
        let variants = enum_variants(&api, enum_name);
        if variants.is_empty() {
            findings.push(Finding::new(
                api_path,
                0,
                WIRE_DRIFT,
                format!("could not find `enum {enum_name}` variants"),
            ));
            continue;
        }
        let encode = encode_arms(&codec, encode_fn, enum_name);
        let decode = decode_arms(&codec, decode_fn, enum_name);
        let doc = doc_tag_table(formats_md, section);
        if encode.is_empty() {
            findings.push(Finding::new(
                codec_path,
                0,
                WIRE_DRIFT,
                format!("could not find tag arms in `{encode_fn}`"),
            ));
        }
        if decode.is_empty() {
            findings.push(Finding::new(
                codec_path,
                0,
                WIRE_DRIFT,
                format!("could not find tag arms in `{decode_fn}`"),
            ));
        }
        if doc.is_empty() {
            findings.push(Finding::new(
                formats_path,
                0,
                WIRE_DRIFT,
                format!("could not find the §{section} wire-tag table"),
            ));
        }
        if encode.is_empty() || decode.is_empty() || doc.is_empty() {
            continue;
        }

        for variant in &variants {
            if !encode.contains_key(variant) {
                findings.push(Finding::new(
                    codec_path,
                    0,
                    WIRE_DRIFT,
                    format!("`{enum_name}::{variant}` has no `{encode_fn}` tag arm"),
                ));
            }
            if !decode.contains_key(variant) {
                findings.push(Finding::new(
                    codec_path,
                    0,
                    WIRE_DRIFT,
                    format!("`{enum_name}::{variant}` has no `{decode_fn}` tag arm"),
                ));
            }
        }
        for (variant, &(tag, line)) in &encode {
            if !variants.contains(variant) {
                findings.push(Finding::new(
                    codec_path,
                    line,
                    WIRE_DRIFT,
                    format!("`{encode_fn}` encodes unknown variant `{enum_name}::{variant}`"),
                ));
            }
            match decode.get(variant) {
                Some(&(decode_tag, decode_line)) if decode_tag != tag => {
                    findings.push(Finding::new(
                        codec_path,
                        decode_line,
                        WIRE_DRIFT,
                        format!(
                            "`{enum_name}::{variant}` encodes as tag {tag} but decodes \
                             from tag {decode_tag}"
                        ),
                    ));
                }
                _ => {}
            }
            match doc.get(variant) {
                None => findings.push(Finding::new(
                    formats_path,
                    0,
                    WIRE_DRIFT,
                    format!(
                        "`{enum_name}::{variant}` (tag {tag:#04x}) is missing from the \
                         §{section} table"
                    ),
                )),
                Some(&(doc_tag, doc_line)) if doc_tag != tag => {
                    findings.push(Finding::new(
                        formats_path,
                        doc_line,
                        WIRE_DRIFT,
                        format!(
                            "§{section} documents `{variant}` as tag {doc_tag:#04x} but the \
                             codec uses {tag:#04x}"
                        ),
                    ));
                }
                _ => {}
            }
        }
        for (variant, &(_, line)) in &doc {
            if !encode.contains_key(variant) {
                findings.push(Finding::new(
                    formats_path,
                    line,
                    WIRE_DRIFT,
                    format!(
                        "§{section} documents `{variant}`, which `{encode_fn}` does not \
                         encode"
                    ),
                ));
            }
        }
    }
    findings
}

/// Variant names of `enum name { … }`.
fn enum_variants(tokens: &[Token], name: &str) -> Vec<String> {
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].is_ident("enum") && tokens[i + 1].is_ident(name) {
            // Find the body brace (skipping generics, which this codebase
            // does not use on these enums).
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('{') {
                j += 1;
            }
            return variants_in_body(tokens, j);
        }
        i += 1;
    }
    Vec::new()
}

/// Variant identifiers at depth 1 of an enum body starting at its `{`.
fn variants_in_body(tokens: &[Token], open: usize) -> Vec<String> {
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut expect_variant = false;
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct('{') => {
                depth += 1;
                if depth == 1 {
                    expect_variant = true;
                }
            }
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Punct(',') if depth == 1 => expect_variant = true,
            // Skip `#[…]` attributes between variants.
            TokenKind::Punct('#')
                if depth == 1 && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) =>
            {
                let mut attr_depth = 0i32;
                while i < tokens.len() {
                    match tokens[i].kind {
                        TokenKind::Punct('[') => attr_depth += 1,
                        TokenKind::Punct(']') => {
                            attr_depth -= 1;
                            if attr_depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            TokenKind::Ident if depth == 1 && expect_variant => {
                variants.push(tokens[i].text.clone());
                expect_variant = false;
            }
            _ => {}
        }
        i += 1;
    }
    variants
}

/// `(variant -> (tag, line))` from an encode fn: each `Enum :: Variant`
/// mention arms the matcher; the next `u8 ( <int> )` call binds the tag.
fn encode_arms(tokens: &[Token], fn_name: &str, enum_name: &str) -> BTreeMap<String, (u64, u32)> {
    let mut arms = BTreeMap::new();
    let Some((start, end)) = fn_body(tokens, fn_name) else {
        return arms;
    };
    let mut pending: Option<String> = None;
    let mut i = start;
    while i < end {
        if tokens[i].is_ident(enum_name)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens
                .get(i + 3)
                .is_some_and(|t| t.kind == TokenKind::Ident)
        {
            pending = Some(tokens[i + 3].text.clone());
            i += 4;
            continue;
        }
        if tokens[i].is_ident("u8") && tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(value) = tokens.get(i + 2).and_then(|t| t.int_value()) {
                if let Some(variant) = pending.take() {
                    arms.entry(variant).or_insert((value, tokens[i].line));
                }
            }
        }
        i += 1;
    }
    arms
}

/// `(variant -> (tag, line))` from a decode fn: `<int> =>` arms the
/// matcher; the next `Enum :: Variant` mention binds it.
fn decode_arms(tokens: &[Token], fn_name: &str, enum_name: &str) -> BTreeMap<String, (u64, u32)> {
    let mut arms = BTreeMap::new();
    let Some((start, end)) = fn_body(tokens, fn_name) else {
        return arms;
    };
    let mut pending: Option<u64> = None;
    let mut i = start;
    while i < end {
        if let Some(value) = tokens[i].int_value() {
            if tokens.get(i + 1).is_some_and(|t| t.is_punct('='))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct('>'))
            {
                pending = Some(value);
                i += 3;
                continue;
            }
        }
        if tokens[i].is_ident(enum_name)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens
                .get(i + 3)
                .is_some_and(|t| t.kind == TokenKind::Ident)
        {
            if let Some(tag) = pending.take() {
                arms.entry(tokens[i + 3].text.clone())
                    .or_insert((tag, tokens[i].line));
            }
            i += 4;
            continue;
        }
        i += 1;
    }
    arms
}

/// Token span of `fn name`'s body.
fn fn_body(tokens: &[Token], name: &str) -> Option<(usize, usize)> {
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].is_ident("fn") && tokens[i + 1].is_ident(name) {
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0i32;
            for (k, token) in tokens.iter().enumerate().skip(j) {
                match token.kind {
                    TokenKind::Punct('{') => depth += 1,
                    TokenKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            return Some((j, k));
                        }
                    }
                    _ => {}
                }
            }
            return None;
        }
        i += 1;
    }
    None
}

/// `(variant -> (tag, line))` from a FORMATS.md `### <section>` table whose
/// rows look like `` | `01` | CreateSession | … | ``.
fn doc_tag_table(formats_md: &str, section: &str) -> BTreeMap<String, (u64, u32)> {
    let mut table = BTreeMap::new();
    let heading = format!("### {section}");
    let mut in_section = false;
    for (index, line) in formats_md.lines().enumerate() {
        let line_no = index as u32 + 1;
        if line.starts_with("### ") {
            in_section = line.starts_with(&heading);
            continue;
        }
        if !in_section || !line.trim_start().starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim().trim_matches('|').split('|').collect();
        if cells.len() < 2 {
            continue;
        }
        let tag_cell = cells[0].trim();
        let name_cell = cells[1].trim();
        let Some(tag_hex) = tag_cell.strip_prefix('`').and_then(|t| t.strip_suffix('`')) else {
            continue;
        };
        let Ok(tag) = u64::from_str_radix(tag_hex, 16) else {
            continue;
        };
        let name: String = name_cell
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            table.entry(name).or_insert((tag, line_no));
        }
    }
    table
}

/// One key the metrics builder emits: either a literal name or a
/// `format!`-derived pattern with `*` wildcards.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EmittedKey {
    /// Normalized key: `{…}` interpolations replaced by `*`.
    pub pattern: String,
    /// 1-based line in the stats source.
    pub line: u32,
}

/// Cross-checks `StatsSnapshot::metrics()` keys against the §2.4 table.
pub fn check_metrics_drift(
    stats_src: &str,
    formats_md: &str,
    stats_path: &str,
    formats_path: &str,
) -> Vec<Finding> {
    let emitted = emitted_keys(stats_src);
    let documented = doc_metric_keys(formats_md);
    let mut findings = Vec::new();
    if emitted.is_empty() {
        findings.push(Finding::new(
            stats_path,
            0,
            METRICS_DRIFT,
            "could not find registry calls in `fn metrics`",
        ));
    }
    if documented.is_empty() {
        findings.push(Finding::new(
            formats_path,
            0,
            METRICS_DRIFT,
            "could not find the §2.4 metrics key table",
        ));
    }
    if emitted.is_empty() || documented.is_empty() {
        return findings;
    }
    for key in &emitted {
        let covered = documented.iter().any(|(doc, _)| {
            doc == &key.pattern || (!has_wildcard(&key.pattern) && glob_match(doc, &key.pattern))
        });
        if !covered {
            findings.push(Finding::new(
                stats_path,
                key.line,
                METRICS_DRIFT,
                format!(
                    "metric `{}` is emitted by StatsSnapshot::metrics() but not \
                     documented in FORMATS.md §2.4",
                    key.pattern
                ),
            ));
        }
    }
    for (doc, line) in &documented {
        let covered = emitted.iter().any(|key| {
            doc == &key.pattern || (!has_wildcard(&key.pattern) && glob_match(doc, &key.pattern))
        });
        if !covered {
            findings.push(Finding::new(
                formats_path,
                *line,
                METRICS_DRIFT,
                format!("FORMATS.md §2.4 documents `{doc}`, which metrics() never emits"),
            ));
        }
    }
    findings
}

/// Keys emitted inside `fn metrics`: literal and `format!` first arguments
/// of `registry.counter/gauge/latency(...)`. `latency("x")` expands to its
/// four histogram keys, matching `MetricsRegistry::latency`.
fn emitted_keys(stats_src: &str) -> Vec<EmittedKey> {
    let tokens = lex(stats_src).tokens;
    let mut keys = Vec::new();
    let Some((start, end)) = fn_body(&tokens, "metrics") else {
        return keys;
    };
    let mut i = start;
    while i < end {
        let token = &tokens[i];
        let is_emit =
            token.is_ident("counter") || token.is_ident("gauge") || token.is_ident("latency");
        if !is_emit
            || i == 0
            || !tokens[i - 1].is_punct('.')
            || !tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            i += 1;
            continue;
        }
        // First argument: a string literal or `format!("…", …)`.
        let key = match &tokens[i + 2] {
            t if t.kind == TokenKind::Str => Some(t.text.clone()),
            t if t.is_ident("format")
                && tokens.get(i + 3).is_some_and(|t| t.is_punct('!'))
                && tokens.get(i + 4).is_some_and(|t| t.is_punct('(')) =>
            {
                tokens
                    .get(i + 5)
                    .filter(|t| t.kind == TokenKind::Str)
                    .map(|t| t.text.clone())
            }
            _ => None,
        };
        if let Some(raw) = key {
            let pattern = normalize_braces(&raw);
            if token.is_ident("latency") {
                for quantile in ["mean", "p50", "p95", "p99"] {
                    keys.push(EmittedKey {
                        pattern: format!("{quantile}_{pattern}_seconds"),
                        line: token.line,
                    });
                }
            } else {
                keys.push(EmittedKey {
                    pattern,
                    line: token.line,
                });
            }
        }
        i += 1;
    }
    keys
}

/// Documented keys from the §2.4 table: every backticked name in the first
/// column, `<…>` placeholders normalized to `*`.
fn doc_metric_keys(formats_md: &str) -> Vec<(String, u32)> {
    let mut keys = Vec::new();
    let mut in_section = false;
    for (index, line) in formats_md.lines().enumerate() {
        let line_no = index as u32 + 1;
        if line.starts_with("### ") {
            in_section = line.starts_with("### 2.4");
            continue;
        }
        if !in_section || !line.trim_start().starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim().trim_matches('|').split('|').collect();
        if cells.is_empty() {
            continue;
        }
        let col = cells[0];
        if col.trim() == "key" || col.trim().chars().all(|c| c == '-' || c.is_whitespace()) {
            continue;
        }
        // Backticked names; a cell may document several (`a` / `b`).
        let mut rest = col;
        while let Some(open) = rest.find('`') {
            let after = &rest[open + 1..];
            let Some(close) = after.find('`') else {
                break;
            };
            let name = &after[..close];
            if !name.is_empty() {
                keys.push((normalize_angles(name), line_no));
            }
            rest = &after[close + 1..];
        }
    }
    keys
}

/// `shard{index}_jobs` → `shard*_jobs`.
fn normalize_braces(raw: &str) -> String {
    normalize_placeholder(raw, '{', '}')
}

/// `shard<i>_jobs` → `shard*_jobs`.
fn normalize_angles(raw: &str) -> String {
    normalize_placeholder(raw, '<', '>')
}

fn normalize_placeholder(raw: &str, open: char, close: char) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for c in raw.chars() {
        if c == open {
            if depth == 0 {
                out.push('*');
            }
            depth += 1;
        } else if c == close && depth > 0 {
            depth -= 1;
        } else if depth == 0 {
            out.push(c);
        }
    }
    out
}

fn has_wildcard(pattern: &str) -> bool {
    pattern.contains('*')
}

/// Classic glob match where `*` matches any (possibly empty) substring.
fn glob_match(pattern: &str, s: &str) -> bool {
    fn rec(p: &[char], s: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('*') => (0..=s.len()).any(|skip| rec(&p[1..], &s[skip..])),
            Some(&c) => s.first() == Some(&c) && rec(&p[1..], &s[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let sc: Vec<char> = s.chars().collect();
    rec(&p, &sc)
}

#[cfg(test)]
mod tests {
    use super::*;

    const API: &str = "
pub enum EngineRequest {
    CreateSession(Box<CreateSession>),
    Flush,
    QueryStats,
}
pub enum EngineResponse {
    SessionCreated(ConfigurationView),
    Flushed,
    Stats(Box<StatsSnapshot>),
}
";

    const CODEC: &str = r#"
pub fn encode_request(request: &EngineRequest) -> Vec<u8> {
    let mut w = Writer::new();
    match request {
        EngineRequest::CreateSession(spec) => {
            w.u8(1);
            write_create(&mut w, spec);
        }
        EngineRequest::Flush => w.u8(6),
        EngineRequest::QueryStats => w.u8(7),
    }
    w.bytes
}
pub fn decode_request(bytes: &[u8]) -> Result<EngineRequest, CodecError> {
    let mut r = Reader::new(bytes);
    let request = match r.u8()? {
        1 => EngineRequest::CreateSession(Box::new(read_create(&mut r)?)),
        6 => EngineRequest::Flush,
        7 => EngineRequest::QueryStats,
        tag => return Err(CodecError::UnknownTag(tag)),
    };
    Ok(request)
}
pub fn encode_response(response: &Result<EngineResponse, EngineError>) -> Vec<u8> {
    let mut w = Writer::new();
    match response {
        Err(error) => {
            w.u8(0);
            write_error(&mut w, error);
        }
        Ok(EngineResponse::SessionCreated(view)) => {
            w.u8(1);
            write_view(&mut w, view);
        }
        Ok(EngineResponse::Flushed) => w.u8(6),
        Ok(EngineResponse::Stats(stats)) => {
            w.u8(7);
            write_stats(&mut w, stats);
        }
    }
    w.bytes
}
pub fn decode_response(bytes: &[u8]) -> Result<Result<EngineResponse, EngineError>, CodecError> {
    let mut r = Reader::new(bytes);
    let response = match r.u8()? {
        0 => Err(read_error(&mut r)?),
        1 => Ok(EngineResponse::SessionCreated(read_view(&mut r)?)),
        6 => Ok(EngineResponse::Flushed),
        7 => {
            let stats = read_stats(&mut r)?;
            Ok(EngineResponse::Stats(Box::new(stats)))
        }
        tag => return Err(CodecError::UnknownTag(tag)),
    };
    Ok(response)
}
"#;

    const FORMATS: &str = "
### 3.3 Request payloads

| tag | request | fields after the tag |
|---|---|---|
| `01` | CreateSession | instance |
| `06` | Flush | — |
| `07` | QueryStats | — |

### 3.4 Response payloads

| tag | response | fields after the tag |
|---|---|---|
| `01` | SessionCreated | configuration view |
| `06` | Flushed | — |
| `07` | Stats | stats snapshot |

### 3.5 Instance
";

    fn wire(api: &str, codec: &str, formats: &str) -> Vec<Finding> {
        check_wire_drift(api, codec, formats, "api.rs", "codec.rs", "FORMATS.md")
    }

    #[test]
    fn aligned_wire_definitions_are_clean() {
        let findings = wire(API, CODEC, FORMATS);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn a_missing_doc_row_is_flagged() {
        let formats = FORMATS.replace("| `07` | QueryStats | — |\n", "");
        let findings = wire(API, CODEC, &formats);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("QueryStats"));
    }

    #[test]
    fn a_wrong_doc_tag_is_flagged() {
        let formats = FORMATS.replace("| `06` | Flushed |", "| `09` | Flushed |");
        let findings = wire(API, CODEC, &formats);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("Flushed"), "{findings:#?}");
    }

    #[test]
    fn an_unencoded_variant_is_flagged() {
        let api = API.replace("    QueryStats,\n", "    QueryStats,\n    Reload,\n");
        let findings = wire(&api, CODEC, FORMATS);
        assert_eq!(findings.len(), 2, "{findings:#?}"); // no encode + no decode arm
        assert!(findings.iter().all(|f| f.message.contains("Reload")));
    }

    #[test]
    fn an_encode_decode_tag_mismatch_is_flagged() {
        let codec = CODEC.replace(
            "        6 => EngineRequest::Flush,",
            "        8 => EngineRequest::Flush,",
        );
        let findings = wire(API, &codec, FORMATS);
        assert!(
            findings.iter().any(|f| f
                .message
                .contains("encodes as tag 6 but decodes from tag 8")),
            "{findings:#?}"
        );
    }

    const STATS: &str = r#"
impl StatsSnapshot {
    pub fn metrics(&self) -> Vec<(String, f64)> {
        let mut registry = MetricsRegistry::new();
        registry.counter("requests", self.requests);
        registry.gauge("cache_hit_rate", self.cache_hit_rate());
        registry.latency("lp", &self.lp_latency);
        for (class, burn) in self.slo_burns() {
            registry.gauge(format!("slo_{class}_burn"), burn);
        }
        for (index, shard) in self.shards.iter().enumerate() {
            registry.counter(format!("shard{index}_jobs"), shard.jobs);
        }
        registry.finish()
    }
}
"#;

    const STATS_DOC: &str = "
### 2.4 `engine`

| key | unit | meaning |
|---|---|---|
| `requests` | count | requests handled |
| `cache_hit_rate` | [0, 1] | hit rate |
| `mean_<op>_seconds` | seconds | per-op mean; `<op>` ranges over `lp` |
| `p50_<op>_seconds` / `p95_<op>_seconds` / `p99_<op>_seconds` | seconds | quantiles |
| `slo_<class>_burn` | ratio | burn per class |
| `shard<i>_jobs` | count | per-shard jobs |

### 2.5 next
";

    #[test]
    fn aligned_metrics_are_clean() {
        let findings = check_metrics_drift(STATS, STATS_DOC, "stats.rs", "FORMATS.md");
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn an_undocumented_metric_is_flagged() {
        let stats = STATS.replace(
            "registry.finish()",
            "registry.counter(\"surprise\", 1);\n        registry.finish()",
        );
        let findings = check_metrics_drift(&stats, STATS_DOC, "stats.rs", "FORMATS.md");
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("surprise"));
    }

    #[test]
    fn a_stale_doc_key_is_flagged() {
        let doc = STATS_DOC.replace(
            "| `cache_hit_rate` | [0, 1] | hit rate |",
            "| `cache_hit_rate` | [0, 1] | hit rate |\n| `ghost_metric` | count | gone |",
        );
        let findings = check_metrics_drift(STATS, &doc, "stats.rs", "FORMATS.md");
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("ghost_metric"));
    }
}
