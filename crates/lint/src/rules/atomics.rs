//! Atomics rule: every relaxed *write* must say why relaxed is sound.
//!
//! PR 7's precedent: shard jobs published multi-field gauge state with
//! `Ordering::Relaxed` stores and a reader snapshotted the fields torn.
//! Relaxed is the right default for independent monotonic counters — but
//! that soundness argument lives in someone's head unless it is written
//! down. This rule inventories every mutating atomic call whose arguments
//! name `Relaxed` and requires an `// lint: allow(relaxed-store, <why>)`
//! annotation at the site. Loads are exempt: a relaxed load of a single
//! counter cannot tear, and the store side is where publication order is
//! decided.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Rule id.
pub const RELAXED_STORE: &str = "relaxed-store";

/// Mutating atomic methods that take an ordering.
const STORE_METHODS: [&str; 12] = [
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Flags mutating atomic calls whose argument list mentions `Relaxed`.
pub fn check_relaxed_store(file: &SourceFile) -> Vec<(u32, String)> {
    let tokens = &file.tokens;
    let mut candidates = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident
            || !STORE_METHODS.contains(&token.text.as_str())
            || file.in_test(i)
        {
            continue;
        }
        if i == 0 || !tokens[i - 1].is_punct('.') {
            continue;
        }
        let Some(open) = tokens.get(i + 1).filter(|t| t.is_punct('(')).map(|_| i + 1) else {
            continue;
        };
        // Scan the argument list for `Relaxed`.
        let mut depth = 0i32;
        let mut relaxed = false;
        for arg in &tokens[open..] {
            match arg.kind {
                TokenKind::Punct('(') => depth += 1,
                TokenKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident if arg.text == "Relaxed" => relaxed = true,
                _ => {}
            }
        }
        if relaxed {
            candidates.push((
                token.line,
                format!(
                    "relaxed atomic write `.{}(…, Ordering::Relaxed)`; annotate why \
                     relaxed ordering cannot tear observable state (see PR 7's \
                     gauge-store race) or upgrade to Release/Acquire",
                    token.text
                ),
            ));
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("x.rs", src)
    }

    #[test]
    fn relaxed_writes_are_flagged() {
        let src = "
fn f(c: &AtomicU64) {
    c.store(0, Ordering::Relaxed);
    c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let _ = c.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v + 1));
}
";
        let hits = check_relaxed_store(&file(src));
        assert_eq!(hits.len(), 3, "{hits:?}");
    }

    #[test]
    fn loads_and_stronger_orderings_are_clean() {
        let src = "
fn f(c: &AtomicU64) -> u64 {
    c.store(1, Ordering::Release);
    c.fetch_add(1, Ordering::SeqCst);
    c.load(Ordering::Relaxed)
}
fn g(a: &mut u64, b: &mut u64) {
    std::mem::swap(a, b);
}
";
        let hits = check_relaxed_store(&file(src));
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[test]\nfn t(c: &AtomicU64) { c.store(0, Ordering::Relaxed); }";
        assert!(check_relaxed_store(&file(src)).is_empty());
    }
}
