//! Robustness rules for the serving path.
//!
//! * **`no-panic`** — `unwrap()` / `expect()` / `panic!` / `unreachable!` /
//!   `todo!` in connection handling and request decoding. A hostile or
//!   merely broken peer must cost one connection, never a server thread.
//! * **`prealloc`** — length-prefixed reads that allocate from a
//!   wire-supplied size before validating it. PR 5 fixed exactly this class
//!   of bug (a corrupted length prefix ballooning memory); the rule keeps
//!   the validate-before-allocate discipline from regressing.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Rule id for panicking constructs.
pub const NO_PANIC: &str = "no-panic";

/// Rule id for unvalidated pre-allocation.
pub const PREALLOC: &str = "prealloc";

/// Panicking method calls (`.name(`).
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Panicking macros (`name!`).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Flags panicking constructs outside test code.
pub fn check_no_panic(file: &SourceFile) -> Vec<(u32, String)> {
    let tokens = &file.tokens;
    let mut candidates = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident || file.in_test(i) {
            continue;
        }
        let name = token.text.as_str();
        if PANIC_METHODS.contains(&name)
            && i >= 1
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            candidates.push((
                token.line,
                format!(
                    "`.{name}()` in a connection/request path can kill the serving \
                     thread; propagate an error and drop the connection instead"
                ),
            ));
        }
        if PANIC_MACROS.contains(&name) && tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            candidates.push((
                token.line,
                format!(
                    "`{name}!` in a connection/request path can kill the serving \
                     thread; propagate an error and drop the connection instead"
                ),
            ));
        }
    }
    candidates
}

/// Size-taking allocation constructs: `vec![…; n]`, `with_capacity(n)`,
/// and `Vec::from` does not allocate from a length so it is not listed.
///
/// Flags allocations whose size expression contains an identifier that is
/// not visibly validated earlier in the same function. "Visibly validated"
/// is a line-level heuristic: an earlier line in the function mentions the
/// identifier together with a `<`/`>` comparison, a `min`/`saturating_mul`
/// cap, or a `len(…)` helper call (the codec's `Reader::len` validates
/// counts against the remaining payload before returning them).
pub fn check_prealloc(file: &SourceFile) -> Vec<(u32, String)> {
    let tokens = &file.tokens;
    let mut candidates = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if file.in_test(i) {
            continue;
        }
        // `vec ! [ elem ; size ]`
        if token.is_ident("vec") && tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            if let Some(open) = tokens.get(i + 2).filter(|t| t.is_punct('[')).map(|_| i + 2) {
                if let Some(semi) = find_at_depth(tokens, open + 1, ']', ';') {
                    let close = match_bracket(tokens, open);
                    if let Some(close) = close {
                        check_size_expr(
                            file,
                            &tokens[semi + 1..close],
                            i,
                            token.line,
                            &mut candidates,
                        );
                    }
                }
            }
        }
        // `with_capacity ( size )`
        if token.is_ident("with_capacity") && tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(close) = match_paren(tokens, i + 1) {
                check_size_expr(file, &tokens[i + 2..close], i, token.line, &mut candidates);
            }
        }
    }
    candidates
}

/// Reports the allocation if its size tokens contain an identifier with no
/// earlier validation line in the enclosing function.
fn check_size_expr(
    file: &SourceFile,
    size_tokens: &[crate::lexer::Token],
    site: usize,
    line: u32,
    candidates: &mut Vec<(u32, String)>,
) {
    // Constant sizes (`vec![0u8; 18]`, `with_capacity(4)`) are fine; only
    // identifier-bearing sizes can come from the wire. Cast keywords and
    // primitive type names are noise; uppercase-starting identifiers are
    // consts/types (`MAX_PAYLOAD`, `Vec`), which are not wire-controlled.
    let subject = size_tokens.iter().find_map(|t| {
        if t.kind != TokenKind::Ident {
            return None;
        }
        let name = t.text.as_str();
        if matches!(name, "as" | "usize" | "u64" | "u32" | "u16" | "u8") {
            return None;
        }
        if name
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_')
        {
            Some(name)
        } else {
            None
        }
    });
    let Some(subject) = subject else {
        return;
    };
    let Some((fn_start, _)) = file.enclosing_fn(site) else {
        return;
    };
    if validated_before(file, fn_start, site, subject) {
        return;
    }
    candidates.push((
        line,
        format!(
            "allocation sized by `{subject}` before any visible bound check; validate \
             length prefixes against the cap before allocating"
        ),
    ));
}

/// Whether `name` appears on an earlier line (within the same function)
/// that also carries a comparison or a validating helper.
fn validated_before(file: &SourceFile, fn_start: usize, site: usize, name: &str) -> bool {
    let tokens = &file.tokens;
    let site_line = tokens[site].line;
    let mut i = fn_start;
    while i < site {
        if tokens[i].is_ident(name) && tokens[i].line < site_line {
            let line = tokens[i].line;
            // Scan the whole line for a validation shape.
            let mut j = fn_start;
            while j < site {
                if tokens[j].line == line
                    && (tokens[j].is_punct('<')
                        || tokens[j].is_punct('>')
                        || tokens[j].is_ident("min")
                        || tokens[j].is_ident("len")
                        || tokens[j].is_ident("saturating_mul"))
                {
                    return true;
                }
                j += 1;
            }
        }
        i += 1;
    }
    false
}

/// Index of the first `needle` punct at bracket depth 0 scanning from
/// `start` until the matching `close` punct.
fn find_at_depth(
    tokens: &[crate::lexer::Token],
    start: usize,
    close: char,
    needle: char,
) -> Option<usize> {
    let mut depth = 0i32;
    for (i, token) in tokens.iter().enumerate().skip(start) {
        match token.kind {
            TokenKind::Punct(c) if c == needle && depth == 0 => return Some(i),
            TokenKind::Punct('[') | TokenKind::Punct('(') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(']') | TokenKind::Punct(')') | TokenKind::Punct('}') => {
                if depth == 0 && c_matches(close, token) {
                    return None;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    None
}

fn c_matches(close: char, token: &crate::lexer::Token) -> bool {
    token.is_punct(close)
}

/// Index of the `]` matching the `[` at `open`.
fn match_bracket(tokens: &[crate::lexer::Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, token) in tokens.iter().enumerate().skip(open) {
        match token.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open`.
fn match_paren(tokens: &[crate::lexer::Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, token) in tokens.iter().enumerate().skip(open) {
        match token.kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("x.rs", src)
    }

    #[test]
    fn panicking_constructs_are_flagged_outside_tests() {
        let src = "
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect(\"reason\");
    if a > b { panic!(\"boom\"); }
    unreachable!()
}
#[test]
fn t() { None::<u32>.unwrap(); }
";
        let hits = check_no_panic(&file(src));
        assert_eq!(hits.len(), 4, "{hits:?}");
    }

    #[test]
    fn unwrap_or_variants_are_clean() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }";
        assert!(check_no_panic(&file(src)).is_empty());
    }

    #[test]
    fn unvalidated_length_allocation_is_flagged() {
        let src = "
fn read(len: u32) -> Vec<u8> {
    let payload = vec![0u8; len as usize];
    payload
}
";
        let hits = check_prealloc(&file(src));
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn validated_length_allocation_is_clean() {
        let src = "
fn read(len: u32) -> Result<Vec<u8>, ()> {
    if len > MAX_PAYLOAD {
        return Err(());
    }
    Ok(vec![0u8; len as usize])
}
fn counted(r: &mut Reader) -> Result<Vec<u64>, ()> {
    let count = r.len(8)?;
    let mut out = Vec::with_capacity(count);
    Ok(out)
}
fn fixed() -> Vec<u8> {
    vec![0u8; 18]
}
";
        let hits = check_prealloc(&file(src));
        assert!(hits.is_empty(), "{hits:?}");
    }
}
