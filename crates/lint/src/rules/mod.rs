//! The rule catalog. Each rule is a token-level check grounded in a past
//! or latent defect in this repository; `docs/LINTS.md` documents the
//! catalog, the suppression syntax and how to add a rule.

pub mod atomics;
pub mod determinism;
pub mod drift;
pub mod robustness;

/// Every per-line rule id, for `--rule` validation and the docs.
pub const ALL_RULES: [&str; 7] = [
    determinism::HASH_ITER,
    determinism::WALL_CLOCK,
    robustness::NO_PANIC,
    robustness::PREALLOC,
    atomics::RELAXED_STORE,
    drift::WIRE_DRIFT,
    drift::METRICS_DRIFT,
];
