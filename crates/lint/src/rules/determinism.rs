//! Determinism rules.
//!
//! The engine's contract is byte-identical configuration digests for the
//! same trace, in-process or across server processes. Two source-level
//! hazards can silently break that:
//!
//! * **`hash-iter`** — iterating a `std` `HashMap`/`HashSet` observes
//!   `RandomState` order, which differs per process. In digest-affecting
//!   crates any order-observing method on a hash container must be either
//!   order-independent (and annotated) or replaced with a `BTreeMap` /
//!   sorted collection.
//! * **`wall-clock`** — `Instant::now()` / `SystemTime` reads outside
//!   `crates/obs` (whose tracer owns the clock). Timing is fine for
//!   observability, but every site must say so, so a timestamp can never
//!   quietly leak into solve results.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Rule id for hash-container iteration.
pub const HASH_ITER: &str = "hash-iter";

/// Rule id for wall-clock reads.
pub const WALL_CLOCK: &str = "wall-clock";

/// Order-observing methods on hash containers.
const ORDER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "min_by_key",
    "max_by_key",
];

/// Flags order-observing method calls on identifiers bound to `HashMap` /
/// `HashSet` in this file. Returns `(line, message)` candidates.
pub fn check_hash_iter(file: &SourceFile) -> Vec<(u32, String)> {
    let tokens = &file.tokens;
    // Pass 1: which identifiers name a hash container? Bindings and fields
    // declare it (`x: HashMap<…>`, `let x = HashMap::new()`); this is a
    // per-file, flow-insensitive approximation, which is exactly as precise
    // as a token-level pass can be — and enough for this codebase, where
    // hash containers are rare by policy.
    let mut containers: Vec<String> = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if !(token.is_ident("HashMap") || token.is_ident("HashSet")) {
            continue;
        }
        // `name : HashMap`, `name : std :: collections :: HashMap`, with
        // any `&` / `mut` reference sigils in between.
        let mut j = i;
        while j >= 2 && tokens[j - 1].is_punct(':') && tokens[j - 2].is_punct(':') {
            // Skip path segments (`collections ::`, `std ::`).
            if j >= 3 && tokens[j - 3].kind == TokenKind::Ident {
                j -= 3;
            } else {
                break;
            }
        }
        while j >= 1 && (tokens[j - 1].is_punct('&') || tokens[j - 1].is_ident("mut")) {
            j -= 1;
        }
        let binder = if j >= 2
            && tokens[j - 1].is_punct(':')
            && tokens[j - 2].kind == TokenKind::Ident
        {
            Some(tokens[j - 2].text.clone())
        } else if j >= 2 && tokens[j - 1].is_punct('=') && tokens[j - 2].kind == TokenKind::Ident {
            // `let x = HashMap::new()` / `x = HashMap::from(...)`.
            Some(tokens[j - 2].text.clone())
        } else {
            None
        };
        if let Some(name) = binder {
            if !containers.contains(&name) {
                containers.push(name);
            }
        }
    }
    // Pass 2: flag `container . order_method (`.
    let mut candidates = Vec::new();
    for i in 2..tokens.len() {
        let token = &tokens[i];
        if token.kind != TokenKind::Ident || !ORDER_METHODS.contains(&token.text.as_str()) {
            continue;
        }
        if !tokens[i - 1].is_punct('.') || !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let receiver = &tokens[i - 2];
        if receiver.kind != TokenKind::Ident || !containers.contains(&receiver.text) {
            continue;
        }
        if file.in_test(i) {
            continue;
        }
        candidates.push((
            token.line,
            format!(
                "`{}.{}()` iterates a hash container in RandomState order; use a \
                 BTreeMap/sorted collection or annotate why the use is order-independent",
                receiver.text, token.text
            ),
        ));
    }
    candidates
}

/// Flags `Instant::now()` and any `SystemTime` use.
pub fn check_wall_clock(file: &SourceFile) -> Vec<(u32, String)> {
    let tokens = &file.tokens;
    let mut candidates = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if file.in_test(i) {
            continue;
        }
        if token.is_ident("Instant")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            candidates.push((
                token.line,
                "`Instant::now()` outside crates/obs; wall-clock reads must be \
                 observability-only and say so"
                    .to_string(),
            ));
        }
        if token.is_ident("SystemTime") {
            candidates.push((
                token.line,
                "`SystemTime` outside crates/obs; wall-clock reads must be \
                 observability-only and say so"
                    .to_string(),
            ));
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("x.rs", src)
    }

    #[test]
    fn flags_iteration_over_declared_hash_containers() {
        let src = "
struct S { entries: HashMap<u64, u64> }
fn f(s: &S) -> Option<u64> {
    s.entries.iter().min_by_key(|(_, v)| **v).map(|(k, _)| *k)
}
fn g() {
    let mut seen = HashSet::new();
    seen.drain();
}
";
        let hits = check_hash_iter(&file(src));
        // `.iter()` and `.drain()`; the chained `.min_by_key` sits on the
        // iterator, not the container, so the `.iter()` hit covers it.
        assert_eq!(hits.len(), 2, "{hits:?}");
    }

    #[test]
    fn order_free_methods_and_other_types_are_clean() {
        let src = "
struct S { entries: HashMap<u64, u64>, list: Vec<u64> }
fn f(s: &mut S) {
    s.entries.get(&1);
    s.entries.insert(1, 2);
    s.entries.contains_key(&1);
    s.list.iter().count();
}
";
        assert!(check_hash_iter(&file(src)).is_empty());
    }

    #[test]
    fn reference_parameters_are_recognized_as_containers() {
        let src = "
fn f(weights: &HashMap<u32, f64>, order: &mut HashSet<u32>) {
    weights.iter().count();
    order.drain();
}
";
        let hits = check_hash_iter(&file(src));
        assert_eq!(hits.len(), 2, "{hits:?}");
    }

    #[test]
    fn min_by_key_chained_off_iter_is_caught_via_iter() {
        // `.iter().min_by_key(...)`: min_by_key's receiver is the iterator,
        // not the container, so the finding comes from the `.iter()` call.
        let src = "
fn f(entries: HashMap<u64, u64>) {
    entries.iter().min_by_key(|(_, t)| *t);
}
";
        let hits = check_hash_iter(&file(src));
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn wall_clock_reads_are_flagged_outside_tests() {
        let src = "
fn f() { let t = Instant::now(); }
fn g() { let s = SystemTime::now(); }
#[test]
fn timed() { let t = Instant::now(); }
";
        let hits = check_wall_clock(&file(src));
        assert_eq!(hits.len(), 2, "{hits:?}");
    }

    #[test]
    fn instant_elapsed_alone_is_clean() {
        let src = "fn f(t: Instant) -> u64 { t.elapsed().as_nanos() as u64 }";
        assert!(check_wall_clock(&file(src)).is_empty());
    }
}
