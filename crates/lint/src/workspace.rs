//! Workspace walking, rule scoping and the analysis driver.
//!
//! Scopes encode *this repository's* invariants: which crates feed the
//! configuration digest, which files are connection paths, which crate owns
//! the wall clock. New rules or scope changes belong here and in
//! `docs/LINTS.md`.

use std::fs;
use std::path::{Path, PathBuf};

use crate::findings::{Finding, Report};
use crate::rules::{atomics, determinism, drift, robustness};
use crate::source::SourceFile;

/// Crates whose behavior feeds the configuration digest: hash-order
/// nondeterminism in any of them can break the in-process / 1-server /
/// N-process digest equality the engine guarantees.
pub const DIGEST_CRATES: [&str; 6] = ["core", "algorithms", "lp", "engine", "cluster", "net"];

/// The crate that owns wall-clock access (its tracer/clock is the sanctioned
/// way to time things).
pub const CLOCK_CRATE: &str = "obs";

/// Files whose non-test code must not panic: every connection/IO path in
/// `crates/net`, plus the engine's request dispatch and payload codec.
const NO_PANIC_PATHS: [&str; 2] = ["crates/engine/src/engine.rs", "crates/engine/src/codec.rs"];

/// Directories never scanned.
const EXCLUDED_DIRS: [&str; 4] = ["vendor", "target", ".git", "fixtures"];

/// Where a source file lives, which decides which rules run on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Crate `src/` (or root `src/`) code.
    Src,
    /// Integration tests (`tests/` directories).
    Test,
    /// Benchmarks (`benches/` directories).
    Bench,
    /// Examples.
    Example,
}

/// Scope facts derived from a path.
#[derive(Clone, Debug)]
pub struct FileScope {
    /// Crate name (`engine`, `net`, …; the root package is `svgic`).
    pub crate_name: String,
    /// Directory class.
    pub class: FileClass,
}

/// Derives crate name and class from a workspace-relative path.
pub fn classify(path: &str) -> FileScope {
    let parts: Vec<&str> = path.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        "svgic".to_string()
    };
    let class = if parts.contains(&"tests") {
        FileClass::Test
    } else if parts.contains(&"benches") {
        FileClass::Bench
    } else if parts.contains(&"examples") {
        FileClass::Example
    } else {
        FileClass::Src
    };
    FileScope { crate_name, class }
}

/// Which per-file rules apply to a file.
fn applicable_rules(scope: &FileScope, path: &str) -> Vec<&'static str> {
    let mut rules = Vec::new();
    // Digest determinism: only library code in digest-affecting crates —
    // tests and benches cannot leak hash order into served configurations.
    if scope.class == FileClass::Src && DIGEST_CRATES.contains(&scope.crate_name.as_str()) {
        rules.push(determinism::HASH_ITER);
    }
    // Wall clocks: everywhere except the crate that owns the clock. Tests
    // may time themselves; everything that ships must annotate.
    if scope.crate_name != CLOCK_CRATE && scope.class != FileClass::Test {
        rules.push(determinism::WALL_CLOCK);
    }
    // Panic freedom + validate-before-allocate: connection paths and the
    // payload codec.
    let in_net_src = path.starts_with("crates/net/src/");
    if scope.class == FileClass::Src && (in_net_src || NO_PANIC_PATHS.contains(&path)) {
        rules.push(robustness::NO_PANIC);
        rules.push(robustness::PREALLOC);
    }
    // Relaxed atomic writes: all shipped code.
    if scope.class == FileClass::Src {
        rules.push(atomics::RELAXED_STORE);
    }
    rules
}

/// Runs one rule over a parsed file, returning raw `(line, message)` pairs.
fn run_rule(rule: &str, file: &SourceFile) -> Vec<(u32, String)> {
    match rule {
        r if r == determinism::HASH_ITER => determinism::check_hash_iter(file),
        r if r == determinism::WALL_CLOCK => determinism::check_wall_clock(file),
        r if r == robustness::NO_PANIC => robustness::check_no_panic(file),
        r if r == robustness::PREALLOC => robustness::check_prealloc(file),
        r if r == atomics::RELAXED_STORE => atomics::check_relaxed_store(file),
        _ => Vec::new(),
    }
}

/// Analyzes one already-loaded source file: applicable rules, suppression
/// matching, allow hygiene. Used by both the workspace driver and the
/// fixture tests.
pub fn analyze_file(path: &str, content: &str, report: &mut Report) {
    let scope = classify(path);
    let file = SourceFile::parse(path, content);
    for rule in applicable_rules(&scope, path) {
        for (line, message) in run_rule(rule, &file) {
            if file.suppressed(rule, line) {
                report.suppressions_used += 1;
            } else {
                report
                    .findings
                    .push(Finding::new(path, line, rule, message));
            }
        }
    }
    // Allow hygiene: malformed directives and stale (unused) ones are
    // findings themselves — a suppression that no longer suppresses
    // anything is doc rot of the most misleading kind.
    for bad in &file.bad_allows {
        report
            .findings
            .push(Finding::new(path, bad.line, "allow-syntax", &bad.problem));
    }
    for allow in &file.allows {
        if allow.reason.is_some() && !allow.used.get() {
            report.findings.push(Finding::new(
                path,
                allow.line,
                "unused-allow",
                format!(
                    "lint: allow({}) suppresses nothing here; remove it or fix the rule \
                     name",
                    allow.rule
                ),
            ));
        }
    }
    report.files_scanned += 1;
}

/// Runs the full analysis over the workspace at `root`.
pub fn run_workspace(root: &Path) -> Report {
    let mut report = Report::default();
    let mut files = Vec::new();
    collect_rust_files(root, &mut files);
    files.sort();
    for path in files {
        let rel = relative(&path, root);
        match fs::read_to_string(&path) {
            Ok(content) => analyze_file(&rel, &content, &mut report),
            Err(e) => report
                .findings
                .push(Finding::new(&rel, 0, "io", format!("unreadable: {e}"))),
        }
    }
    run_drift(root, &mut report);
    report.findings.sort();
    report
}

/// The repo-level drift checks (they read fixed files, not the walk).
fn run_drift(root: &Path, report: &mut Report) {
    let api_path = "crates/engine/src/api.rs";
    let codec_path = "crates/engine/src/codec.rs";
    let stats_path = "crates/engine/src/stats.rs";
    let formats_path = "docs/FORMATS.md";
    let read = |rel: &str| fs::read_to_string(root.join(rel));
    match (read(api_path), read(codec_path), read(formats_path)) {
        (Ok(api), Ok(codec), Ok(formats)) => {
            report.findings.extend(drift::check_wire_drift(
                &api,
                &codec,
                &formats,
                api_path,
                codec_path,
                formats_path,
            ));
            if let Ok(stats) = read(stats_path) {
                report.findings.extend(drift::check_metrics_drift(
                    &stats,
                    &formats,
                    stats_path,
                    formats_path,
                ));
            } else {
                report.findings.push(Finding::new(
                    stats_path,
                    0,
                    drift::METRICS_DRIFT,
                    "missing: cannot cross-check the metrics key table",
                ));
            }
        }
        _ => report.findings.push(Finding::new(
            formats_path,
            0,
            drift::WIRE_DRIFT,
            "missing api.rs/codec.rs/FORMATS.md: cannot cross-check wire tags",
        )),
    }
}

/// Recursively collects `.rs` files, skipping excluded directories.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if EXCLUDED_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative `/`-separated path.
fn relative(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_reads_crate_and_class() {
        let s = classify("crates/engine/src/cache.rs");
        assert_eq!(s.crate_name, "engine");
        assert_eq!(s.class, FileClass::Src);
        assert_eq!(
            classify("crates/bench/benches/x.rs").class,
            FileClass::Bench
        );
        assert_eq!(classify("tests/net_service.rs").class, FileClass::Test);
        assert_eq!(classify("tests/net_service.rs").crate_name, "svgic");
        assert_eq!(classify("src/lib.rs").crate_name, "svgic");
    }

    #[test]
    fn rule_scoping_follows_the_invariants() {
        let engine = classify("crates/engine/src/cache.rs");
        let rules = applicable_rules(&engine, "crates/engine/src/cache.rs");
        assert!(rules.contains(&determinism::HASH_ITER));
        assert!(!rules.contains(&robustness::NO_PANIC));

        let net = classify("crates/net/src/frame.rs");
        let rules = applicable_rules(&net, "crates/net/src/frame.rs");
        assert!(rules.contains(&robustness::NO_PANIC));
        assert!(rules.contains(&robustness::PREALLOC));

        let obs = classify("crates/obs/src/tracer.rs");
        let rules = applicable_rules(&obs, "crates/obs/src/tracer.rs");
        assert!(!rules.contains(&determinism::WALL_CLOCK));
        assert!(rules.contains(&atomics::RELAXED_STORE));

        let metrics = classify("crates/metrics/src/lib.rs");
        let rules = applicable_rules(&metrics, "crates/metrics/src/lib.rs");
        assert!(!rules.contains(&determinism::HASH_ITER));
        assert!(rules.contains(&determinism::WALL_CLOCK));
    }

    #[test]
    fn suppressed_findings_count_and_stale_allows_report() {
        let src = "\
fn f() {
    let t = Instant::now(); // lint: allow(wall-clock, throughput reporting only)
}
// lint: allow(no-panic, nothing here panics)
fn g() {}
";
        let mut report = Report::default();
        analyze_file("crates/workload/src/driver.rs", src, &mut report);
        assert_eq!(report.suppressions_used, 1);
        assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
        assert_eq!(report.findings[0].rule, "unused-allow");
    }
}
