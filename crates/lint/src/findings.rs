//! Findings: what a rule reports, plus plain-text and JSON rendering.

/// One unsuppressed rule violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line (0 when the finding is file- or repo-level).
    pub line: u32,
    /// Rule identifier (`hash-iter`, `wire-drift`, …).
    pub rule: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// A finding anchored to a specific line.
    pub fn new(file: &str, line: u32, rule: &str, message: impl Into<String>) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message: message.into(),
        }
    }

    /// `path:line: [rule] message` (line omitted when 0).
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!("{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            format!(
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// The whole run: findings plus bookkeeping for the summary line.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Files analyzed.
    pub files_scanned: usize,
    /// Allow directives that suppressed a finding.
    pub suppressions_used: usize,
}

impl Report {
    /// Serializes the report as a single JSON object. Hand-rolled — the
    /// crate is dependency-free by design — but escapes everything JSON
    /// requires.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, finding) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
                json_string(&finding.rule),
                json_string(&finding.file),
                finding.line,
                json_string(&finding.message),
            ));
        }
        out.push_str(&format!(
            "],\"files_scanned\":{},\"suppressions_used\":{}}}",
            self.files_scanned, self.suppressions_used
        ));
        out
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_control_characters() {
        let mut report = Report {
            files_scanned: 2,
            suppressions_used: 1,
            ..Report::default()
        };
        report.findings.push(Finding::new(
            "a.rs",
            3,
            "no-panic",
            "call to `unwrap()` with \"context\"\nand a newline",
        ));
        let json = report.to_json();
        assert!(json.contains(r#"\"context\""#), "{json}");
        assert!(json.contains(r#"\n"#), "{json}");
        assert!(json.contains("\"files_scanned\":2"), "{json}");
        assert!(json.contains("\"suppressions_used\":1"), "{json}");
    }

    #[test]
    fn render_includes_line_only_when_present() {
        let with_line = Finding::new("a.rs", 7, "no-panic", "x");
        let repo_level = Finding::new("docs/FORMATS.md", 0, "wire-drift", "y");
        assert_eq!(with_line.render(), "a.rs:7: [no-panic] x");
        assert_eq!(repo_level.render(), "docs/FORMATS.md: [wire-drift] y");
    }
}
