//! # svgic-lint — repo-aware static analysis for the SVGIC workspace
//!
//! A zero-dependency, token-level analyzer (hand-rolled lexer, no `syn`)
//! that machine-checks the invariants this repository otherwise enforces
//! only dynamically:
//!
//! * **determinism** ([`rules::determinism`]) — no hash-order iteration in
//!   digest-affecting crates, no wall-clock reads outside `crates/obs`
//!   without an annotation;
//! * **drift** ([`rules::drift`]) — `EngineRequest`/`EngineResponse`
//!   variants, the codec's tag arms and the `docs/FORMATS.md` wire-tag
//!   tables must agree, and the `StatsSnapshot::metrics()` key list must
//!   match the §2.4 documentation;
//! * **robustness** ([`rules::robustness`]) — no panicking constructs in
//!   connection/request paths, no allocation from unvalidated wire lengths;
//! * **atomics** ([`rules::atomics`]) — every relaxed atomic write carries
//!   an annotation saying why relaxed is sound.
//!
//! Findings are suppressed site-by-site with
//!
//! ```text
//! // lint: allow(<rule>, <reason>)
//! ```
//!
//! on the flagged line or up to [`source::ALLOW_WINDOW`] lines above it.
//! A suppression without a reason, and a suppression that suppresses
//! nothing, are themselves findings — the inventory cannot silently rot.
//!
//! Run as `cargo run -p svgic-lint -- --deny` (CI does); see
//! `docs/LINTS.md` for the rule catalog and how to add a rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod findings;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use findings::{Finding, Report};
pub use workspace::{analyze_file, run_workspace};
