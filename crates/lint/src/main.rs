//! CLI for the workspace analyzer.
//!
//! ```text
//! svgic-lint [--deny] [--json] [--root <path>] [--rule <name>]
//! ```
//!
//! * `--deny` — exit 1 when any unsuppressed finding remains (the CI mode).
//! * `--json` — machine-readable report on stdout.
//! * `--root` — workspace root; defaults to searching upward from the
//!   current directory for a `Cargo.toml` containing `[workspace]`.
//! * `--rule` — only report findings of one rule.

use std::path::PathBuf;
use std::process::ExitCode;

use svgic_lint::rules::ALL_RULES;
use svgic_lint::workspace::run_workspace;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut rule: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--rule" => rule = args.next(),
            "--help" | "-h" => {
                println!("usage: svgic-lint [--deny] [--json] [--root <path>] [--rule <name>]");
                println!("rules: {}", ALL_RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`; try --help");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(name) = &rule {
        let known =
            ALL_RULES.contains(&name.as_str()) || name == "allow-syntax" || name == "unused-allow";
        if !known {
            eprintln!("unknown rule `{name}`; rules: {}", ALL_RULES.join(", "));
            return ExitCode::FAILURE;
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(root) => root,
        None => {
            eprintln!(
                "could not find a workspace root (no Cargo.toml with [workspace]); use --root"
            );
            return ExitCode::FAILURE;
        }
    };

    let mut report = run_workspace(&root);
    if let Some(name) = &rule {
        report.findings.retain(|f| &f.rule == name);
    }

    if json {
        println!("{}", report.to_json());
    } else {
        for finding in &report.findings {
            println!("{}", finding.render());
        }
        println!(
            "svgic-lint: {} finding(s), {} suppression(s) honored, {} file(s) scanned",
            report.findings.len(),
            report.suppressions_used,
            report.files_scanned
        );
    }
    if deny && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks upward from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(contents) = std::fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
