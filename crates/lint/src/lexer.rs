//! A minimal Rust lexer: just enough tokens for pattern-level analysis.
//!
//! This is deliberately **not** a full Rust grammar. The rules in this crate
//! match token shapes (`ident . ident (`, `int => Path :: Variant`, …), so
//! the lexer only needs to classify identifiers, literals and punctuation
//! correctly, strip comments and strings without confusing the matcher, and
//! keep accurate line numbers. Comments are not discarded entirely: line
//! comments are surfaced to the caller so `// lint: allow(...)` directives
//! can be collected.

/// What a token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// An integer literal; the payload is the parsed value (`13`, `0x0d`,
    /// `1_000`). Floats and unparseable numerics carry `None`.
    Number(Option<u64>),
    /// A string literal (`"..."`, `r#"..."#`, `b"..."`); the token text is
    /// the *content* without quotes, so rules can read literal keys.
    Str,
    /// A character literal.
    Char,
    /// A lifetime (`'a`).
    Lifetime,
    /// A single punctuation character (`.`, `(`, `=`, `>`, `!`, …).
    /// Multi-character operators appear as consecutive tokens.
    Punct(char),
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Source text (content only, for strings).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// The integer value, if this is an integer literal.
    pub fn int_value(&self) -> Option<u64> {
        match self.kind {
            TokenKind::Number(v) => v,
            _ => None,
        }
    }
}

/// A `//` comment captured during lexing (doc comments included).
#[derive(Clone, Debug)]
pub struct LineComment {
    /// Comment body after the slashes, untrimmed.
    pub text: String,
    /// 1-based line the comment sits on.
    pub line: u32,
}

/// Lexer output: the token stream plus every line comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// `//` comments in source order.
    pub comments: Vec<LineComment>,
}

/// Lexes `source`, tolerating anything it does not understand (unknown
/// bytes become punctuation tokens; the rules simply won't match them).
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut end = start;
                while end < chars.len() && chars[end] != '\n' {
                    end += 1;
                }
                out.comments.push(LineComment {
                    text: chars[start..end].iter().collect(),
                    line,
                });
                i = end;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (text, next, newlines) = scan_string(&chars, i + 1);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                });
                line += newlines;
                i = next;
            }
            '\'' => {
                let (token, next) = scan_quote(&chars, i, line);
                out.tokens.push(token);
                i = next;
            }
            c if c.is_ascii_digit() => {
                let (token, next) = scan_number(&chars, i, line);
                out.tokens.push(token);
                i = next;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                // Raw / byte string prefixes: `r"…"`, `r#"…"#`, `b"…"`,
                // `br#"…"#`. Anything else is a plain identifier.
                let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb");
                if is_str_prefix && matches!(chars.get(i), Some('"') | Some('#')) {
                    if let Some((content, next, newlines)) = scan_raw_string(&chars, i) {
                        out.tokens.push(Token {
                            kind: TokenKind::Str,
                            text: content,
                            line,
                        });
                        line += newlines;
                        i = next;
                        continue;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                });
            }
            other => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(other),
                    text: other.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Scans a `"…"` body starting *after* the opening quote. Returns the
/// content, the index after the closing quote, and newline count.
fn scan_string(chars: &[char], mut i: usize) -> (String, usize, u32) {
    let mut text = String::new();
    let mut newlines = 0u32;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                // Keep escapes verbatim; rules only compare full literals.
                if let Some(&next) = chars.get(i + 1) {
                    text.push('\\');
                    text.push(next);
                    if next == '\n' {
                        newlines += 1;
                    }
                }
                i += 2;
            }
            '"' => return (text, i + 1, newlines),
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                text.push(c);
                i += 1;
            }
        }
    }
    (text, i, newlines)
}

/// Scans `r"…"` / `r#"…"#` style strings starting at the `#`/`"` after the
/// prefix. Returns `None` if this is not actually a raw string.
fn scan_raw_string(chars: &[char], mut i: usize) -> Option<(String, usize, u32)> {
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return None;
    }
    i += 1;
    let start = i;
    let mut newlines = 0u32;
    while i < chars.len() {
        if chars[i] == '"'
            && chars[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            let content: String = chars[start..i].iter().collect();
            return Some((content, i + 1 + hashes, newlines));
        }
        if chars[i] == '\n' {
            newlines += 1;
        }
        i += 1;
    }
    Some((chars[start..].iter().collect(), i, newlines))
}

/// Disambiguates a `'` into a char literal or a lifetime.
fn scan_quote(chars: &[char], i: usize, line: u32) -> (Token, usize) {
    // Escaped char: '\x'.
    if chars.get(i + 1) == Some(&'\\') {
        let mut j = i + 2;
        while j < chars.len() && chars[j] != '\'' {
            j += 1;
        }
        let text: String = chars[i + 1..j.min(chars.len())].iter().collect();
        return (
            Token {
                kind: TokenKind::Char,
                text,
                line,
            },
            (j + 1).min(chars.len()),
        );
    }
    // Plain char: 'x'.
    if chars.get(i + 2) == Some(&'\'') {
        return (
            Token {
                kind: TokenKind::Char,
                text: chars[i + 1].to_string(),
                line,
            },
            i + 3,
        );
    }
    // Lifetime: 'ident (no closing quote).
    let start = i + 1;
    let mut j = start;
    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
        j += 1;
    }
    (
        Token {
            kind: TokenKind::Lifetime,
            text: chars[start..j].iter().collect(),
            line,
        },
        j.max(i + 1),
    )
}

/// Scans a numeric literal, including radix prefixes, `_` separators,
/// float fractions/exponents and type suffixes.
fn scan_number(chars: &[char], start: usize, line: u32) -> (Token, usize) {
    let mut i = start;
    let mut is_float = false;
    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
        i += 1;
    }
    // Fraction: only when the dot is followed by a digit (so `0..n` ranges
    // and `1.max(x)` method calls stay separate tokens).
    if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        is_float = true;
        i += 1;
        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
    }
    // Exponent sign: `1e-6` — the `e` was consumed above; pick up `-6`/`+6`.
    if matches!(chars.get(i), Some('-') | Some('+'))
        && chars
            .get(i.wrapping_sub(1))
            .is_some_and(|c| *c == 'e' || *c == 'E')
        && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
    {
        is_float = true;
        i += 1;
        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
    }
    let text: String = chars[start..i].iter().collect();
    let value = if is_float { None } else { parse_int(&text) };
    (
        Token {
            kind: TokenKind::Number(value),
            text,
            line,
        },
        i,
    )
}

/// Parses an integer literal: radix prefixes, `_` separators, type suffix.
fn parse_int(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(hex) = clean.strip_prefix("0x") {
        (hex, 16)
    } else if let Some(oct) = clean.strip_prefix("0o") {
        (oct, 8)
    } else if let Some(bin) = clean.strip_prefix("0b") {
        (bin, 2)
    } else {
        (clean.as_str(), 10)
    };
    // Strip a type suffix (`u8`, `usize`, `i64`, …).
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    u64::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let src = r#"
            // a comment with unwrap() inside
            /* block with panic!() */
            let s = "HashMap::iter()"; // trailing
        "#;
        let names = idents(src);
        assert_eq!(names, ["let", "s"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unwrap"));
    }

    #[test]
    fn string_content_is_preserved() {
        let lexed = lex(r#"registry.counter("cache_hits", x);"#);
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("string token");
        assert_eq!(s.text, "cache_hits");
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'y'; let esc = '\\n'; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn numbers_parse_across_radixes() {
        let lexed = lex("13 0x0d 1_000 7u8 0.5 1e-6");
        let values: Vec<Option<u64>> = lexed.tokens.iter().map(|t| t.int_value()).collect();
        assert_eq!(
            values,
            [Some(13), Some(13), Some(1000), Some(7), None, None]
        );
    }

    #[test]
    fn raw_and_byte_strings_lex_as_strings() {
        let lexed = lex(r##"let m = *b"SVGN"; let r = r#"raw "quoted" body"#;"##);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs, ["SVGN", r#"raw "quoted" body"#]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "a\n/* x\ny */\nb";
        let lexed = lex(src);
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[1].line, 4);
    }
}
