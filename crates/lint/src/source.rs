//! A lexed source file plus the structure the rules need: `// lint:
//! allow(...)` directives, `#[cfg(test)]` / `#[test]` regions, and function
//! body spans.

use std::cell::Cell;

use crate::lexer::{lex, LineComment, Token, TokenKind};

/// One parsed `// lint: allow(<rule>, <reason>)` directive.
#[derive(Debug)]
pub struct Allow {
    /// 1-based line of the comment.
    pub line: u32,
    /// Rule the directive suppresses.
    pub rule: String,
    /// Why the flagged construct is sound. `None` when the directive
    /// omitted the reason — itself a finding.
    pub reason: Option<String>,
    /// Set when a finding consumed this directive; unconsumed directives
    /// are reported as stale.
    pub used: Cell<bool>,
}

/// How many lines below an `// lint: allow` comment it covers (the comment
/// line itself is always covered, so a trailing same-line directive works).
pub const ALLOW_WINDOW: u32 = 3;

impl Allow {
    /// Whether this directive suppresses `rule` at `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.rule == rule && line >= self.line && line <= self.line + ALLOW_WINDOW
    }
}

/// A malformed `// lint:` comment (unparseable, or missing its reason).
#[derive(Debug)]
pub struct BadAllow {
    /// 1-based line of the comment.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// A lexed file with the derived structure rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Parsed suppression directives.
    pub allows: Vec<Allow>,
    /// Malformed directives (reported unconditionally).
    pub bad_allows: Vec<BadAllow>,
    /// Token-index ranges (inclusive start, exclusive end) covered by
    /// `#[test]` / `#[cfg(test)]` items.
    test_spans: Vec<(usize, usize)>,
    /// Token-index ranges of `fn` bodies, innermost-last.
    fn_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes `content` and derives allow directives, test spans and
    /// function spans.
    pub fn parse(path: &str, content: &str) -> SourceFile {
        let lexed = lex(content);
        let (allows, bad_allows) = parse_allows(&lexed.comments);
        let test_spans = find_test_spans(&lexed.tokens);
        let fn_spans = find_fn_spans(&lexed.tokens);
        SourceFile {
            path: path.to_string(),
            tokens: lexed.tokens,
            allows,
            bad_allows,
            test_spans,
            fn_spans,
        }
    }

    /// Whether the token at `index` sits inside test-only code.
    pub fn in_test(&self, index: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(start, end)| index >= start && index < end)
    }

    /// The innermost function body containing token `index`, if any.
    pub fn enclosing_fn(&self, index: usize) -> Option<(usize, usize)> {
        self.fn_spans
            .iter()
            .filter(|&&(start, end)| index >= start && index < end)
            .min_by_key(|&&(start, end)| end - start)
            .copied()
    }

    /// Consumes a matching allow for `rule` at `line`, if one exists.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        for allow in &self.allows {
            if allow.covers(rule, line) && allow.reason.is_some() {
                allow.used.set(true);
                return true;
            }
        }
        false
    }
}

/// Parses every `lint:` comment into an [`Allow`] or a [`BadAllow`].
fn parse_allows(comments: &[LineComment]) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for comment in comments {
        let trimmed = comment.text.trim();
        let Some(rest) = trimmed.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        else {
            bad.push(BadAllow {
                line: comment.line,
                problem: format!(
                    "malformed lint directive `{trimmed}`; expected `lint: allow(<rule>, <reason>)`"
                ),
            });
            continue;
        };
        let (rule, reason) = match inner.split_once(',') {
            Some((rule, reason)) => (rule.trim(), Some(reason.trim())),
            None => (inner.trim(), None),
        };
        if rule.is_empty() {
            bad.push(BadAllow {
                line: comment.line,
                problem: "lint allow with an empty rule name".to_string(),
            });
            continue;
        }
        let reason = reason.filter(|r| !r.is_empty());
        if reason.is_none() {
            bad.push(BadAllow {
                line: comment.line,
                problem: format!(
                    "lint allow({rule}) without a reason; every suppression must say why \
                     the construct is sound"
                ),
            });
        }
        allows.push(Allow {
            line: comment.line,
            rule: rule.to_string(),
            reason: reason.map(str::to_string),
            used: Cell::new(false),
        });
    }
    (allows, bad)
}

/// Finds token spans of items annotated `#[test]` or `#[cfg(test)]` (but
/// not `#[cfg(not(test))]`): from the attribute to the matching close brace
/// of the item body. Items without a body (`#[cfg(test)] use …;`) span to
/// the terminating semicolon.
fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_idents, attr_end) = read_attribute(tokens, i + 2);
            let is_test = attr_idents.iter().any(|name| name == "test")
                && !attr_idents.iter().any(|name| name == "not");
            if is_test {
                if let Some(end) = item_body_end(tokens, attr_end) {
                    spans.push((i, end));
                    i = end;
                    continue;
                }
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    spans
}

/// Collects the identifiers inside `#[ … ]` starting just past the `[`;
/// returns them plus the index after the closing `]`.
fn read_attribute(tokens: &[Token], start: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut depth = 1usize;
    let mut i = start;
    while i < tokens.len() && depth > 0 {
        match &tokens[i].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => depth -= 1,
            TokenKind::Ident => idents.push(tokens[i].text.clone()),
            _ => {}
        }
        i += 1;
    }
    (idents, i)
}

/// Finds where the item following an attribute ends: the matching `}` of
/// its first brace, or the first `;` if no brace opens before one.
fn item_body_end(tokens: &[Token], start: usize) -> Option<usize> {
    let mut i = start;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct(';') => return Some(i + 1),
            TokenKind::Punct('{') => return match_brace(tokens, i),
            _ => i += 1,
        }
    }
    None
}

/// Index just past the `}` matching the `{` at `open`.
fn match_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, token) in tokens.iter().enumerate().skip(open) {
        match token.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Finds every `fn` body span (from its opening `{` to the matching `}`).
fn find_fn_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            // Walk the signature to the body brace. Trait methods end at
            // `;` instead; stop there.
            let mut j = i + 1;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokenKind::Punct('{') => {
                        if let Some(end) = match_brace(tokens, j) {
                            spans.push((j, end));
                        }
                        break;
                    }
                    TokenKind::Punct(';') => break,
                    _ => j += 1,
                }
            }
        }
        i += 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_directives_parse_with_and_without_reason() {
        let src = "\
let x = 1; // lint: allow(hash-iter, order-independent sum)
// lint: allow(wall-clock)
// lint: bogus
";
        let file = SourceFile::parse("x.rs", src);
        assert_eq!(file.allows.len(), 2);
        assert_eq!(file.allows[0].rule, "hash-iter");
        assert_eq!(
            file.allows[0].reason.as_deref(),
            Some("order-independent sum")
        );
        assert!(file.allows[1].reason.is_none());
        // The reasonless allow and the unparseable comment both report.
        assert_eq!(file.bad_allows.len(), 2);
    }

    #[test]
    fn suppression_covers_trailing_and_following_lines() {
        let src = "// lint: allow(no-panic, test helper)\n\n\nx.unwrap();\n\ny.unwrap();\n";
        let file = SourceFile::parse("x.rs", src);
        assert!(file.suppressed("no-panic", 4));
        assert!(!file.suppressed("no-panic", 6));
        assert!(!file.suppressed("hash-iter", 4));
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_spanned() {
        let src = "\
fn live() { body(); }
#[cfg(test)]
mod tests {
    fn helper() {}
}
#[test]
fn case() { check(); }
fn also_live() {}
";
        let file = SourceFile::parse("x.rs", src);
        let helper = file
            .tokens
            .iter()
            .position(|t| t.is_ident("helper"))
            .expect("helper");
        let check = file
            .tokens
            .iter()
            .position(|t| t.is_ident("check"))
            .expect("check");
        let live = file
            .tokens
            .iter()
            .position(|t| t.is_ident("body"))
            .expect("body");
        let tail = file
            .tokens
            .iter()
            .position(|t| t.is_ident("also_live"))
            .expect("tail");
        assert!(file.in_test(helper));
        assert!(file.in_test(check));
        assert!(!file.in_test(live));
        assert!(!file.in_test(tail));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))]\nfn guarded() { body(); }";
        let file = SourceFile::parse("x.rs", src);
        let body = file
            .tokens
            .iter()
            .position(|t| t.is_ident("body"))
            .expect("body");
        assert!(!file.in_test(body));
    }

    #[test]
    fn enclosing_fn_picks_the_innermost_body() {
        let src = "fn outer() { fn inner() { deep(); } shallow(); }";
        let file = SourceFile::parse("x.rs", src);
        let deep = file
            .tokens
            .iter()
            .position(|t| t.is_ident("deep"))
            .expect("deep");
        let shallow = file
            .tokens
            .iter()
            .position(|t| t.is_ident("shallow"))
            .expect("shallow");
        let inner = file.enclosing_fn(deep).expect("inner span");
        let outer = file.enclosing_fn(shallow).expect("outer span");
        assert!(inner.1 - inner.0 < outer.1 - outer.0);
    }
}
