//! Property tests for the scheduler's batch coalescer.
//!
//! The coalescer's contract: a session's pending queue folds to the *net*
//! state change. For membership that means each user's final present/absent
//! state is decided solely by their **last** event — interleaved
//! Join/Leave/Join chatter from other users must not matter, and everything
//! beyond the net effect must be reported as coalesced away.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svgic_core::extensions::DynamicEvent;
use svgic_engine::fingerprint::Fnv;
use svgic_engine::prelude::*;
use svgic_engine::scheduler::coalesce;
use svgic_engine::SessionEvent;

const USERS: usize = 8;

/// Builds a random membership-event stream over `USERS` users.
fn random_stream(len: usize, seed: u64) -> Vec<SessionEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let user = rng.gen_range(0..USERS);
            if rng.gen::<f64>() < 0.5 {
                SessionEvent::Membership(DynamicEvent::Join(user))
            } else {
                SessionEvent::Membership(DynamicEvent::Leave(user))
            }
        })
        .collect()
}

fn start_set(mask: u32) -> Vec<usize> {
    (0..USERS).filter(|u| mask & (1 << u) != 0).collect()
}

/// The reference semantics: apply events one by one.
fn naive_fold(start: &[usize], events: &[SessionEvent]) -> BTreeSet<usize> {
    let mut present: BTreeSet<usize> = start.iter().copied().collect();
    for event in events {
        match event {
            SessionEvent::Membership(DynamicEvent::Join(user)) => {
                present.insert(*user);
            }
            SessionEvent::Membership(DynamicEvent::Leave(user)) => {
                present.remove(user);
            }
            _ => unreachable!("membership-only streams"),
        }
    }
    present
}

/// Keeps only each user's final event, preserving relative order.
fn last_event_per_user(events: &[SessionEvent]) -> Vec<SessionEvent> {
    let mut kept: Vec<SessionEvent> = Vec::new();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for event in events.iter().rev() {
        let SessionEvent::Membership(DynamicEvent::Join(user) | DynamicEvent::Leave(user)) = event
        else {
            unreachable!("membership-only streams");
        };
        if seen.insert(*user) {
            kept.push(event.clone());
        }
    }
    kept.reverse();
    kept
}

/// One step of the warm-vs-cold serving comparison.
#[derive(Clone, Debug)]
enum ServeStep {
    Event(SessionEvent),
    Flush,
    ForceResolve,
}

/// Builds a random serving script over the running example's universe
/// (4 users, 5 items, k = 3): membership churn, catalogue rotations, λ
/// re-tunes, flushes and forced re-solves.
fn random_script(len: usize, seed: u64) -> Vec<ServeStep> {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalogs: [&[usize]; 4] = [&[0, 1, 2], &[0, 1, 2, 3], &[1, 2, 3, 4], &[0, 1, 2, 3, 4]];
    (0..len)
        .map(|_| {
            let roll = rng.gen::<f64>();
            if roll < 0.55 {
                let user = rng.gen_range(0..4);
                if rng.gen::<f64>() < 0.5 {
                    ServeStep::Event(SessionEvent::Membership(DynamicEvent::Join(user)))
                } else {
                    ServeStep::Event(SessionEvent::Membership(DynamicEvent::Leave(user)))
                }
            } else if roll < 0.65 {
                let catalog = catalogs[rng.gen_range(0..catalogs.len())];
                ServeStep::Event(SessionEvent::SetCatalog(catalog.to_vec()))
            } else if roll < 0.72 {
                ServeStep::Event(SessionEvent::RetuneLambda(
                    (rng.gen_range(2..10usize) as f64) / 10.0,
                ))
            } else if roll < 0.92 {
                ServeStep::Flush
            } else {
                ServeStep::ForceResolve
            }
        })
        .collect()
}

/// Drives the script through a fresh engine and digests every served
/// configuration the way the load driver does.
fn serve_digest(script: &[ServeStep], warm: bool) -> u64 {
    let mut engine = Engine::new(EngineConfig {
        workers: 2,
        auto_flush_pending: 0,
        component_cache_capacity: if warm { 64 } else { 0 },
        policy: ResolvePolicy {
            warm_start_lp: warm,
            ..ResolvePolicy::default()
        },
        ..EngineConfig::default()
    });
    let view = engine
        .create_session(CreateSession {
            instance: svgic_core::example::running_example(),
            initial_present: Vec::new(),
            seed: 0xD16E57,
        })
        .expect("session created");
    let id = view.session;
    let mut digest = Fnv::new();
    let fold = |view: &ConfigurationView, digest: &mut Fnv| {
        digest.write_u64(view.generation);
        digest.write_u64(view.present.len() as u64);
        for &user in &view.present {
            digest.write_u64(user as u64);
        }
        for &item in &view.catalog {
            digest.write_u64(item as u64);
        }
        for user in 0..view.configuration.num_users() {
            for &item in view.configuration.items_of(user) {
                digest.write_u64(item as u64);
            }
        }
        digest.write_f64(view.utility);
        digest.write_f64(view.lp_bound);
    };
    fold(&view, &mut digest);
    for step in script {
        match step {
            ServeStep::Event(event) => {
                // Invalid events (none by construction) would differ from the
                // cold run identically, so just unwrap.
                engine.submit_event(id, event.clone()).expect("valid event");
            }
            ServeStep::Flush => {
                engine.flush();
                let view = engine.query_configuration(id).expect("live session");
                fold(&view, &mut digest);
            }
            ServeStep::ForceResolve => {
                let view = engine.force_resolve(id).expect("live session");
                fold(&view, &mut digest);
            }
        }
    }
    engine.flush();
    let view = engine.query_configuration(id).expect("live session");
    fold(&view, &mut digest);
    digest.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The engine's warm-start path must be a **pure optimization**: over
    /// arbitrary event streams, serving with component-level warm starts
    /// produces exactly the configurations (and utilities, and bounds) that
    /// cold serving produces — the FNV-1a digests must collide bit-for-bit.
    #[test]
    fn warm_and_cold_serving_digests_are_identical(
        script_len in 8usize..40,
        seed in 0u64..100_000,
    ) {
        let script = random_script(script_len, seed);
        let warm = serve_digest(&script, true);
        let cold = serve_digest(&script, false);
        prop_assert_eq!(warm, cold);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coalescing equals the naive event-by-event fold, and the accounting
    /// (raw, coalesced-away, dirty) is consistent with the net change.
    #[test]
    fn membership_coalesces_to_net_state(
        start_mask in 0u32..256,
        stream_len in 0usize..24,
        seed in 0u64..10_000,
    ) {
        let start = start_set(start_mask);
        let events = random_stream(stream_len, seed);
        let catalog: Vec<usize> = (0..4).collect();
        let batch = coalesce(&start, &catalog, 0.5, &events);

        let expected = naive_fold(&start, &events);
        prop_assert_eq!(&batch.present, &expected.iter().copied().collect::<Vec<_>>());

        let start_as_set: BTreeSet<usize> = start.iter().copied().collect();
        let net = expected.symmetric_difference(&start_as_set).count();
        prop_assert_eq!(batch.dirty, net > 0);
        prop_assert_eq!(batch.raw_events, events.len());
        prop_assert_eq!(batch.coalesced_away, events.len() - net.min(events.len()));
        prop_assert!(!batch.reshaped, "membership events never reshape the base");
        prop_assert!(batch.catalog.is_none());
        prop_assert!(batch.lambda.is_none());
    }

    /// Only each user's *last* event matters: dropping every superseded event
    /// (in any interleaving) yields the same net batch.
    #[test]
    fn submission_order_of_superseded_events_is_irrelevant(
        start_mask in 0u32..256,
        stream_len in 1usize..24,
        seed in 0u64..10_000,
        shuffle_seed in 0u64..10_000,
    ) {
        let start = start_set(start_mask);
        let events = random_stream(stream_len, seed);
        let catalog: Vec<usize> = (0..4).collect();
        let full = coalesce(&start, &catalog, 0.5, &events);

        // Variant A: only the last event per user, original relative order.
        let lasts = last_event_per_user(&events);
        let reduced = coalesce(&start, &catalog, 0.5, &lasts);
        prop_assert_eq!(&full.present, &reduced.present);
        prop_assert_eq!(full.dirty, reduced.dirty);

        // Variant B: those last events in a random different order — final
        // per-user state involves one event each, so order cannot matter.
        let mut shuffled = lasts.clone();
        use rand::seq::SliceRandom;
        shuffled.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        let reordered = coalesce(&start, &catalog, 0.5, &shuffled);
        prop_assert_eq!(&full.present, &reordered.present);
        prop_assert_eq!(full.dirty, reordered.dirty);
    }

    /// A Join→Leave→Join sandwich for one user nets to a plain join, no
    /// matter how much other-user chatter is interleaved between the three.
    #[test]
    fn join_leave_join_sandwich_nets_to_join(
        filler_len in 0usize..12,
        seed in 0u64..10_000,
    ) {
        // User 9 is outside the filler's 0..8 range, so filler never touches
        // them.
        let target = 9usize;
        let filler = random_stream(filler_len, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut events = vec![SessionEvent::Membership(DynamicEvent::Join(target))];
        let insert_random = |events: &mut Vec<SessionEvent>, rng: &mut StdRng| {
            for filler_event in &filler {
                if rng.gen::<f64>() < 0.5 {
                    events.push(filler_event.clone());
                }
            }
        };
        insert_random(&mut events, &mut rng);
        events.push(SessionEvent::Membership(DynamicEvent::Leave(target)));
        insert_random(&mut events, &mut rng);
        events.push(SessionEvent::Membership(DynamicEvent::Join(target)));

        let batch = coalesce(&[], &[0, 1, 2, 3], 0.5, &events);
        prop_assert!(batch.present.contains(&target), "net effect must be a join");
        prop_assert!(batch.dirty);
    }
}
