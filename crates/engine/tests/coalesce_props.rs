//! Property tests for the scheduler's batch coalescer.
//!
//! The coalescer's contract: a session's pending queue folds to the *net*
//! state change. For membership that means each user's final present/absent
//! state is decided solely by their **last** event — interleaved
//! Join/Leave/Join chatter from other users must not matter, and everything
//! beyond the net effect must be reported as coalesced away.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svgic_core::extensions::DynamicEvent;
use svgic_engine::scheduler::coalesce;
use svgic_engine::SessionEvent;

const USERS: usize = 8;

/// Builds a random membership-event stream over `USERS` users.
fn random_stream(len: usize, seed: u64) -> Vec<SessionEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let user = rng.gen_range(0..USERS);
            if rng.gen::<f64>() < 0.5 {
                SessionEvent::Membership(DynamicEvent::Join(user))
            } else {
                SessionEvent::Membership(DynamicEvent::Leave(user))
            }
        })
        .collect()
}

fn start_set(mask: u32) -> Vec<usize> {
    (0..USERS).filter(|u| mask & (1 << u) != 0).collect()
}

/// The reference semantics: apply events one by one.
fn naive_fold(start: &[usize], events: &[SessionEvent]) -> BTreeSet<usize> {
    let mut present: BTreeSet<usize> = start.iter().copied().collect();
    for event in events {
        match event {
            SessionEvent::Membership(DynamicEvent::Join(user)) => {
                present.insert(*user);
            }
            SessionEvent::Membership(DynamicEvent::Leave(user)) => {
                present.remove(user);
            }
            _ => unreachable!("membership-only streams"),
        }
    }
    present
}

/// Keeps only each user's final event, preserving relative order.
fn last_event_per_user(events: &[SessionEvent]) -> Vec<SessionEvent> {
    let mut kept: Vec<SessionEvent> = Vec::new();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for event in events.iter().rev() {
        let SessionEvent::Membership(DynamicEvent::Join(user) | DynamicEvent::Leave(user)) = event
        else {
            unreachable!("membership-only streams");
        };
        if seen.insert(*user) {
            kept.push(event.clone());
        }
    }
    kept.reverse();
    kept
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coalescing equals the naive event-by-event fold, and the accounting
    /// (raw, coalesced-away, dirty) is consistent with the net change.
    #[test]
    fn membership_coalesces_to_net_state(
        start_mask in 0u32..256,
        stream_len in 0usize..24,
        seed in 0u64..10_000,
    ) {
        let start = start_set(start_mask);
        let events = random_stream(stream_len, seed);
        let catalog: Vec<usize> = (0..4).collect();
        let batch = coalesce(&start, &catalog, 0.5, &events);

        let expected = naive_fold(&start, &events);
        prop_assert_eq!(&batch.present, &expected.iter().copied().collect::<Vec<_>>());

        let start_as_set: BTreeSet<usize> = start.iter().copied().collect();
        let net = expected.symmetric_difference(&start_as_set).count();
        prop_assert_eq!(batch.dirty, net > 0);
        prop_assert_eq!(batch.raw_events, events.len());
        prop_assert_eq!(batch.coalesced_away, events.len() - net.min(events.len()));
        prop_assert!(!batch.reshaped, "membership events never reshape the base");
        prop_assert!(batch.catalog.is_none());
        prop_assert!(batch.lambda.is_none());
    }

    /// Only each user's *last* event matters: dropping every superseded event
    /// (in any interleaving) yields the same net batch.
    #[test]
    fn submission_order_of_superseded_events_is_irrelevant(
        start_mask in 0u32..256,
        stream_len in 1usize..24,
        seed in 0u64..10_000,
        shuffle_seed in 0u64..10_000,
    ) {
        let start = start_set(start_mask);
        let events = random_stream(stream_len, seed);
        let catalog: Vec<usize> = (0..4).collect();
        let full = coalesce(&start, &catalog, 0.5, &events);

        // Variant A: only the last event per user, original relative order.
        let lasts = last_event_per_user(&events);
        let reduced = coalesce(&start, &catalog, 0.5, &lasts);
        prop_assert_eq!(&full.present, &reduced.present);
        prop_assert_eq!(full.dirty, reduced.dirty);

        // Variant B: those last events in a random different order — final
        // per-user state involves one event each, so order cannot matter.
        let mut shuffled = lasts.clone();
        use rand::seq::SliceRandom;
        shuffled.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        let reordered = coalesce(&start, &catalog, 0.5, &shuffled);
        prop_assert_eq!(&full.present, &reordered.present);
        prop_assert_eq!(full.dirty, reordered.dirty);
    }

    /// A Join→Leave→Join sandwich for one user nets to a plain join, no
    /// matter how much other-user chatter is interleaved between the three.
    #[test]
    fn join_leave_join_sandwich_nets_to_join(
        filler_len in 0usize..12,
        seed in 0u64..10_000,
    ) {
        // User 9 is outside the filler's 0..8 range, so filler never touches
        // them.
        let target = 9usize;
        let filler = random_stream(filler_len, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut events = vec![SessionEvent::Membership(DynamicEvent::Join(target))];
        let insert_random = |events: &mut Vec<SessionEvent>, rng: &mut StdRng| {
            for filler_event in &filler {
                if rng.gen::<f64>() < 0.5 {
                    events.push(filler_event.clone());
                }
            }
        };
        insert_random(&mut events, &mut rng);
        events.push(SessionEvent::Membership(DynamicEvent::Leave(target)));
        insert_random(&mut events, &mut rng);
        events.push(SessionEvent::Membership(DynamicEvent::Join(target)));

        let batch = coalesce(&[], &[0, 1, 2, 3], 0.5, &events);
        prop_assert!(batch.present.contains(&target), "net effect must be a join");
        prop_assert!(batch.dirty);
    }
}
