//! Property tests for the canonical wire codec.
//!
//! The codec's contract (see `crates/engine/src/codec.rs` and
//! `docs/FORMATS.md`):
//!
//! 1. **Canonical round trip** — `encode(decode(bytes)) == bytes` for every
//!    accepted input, and `decode(encode(value))` accepts every value the
//!    engine can produce. Tested over randomized requests and responses,
//!    including full instances, session exports with warm factors, and
//!    stats snapshots.
//! 2. **Totality** — `decode` never panics and never partially succeeds:
//!    truncations, bit flips and arbitrary garbage return a `CodecError`.
//! 3. **Self-consistency under corruption** — if a corrupted payload
//!    happens to decode (e.g. a flipped bit inside a float), re-encoding
//!    reproduces the corrupted bytes exactly: the codec never "repairs"
//!    input, so a digest mismatch can always be traced to bytes.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svgic_algorithms::{LpBackend, UtilityFactors};
use svgic_core::extensions::DynamicEvent;
use svgic_core::{Configuration, SvgicInstance, SvgicInstanceBuilder};
use svgic_engine::codec::{decode_request, decode_response, encode_request, encode_response};
use svgic_engine::prelude::*;
use svgic_engine::{
    EngineProfile, Phase, PhaseAggregate, ProfileEntry, RequestWaterfall, Served, SessionExport,
    SpanRecord, WaterfallSpan,
};
use svgic_graph::SocialGraph;

fn random_instance(rng: &mut StdRng) -> SvgicInstance {
    let n = rng.gen_range(1..6);
    let m = rng.gen_range(1..6);
    let k = rng.gen_range(1..=m);
    let lambda = rng.gen_range(0.0..1.0);
    let mut graph = SocialGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen::<f64>() < 0.4 {
                let _ = graph.add_edge(u, v);
            }
        }
    }
    let edges: Vec<(usize, usize)> = graph.edges().to_vec();
    let mut builder = SvgicInstanceBuilder::new(graph, m, k, lambda);
    for u in 0..n {
        for c in 0..m {
            builder.set_preference(u, c, rng.gen_range(0.0..2.0));
        }
    }
    for (u, v) in edges {
        for c in 0..m {
            builder.set_social(u, v, c, rng.gen_range(0.0..1.0));
        }
    }
    let builder = if rng.gen::<f64>() < 0.3 {
        builder.with_item_labels((0..m).map(|c| format!("item«{c}»")).collect())
    } else {
        builder
    };
    builder.build().expect("random instance is valid")
}

/// A random event that a real engine would have accepted at submit time —
/// exports only carry validated events, and the decoder enforces that.
fn random_event(rng: &mut StdRng, n: usize, m: usize, k: usize) -> SessionEvent {
    match rng.gen_range(0..4) {
        0 => SessionEvent::Membership(DynamicEvent::Join(rng.gen_range(0..n))),
        1 => SessionEvent::Membership(DynamicEvent::Leave(rng.gen_range(0..n))),
        2 => {
            // A sorted subset of the item universe that can still fill k
            // slots (what `validate_event` normalizes to).
            let mut items: Vec<usize> = (0..m).collect();
            while items.len() > k && rng.gen::<f64>() < 0.5 {
                let drop = rng.gen_range(0..items.len());
                items.remove(drop);
            }
            SessionEvent::SetCatalog(items)
        }
        _ => SessionEvent::RetuneLambda(rng.gen_range(0.0..1.0)),
    }
}

fn random_export(rng: &mut StdRng) -> SessionExport {
    let instance = random_instance(rng);
    let n = instance.num_users();
    let m = instance.num_items();
    let k = instance.num_slots();
    let catalog: Vec<usize> = (0..m).collect();
    let present: Vec<usize> = (0..n).filter(|_| rng.gen::<f64>() < 0.8).collect();
    let pending: Vec<SessionEvent> = (0..rng.gen_range(0..4))
        .map(|_| random_event(rng, n, m, k))
        .collect();
    let served = if rng.gen::<f64>() < 0.6 && !present.is_empty() {
        let assign: Vec<usize> = (0..present.len() * k)
            .map(|_| rng.gen_range(0..m))
            .collect();
        Some(Served {
            configuration: Configuration::from_flat(present.len(), k, assign),
            present: present.clone(),
            catalog: catalog.clone(),
            utility: rng.gen_range(0.0..10.0),
            lp_bound: rng.gen_range(0.0..20.0),
            tight: rng.gen(),
        })
    } else {
        None
    };
    let last_factors = if rng.gen::<f64>() < 0.5 {
        let aggregate: Vec<f64> = (0..n * m).map(|_| rng.gen_range(0.0..1.0)).collect();
        Some(Arc::new(
            UtilityFactors::from_parts(
                n,
                m,
                k,
                aggregate,
                rng.gen_range(0.0..50.0),
                LpBackend::Structured,
            )
            .expect("dimensions match"),
        ))
    } else {
        None
    };
    let last_factor_fingerprint = last_factors.as_ref().map(|_| rng.gen());
    SessionExport {
        full: Arc::new(instance),
        catalog,
        lambda: rng.gen_range(0.0..1.0),
        present,
        pending,
        served,
        seed: rng.gen(),
        generation: rng.gen_range(0..100),
        events_since_full: rng.gen_range(0..10),
        lifetime_events: rng.gen_range(0..1000),
        last_factors,
        last_factor_fingerprint,
    }
}

fn random_request(rng: &mut StdRng) -> EngineRequest {
    match rng.gen_range(0..14) {
        0 => {
            let instance = random_instance(rng);
            let present: Vec<usize> = (0..instance.num_users())
                .filter(|_| rng.gen::<f64>() < 0.5)
                .collect();
            EngineRequest::CreateSession(Box::new(CreateSession {
                instance,
                initial_present: present,
                seed: rng.gen(),
            }))
        }
        1 => EngineRequest::SubmitEvent(SessionId(rng.gen()), random_event(rng, 8, 8, 2)),
        2 => EngineRequest::QueryConfiguration(SessionId(rng.gen())),
        3 => EngineRequest::ForceResolve(SessionId(rng.gen())),
        4 => EngineRequest::CloseSession(SessionId(rng.gen())),
        5 => EngineRequest::Flush,
        6 => EngineRequest::QueryStats,
        7 => EngineRequest::ResetStats,
        8 => EngineRequest::ExportSession(SessionId(rng.gen())),
        9 => EngineRequest::ImportSession(Box::new(random_export(rng))),
        10 => EngineRequest::QueryMetrics,
        11 => EngineRequest::QueryTelemetry,
        12 => EngineRequest::QueryProfile,
        _ => EngineRequest::Describe,
    }
}

/// Any of the thirteen span phases, uniformly.
fn random_phase(rng: &mut StdRng) -> Phase {
    Phase::from_index(rng.gen_range(0..Phase::ALL.len()) as u8).expect("index in range")
}

/// A random profile: ledger entries, phase aggregates, waterfalls and a
/// collapsed-stack string — the codec does not care that the numbers are
/// arbitrary, only that they survive the wire bit-exactly.
fn random_profile(rng: &mut StdRng) -> EngineProfile {
    EngineProfile {
        entries: (0..rng.gen_range(0..4))
            .map(|_| ProfileEntry {
                template_fingerprint: rng.gen(),
                warm_solves: rng.gen_range(0..100),
                cold_solves: rng.gen_range(0..100),
                warm_nanos: rng.gen(),
                cold_nanos: rng.gen(),
                miss_new: rng.gen_range(0..50),
                miss_evicted: rng.gen_range(0..50),
                miss_component_changed: rng.gen_range(0..50),
            })
            .collect(),
        dropped: rng.gen_range(0..10),
        phases: (0..rng.gen_range(0..4))
            .map(|_| PhaseAggregate {
                phase: random_phase(rng),
                count: rng.gen_range(1..1000),
                total_nanos: rng.gen(),
                max_nanos: rng.gen(),
            })
            .collect(),
        waterfalls: (0..rng.gen_range(0..3))
            .map(|_| RequestWaterfall {
                request_id: rng.gen(),
                total_nanos: rng.gen(),
                spans: (0..rng.gen_range(0..4))
                    .map(|_| WaterfallSpan {
                        phase: random_phase(rng),
                        start_nanos: rng.gen(),
                        duration_nanos: rng.gen(),
                        shard: if rng.gen::<f64>() < 0.5 {
                            SpanRecord::NO_SHARD
                        } else {
                            rng.gen_range(0..8)
                        },
                    })
                    .collect(),
            })
            .collect(),
        collapsed: if rng.gen::<f64>() < 0.5 {
            "Serve 100\nServe;ShardDispatch 40\n".to_string()
        } else {
            String::new()
        },
    }
}

/// A realistic random stats snapshot: drive a tiny engine, snapshot it.
fn random_stats(rng: &mut StdRng) -> StatsSnapshot {
    let mut engine = Engine::new(EngineConfig {
        workers: 1,
        shards: rng.gen_range(1..3),
        auto_flush_pending: 0,
        ..EngineConfig::default()
    });
    let view = engine
        .create_session(CreateSession {
            instance: svgic_core::example::running_example(),
            initial_present: vec![],
            seed: rng.gen(),
        })
        .expect("creates");
    engine
        .submit_event(
            view.session,
            SessionEvent::Membership(DynamicEvent::Leave(0)),
        )
        .expect("submits");
    engine.flush();
    engine.stats()
}

fn random_response(rng: &mut StdRng) -> Result<EngineResponse, EngineError> {
    let view = || ConfigurationView {
        session: SessionId(7),
        present: vec![0, 2, 3],
        catalog: vec![0, 1, 2, 4],
        configuration: Configuration::from_flat(3, 2, vec![0, 1, 2, 3, 0, 1]),
        utility: 1.5,
        lp_bound: 2.5,
        staleness: 1,
        generation: 4,
    };
    match rng.gen_range(0..13) {
        0 => Ok(EngineResponse::SessionCreated(view())),
        1 => Ok(EngineResponse::EventAccepted {
            session: SessionId(rng.gen()),
            pending: rng.gen_range(0..10),
        }),
        2 => Ok(EngineResponse::Configuration(view())),
        3 => Ok(EngineResponse::Resolved(view())),
        4 => Ok(EngineResponse::SessionClosed {
            session: SessionId(rng.gen()),
            lifetime_events: rng.gen_range(0..100),
        }),
        5 => Ok(EngineResponse::Flushed),
        6 => Ok(EngineResponse::Stats(Box::new(random_stats(rng)))),
        7 => Ok(EngineResponse::StatsReset),
        8 => Ok(EngineResponse::SessionExported(Box::new(random_export(
            rng,
        )))),
        9 => Ok(EngineResponse::SessionImported(SessionId(rng.gen()))),
        10 => Ok(EngineResponse::Description(EngineInfo {
            workers: rng.gen_range(1..16),
            shards: rng.gen_range(1..16),
            sessions: rng.gen_range(0..100),
            pending_events: rng.gen_range(0..100),
        })),
        11 => Ok(EngineResponse::Profile(Box::new(random_profile(rng)))),
        _ => Err(EngineError::InvalidEvent("synthetic".into())),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Canonical request round trip: decode then re-encode is the identity
    /// on bytes.
    #[test]
    fn request_roundtrip_is_canonical(seed in 0u64..1u64 << 48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let request = random_request(&mut rng);
        let bytes = encode_request(&request);
        let decoded = decode_request(&bytes);
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        prop_assert_eq!(encode_request(&decoded.unwrap()), bytes);
    }

    /// Canonical response round trip, including stats snapshots and
    /// warm-capital-carrying exports.
    #[test]
    fn response_roundtrip_is_canonical(seed in 0u64..1u64 << 48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let response = random_response(&mut rng);
        let bytes = encode_response(&response);
        let decoded = decode_response(&bytes);
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        prop_assert_eq!(encode_response(&decoded.unwrap()), bytes);
    }

    /// Every strict prefix of a valid encoding is rejected — a connection
    /// dying mid-payload can never yield a half-request.
    #[test]
    fn truncated_requests_are_rejected(seed in 0u64..1u64 << 48, frac in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes = encode_request(&random_request(&mut rng));
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(decode_request(&bytes[..cut]).is_err());
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(seed in 0u64..1u64 << 48, len in 0usize..512) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen::<u64>() as u8).collect();
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// The profile payload specifically: round trip is canonical, and
    /// corrupting any single byte of the encoding either fails to decode
    /// (e.g. an out-of-range phase index) or re-encodes to exactly the
    /// corrupted bytes — garbage never decodes to a "repaired" ledger.
    #[test]
    fn profile_roundtrip_is_canonical_and_rejects_garbage(
        seed in 0u64..1u64 << 48,
        corrupt in 0usize..1 << 20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let response = Ok(EngineResponse::Profile(Box::new(random_profile(&mut rng))));
        let bytes = encode_response(&response);
        let decoded = decode_response(&bytes);
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        prop_assert_eq!(encode_response(&decoded.unwrap()), bytes);

        let mut corrupted = bytes.clone();
        let at = corrupt % corrupted.len();
        corrupted[at] = corrupted[at].wrapping_add(1 + (corrupt >> 8) as u8 % 255);
        if let Ok(redecoded) = decode_response(&corrupted) {
            prop_assert_eq!(encode_response(&redecoded), corrupted);
        }
    }

    /// A single flipped bit either fails to decode or decodes to a value
    /// that re-encodes to exactly the flipped bytes — corruption is never
    /// silently repaired.
    #[test]
    fn bit_flips_are_detected_or_faithful(seed in 0u64..1u64 << 48, flip in 0usize..1 << 20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes = encode_request(&random_request(&mut rng));
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        if let Ok(decoded) = decode_request(&bytes) {
            prop_assert_eq!(encode_request(&decoded), bytes);
        }
    }
}
