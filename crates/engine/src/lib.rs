//! # svgic-engine — online multi-session serving for SVGIC
//!
//! The batch solvers in `svgic-algorithms` answer one question for one group.
//! This crate turns them into an always-on service core, the setting the
//! paper motivates with social-VR platforms like Timik: many concurrent
//! shopping groups, each a live **session** receiving joins, leaves,
//! catalogue churn and λ re-tunes, each expecting a fresh SAVG
//! k-configuration without paying a full LP per event.
//!
//! Architecture (one module each):
//!
//! * [`api`] — typed request/response surface ([`EngineRequest`] /
//!   [`EngineResponse`]), session events wrapping the paper's
//!   [`svgic_core::extensions::DynamicEvent`] plus catalogue and λ events;
//! * [`session`] — per-session live state: full instance, active catalogue,
//!   present population, pending events, last served solution;
//! * [`scheduler`] — batched event coalescing (join/leave pairs cancel,
//!   superseded catalogue/λ updates fold away);
//! * [`policy`] — the incremental-vs-full re-solve decision
//!   ([`ResolvePolicy`]): cheap re-rounding against full-population factors
//!   (the paper's §5 dynamic mechanism) vs. a tight LP re-solve, driven by
//!   accumulated churn and utility drift;
//! * [`fingerprint`] — structural instance hashing;
//! * [`mem`] — byte-level memory accounting ([`MemoryFootprint`]) for
//!   session state, pending queues, served solutions and shard caches,
//!   feeding the `mem_*` gauges;
//! * [`cache`] — the LRU [`FactorCache`] of LP utility factors, shared
//!   across re-solves *and across sessions* on the same shard;
//! * [`warm`] — component-wise warm-started factor solving: the LP separates
//!   across social-graph components, so re-solves reuse cached factors of
//!   every component a membership delta did not touch (byte-identical to a
//!   cold solve, just cheaper);
//! * [`pool`] — the `std::thread` worker pool with per-worker queues;
//!   sessions hash to fixed shards, each flush runs one pipeline job per
//!   busy shard against shard-owned caches;
//! * [`stats`] — engine counters: requests, cache hit rate, solve latencies,
//!   utility-vs-LP-bound gap;
//! * [`profile`] — the per-template cost-attribution [`SolveLedger`]
//!   (warm/cold solve accounting with miss causes) and the
//!   [`EngineProfile`] served by the `QueryProfile` wire request;
//! * [`transport`] — the [`EngineTransport`] trait the load drivers and the
//!   cluster router program against, implemented by [`Engine`] (a function
//!   call) and by `svgic-net`'s TCP client (a wire round trip);
//! * [`codec`] — the canonical byte codec for [`EngineRequest`] /
//!   [`EngineResponse`] (and everything they carry: instances, exports,
//!   stats snapshots), the payload format of the `svgic-net` wire protocol.
//!
//! Served configurations are deterministic under fixed seeds regardless of
//! worker-thread scheduling: seeds derive from `(session, generation)` and
//! results are applied in session order.
//!
//! ```rust
//! use svgic_engine::prelude::*;
//! use svgic_core::extensions::DynamicEvent;
//!
//! let mut engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
//! let view = engine
//!     .create_session(CreateSession {
//!         instance: svgic_core::example::running_example(),
//!         initial_present: vec![],
//!         seed: 7,
//!     })
//!     .unwrap();
//! let id = view.session;
//! engine.submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(2))).unwrap();
//! engine.flush();
//! let view = engine.query_configuration(id).unwrap();
//! assert!(view.configuration.is_valid(view.catalog.len()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod codec;
pub mod engine;
pub mod fingerprint;
pub mod mem;
pub mod policy;
pub mod pool;
pub mod profile;
pub mod scheduler;
pub mod session;
pub mod stats;
pub mod transport;
pub mod warm;

pub use api::{
    ConfigurationView, CreateSession, EngineError, EngineInfo, EngineRequest, EngineResponse,
    SessionEvent, SessionId,
};
pub use cache::FactorCache;
pub use codec::{decode_request, decode_response, encode_request, encode_response, CodecError};
pub use engine::{Engine, EngineConfig};
pub use mem::{events_bytes, factors_bytes, instance_bytes, session_footprint, SessionFootprint};
pub use policy::{LpStart, PolicyInputs, ResolveDecision, ResolveKind, ResolvePolicy};
pub use profile::{EngineProfile, ProfileEntry, SolveLedger};
pub use session::{Served, SessionExport};
pub use stats::{EngineStats, ShardSnapshot, StatsSnapshot, DEFAULT_SLO};
pub use transport::EngineTransport;
pub use warm::{solve_factors_warm, CacheMode, WarmOutcome};
// Observability types callers meet through `EngineConfig::obs` and
// `Engine::tracer()`, re-exported so embedders need not name `svgic-obs`.
pub use svgic_obs::{
    Health, HealthPolicy, MemoryFootprint, ObsConfig, Phase, PhaseAggregate, RequestWaterfall,
    SloObjective, SpanRecord, TelemetryRing, TelemetrySample, Tracer, WaterfallSpan,
};

/// The most common engine imports in one place.
pub mod prelude {
    pub use crate::api::{
        ConfigurationView, CreateSession, EngineError, EngineInfo, EngineRequest, EngineResponse,
        SessionEvent, SessionId,
    };
    pub use crate::engine::{Engine, EngineConfig};
    pub use crate::policy::{LpStart, ResolveKind, ResolvePolicy};
    pub use crate::profile::{EngineProfile, ProfileEntry};
    pub use crate::stats::StatsSnapshot;
    pub use crate::transport::EngineTransport;
}
