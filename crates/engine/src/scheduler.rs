//! Batched event coalescing.
//!
//! Events accumulate per session between flushes; at dispatch time the
//! scheduler folds the whole queue into one *net* state change. Join/leave
//! pairs cancel, repeated joins collapse, only the last catalogue/λ update
//! survives — so a session that receives 200 events but ends up where it
//! started costs zero solves. The number of events coalesced away is reported
//! to the stats module.

use std::collections::BTreeSet;

use svgic_core::extensions::DynamicEvent;
use svgic_core::{ItemIdx, UserIdx};

use crate::api::SessionEvent;

/// Net effect of a session's pending queue.
#[derive(Clone, Debug)]
pub struct CoalescedBatch {
    /// Population after applying every membership event.
    pub present: Vec<UserIdx>,
    /// New catalogue, when the net batch changes it.
    pub catalog: Option<Vec<ItemIdx>>,
    /// New λ, when the net batch changes it.
    pub lambda: Option<f64>,
    /// Number of raw events folded.
    pub raw_events: usize,
    /// Raw events that had no net effect (duplicates, cancelling pairs,
    /// superseded catalogue/λ updates).
    pub coalesced_away: usize,
    /// Whether the batch changes anything at all.
    pub dirty: bool,
    /// Whether the batch reshapes the base instance (catalogue or λ).
    pub reshaped: bool,
}

/// Folds `events` over the starting state, producing the net change.
///
/// `events` are assumed individually validated and normalized at submit time
/// (user/item indices in range, λ in `[0, 1]`, catalogue at least `k` items,
/// `SetCatalog` payloads sorted and deduplicated).
pub fn coalesce(
    present: &[UserIdx],
    catalog: &[ItemIdx],
    lambda: f64,
    events: &[SessionEvent],
) -> CoalescedBatch {
    let start: BTreeSet<UserIdx> = present.iter().copied().collect();
    let mut staged = start.clone();
    let mut staged_catalog: Option<Vec<ItemIdx>> = None;
    let mut staged_lambda: Option<f64> = None;

    for event in events {
        match event {
            SessionEvent::Membership(DynamicEvent::Join(user)) => {
                staged.insert(*user);
            }
            SessionEvent::Membership(DynamicEvent::Leave(user)) => {
                staged.remove(user);
            }
            SessionEvent::SetCatalog(items) => {
                staged_catalog = Some(items.clone());
            }
            SessionEvent::RetuneLambda(value) => {
                staged_lambda = Some(*value);
            }
        }
    }

    // Net membership change: symmetric difference against the start state.
    let net_membership = staged.symmetric_difference(&start).count();
    let net_catalog = staged_catalog
        .as_ref()
        .map(|items| items.as_slice() != catalog)
        .unwrap_or(false);
    let net_lambda = staged_lambda
        .map(|value| (value - lambda).abs() > f64::EPSILON)
        .unwrap_or(false);

    let net_effects = net_membership + usize::from(net_catalog) + usize::from(net_lambda);
    // Everything submitted beyond the net effect was amortized away. `effective`
    // counts per-event state flips, which can exceed the net count (join then
    // leave flips twice, nets zero).
    let coalesced_away = events.len().saturating_sub(net_effects.min(events.len()));

    CoalescedBatch {
        present: staged.into_iter().collect(),
        catalog: if net_catalog { staged_catalog } else { None },
        lambda: if net_lambda { staged_lambda } else { None },
        raw_events: events.len(),
        coalesced_away,
        dirty: net_effects > 0,
        reshaped: net_catalog || net_lambda,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn join(user: UserIdx) -> SessionEvent {
        SessionEvent::Membership(DynamicEvent::Join(user))
    }

    fn leave(user: UserIdx) -> SessionEvent {
        SessionEvent::Membership(DynamicEvent::Leave(user))
    }

    #[test]
    fn join_leave_pair_cancels() {
        let batch = coalesce(&[0, 1], &[0, 1, 2], 0.5, &[join(5), leave(5)]);
        assert_eq!(batch.present, vec![0, 1]);
        assert!(!batch.dirty);
        assert_eq!(batch.raw_events, 2);
        assert_eq!(batch.coalesced_away, 2);
    }

    #[test]
    fn duplicate_join_coalesces() {
        let batch = coalesce(&[0], &[0, 1], 0.5, &[join(1), join(1), join(1)]);
        assert_eq!(batch.present, vec![0, 1]);
        assert!(batch.dirty);
        assert_eq!(batch.coalesced_away, 2);
    }

    #[test]
    fn leave_of_absent_user_is_noop() {
        let batch = coalesce(&[0], &[0, 1], 0.5, &[leave(9)]);
        assert_eq!(batch.present, vec![0]);
        assert!(!batch.dirty);
        assert_eq!(batch.coalesced_away, 1);
    }

    #[test]
    fn last_catalog_update_wins() {
        let batch = coalesce(
            &[0],
            &[0, 1, 2],
            0.5,
            &[
                SessionEvent::SetCatalog(vec![0, 1]),
                SessionEvent::SetCatalog(vec![0, 1, 2]),
            ],
        );
        // The final (normalized) catalogue equals the starting one.
        assert!(batch.catalog.is_none());
        assert!(!batch.reshaped);
        assert!(!batch.dirty);
    }

    #[test]
    fn lambda_retune_reshapes() {
        let batch = coalesce(
            &[0],
            &[0, 1],
            0.5,
            &[
                SessionEvent::RetuneLambda(0.9),
                SessionEvent::RetuneLambda(0.7),
            ],
        );
        assert_eq!(batch.lambda, Some(0.7));
        assert!(batch.reshaped);
        assert!(batch.dirty);
        assert_eq!(batch.coalesced_away, 1);
    }

    #[test]
    fn mixed_net_change_counts() {
        let batch = coalesce(
            &[0, 1],
            &[0, 1, 2],
            0.5,
            &[join(2), leave(0), join(0), leave(1)],
        );
        // Net: +2, -1 → {0, 2}.
        assert_eq!(batch.present, vec![0, 2]);
        assert!(batch.dirty);
        assert_eq!(batch.raw_events, 4);
        assert_eq!(batch.coalesced_away, 2);
    }
}
