//! The re-solve policy: incremental re-rounding vs. full LP re-solve.
//!
//! An *incremental* solve reuses (possibly cached) LP factors computed over
//! the session's full population and merely re-runs the CSF rounding on the
//! rows of the present shoppers — the mechanism of the paper's §5 dynamic
//! scenario. A *full* solve re-runs the LP relaxation on the restricted
//! instance, producing a tight bound and fresher factors, at LP cost.
//!
//! The policy escalates to a full solve when enough membership churn has
//! accumulated since the last full solve, when the observed utility has
//! drifted too far from the last tight bound, or when the present population
//! is a small fraction of the full group (full-population factors are then a
//! poor guide).
//!
//! Orthogonally to incremental-vs-full, the policy picks how any needed LP
//! work *starts*: [`LpStart::Warm`] reuses cached per-component solutions
//! (identical factors, less work — see [`crate::warm`]), [`LpStart::Cold`]
//! recomputes everything (forced re-solves, or `warm_start_lp: false`).

/// How a scheduled re-solve should be executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolveKind {
    /// Re-round the present shoppers against full-population factors.
    Incremental,
    /// Re-run the LP relaxation on the restricted instance, then round.
    FullLp,
}

/// How a factor computation (when one is needed) should start.
///
/// Warm and cold produce **identical factors** — warm only reuses cached
/// solutions of social-graph components whose sub-instances are bit-identical
/// to previously solved ones, so it is a pure optimization. Cold exists as
/// the recompute-everything escape hatch (and as the baseline the warm path
/// is benchmarked against).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpStart {
    /// Reuse cached per-component solutions where fingerprints match.
    Warm,
    /// Solve every component from scratch (results still refresh the warm
    /// cache when warm-starting is enabled).
    Cold,
}

/// The policy's full verdict for one scheduled re-solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolveDecision {
    /// Incremental re-rounding vs. full LP re-solve.
    pub kind: ResolveKind,
    /// Warm vs. cold start for whatever LP work the solve needs.
    pub lp_start: LpStart,
}

/// Tunables deciding between [`ResolveKind`]s.
#[derive(Clone, Debug)]
pub struct ResolvePolicy {
    /// Full solve after this many applied events since the last full solve.
    pub full_resolve_event_budget: usize,
    /// Full solve when `(bound - utility) / bound` exceeds this value
    /// (measured against the last *tight* bound).
    pub drift_threshold: f64,
    /// Full solve when `present / full_population` drops below this fraction.
    pub min_population_fraction: f64,
    /// Catalogue or λ changes always force a full solve when `true`
    /// (they invalidate the factor fingerprint anyway, but the cache may
    /// still hold factors for the new fingerprint; `false` lets those hits
    /// serve incrementally).
    pub full_on_reshape: bool,
    /// Warm-start LP re-solves from cached per-component solutions. Purely
    /// an optimization — factors are identical either way — so this is `true`
    /// by default; `false` gives the cold baseline (and disables the
    /// component cache entirely). Forced re-solves are always cold.
    pub warm_start_lp: bool,
}

impl Default for ResolvePolicy {
    fn default() -> Self {
        ResolvePolicy {
            full_resolve_event_budget: 16,
            drift_threshold: 0.35,
            min_population_fraction: 0.25,
            full_on_reshape: false,
            warm_start_lp: true,
        }
    }
}

/// The per-session signals the policy reads.
#[derive(Clone, Copy, Debug)]
pub struct PolicyInputs {
    /// Applied events since the last full LP solve.
    pub events_since_full: usize,
    /// Present shoppers after applying the pending batch.
    pub present: usize,
    /// Size of the full population.
    pub full_population: usize,
    /// `(bound - utility) / bound` of the last served solution, if any.
    pub relative_gap: Option<f64>,
    /// Whether the pending batch reshapes the instance (catalogue / λ).
    pub reshaped: bool,
    /// Whether the caller explicitly requested a full solve.
    pub forced_full: bool,
}

impl ResolvePolicy {
    /// Decides how to execute the next re-solve: incremental vs. full, and
    /// warm vs. cold for whatever LP the choice entails.
    pub fn decide(&self, inputs: &PolicyInputs) -> ResolveDecision {
        ResolveDecision {
            kind: self.decide_kind(inputs),
            lp_start: self.decide_lp_start(inputs),
        }
    }

    fn decide_kind(&self, inputs: &PolicyInputs) -> ResolveKind {
        if inputs.forced_full {
            return ResolveKind::FullLp;
        }
        if inputs.reshaped && self.full_on_reshape {
            return ResolveKind::FullLp;
        }
        if inputs.events_since_full >= self.full_resolve_event_budget {
            return ResolveKind::FullLp;
        }
        if let Some(gap) = inputs.relative_gap {
            if gap > self.drift_threshold {
                return ResolveKind::FullLp;
            }
        }
        if inputs.full_population > 0 {
            let fraction = inputs.present as f64 / inputs.full_population as f64;
            if fraction < self.min_population_fraction {
                return ResolveKind::FullLp;
            }
        }
        ResolveKind::Incremental
    }

    fn decide_lp_start(&self, inputs: &PolicyInputs) -> LpStart {
        // A forced re-solve is the caller's escape hatch: recompute from
        // scratch (the results still refresh the warm cache).
        if inputs.forced_full || !self.warm_start_lp {
            LpStart::Cold
        } else {
            LpStart::Warm
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_inputs() -> PolicyInputs {
        PolicyInputs {
            events_since_full: 0,
            present: 8,
            full_population: 10,
            relative_gap: Some(0.05),
            reshaped: false,
            forced_full: false,
        }
    }

    #[test]
    fn defaults_to_incremental_and_warm() {
        let policy = ResolvePolicy::default();
        let decision = policy.decide(&base_inputs());
        assert_eq!(decision.kind, ResolveKind::Incremental);
        assert_eq!(decision.lp_start, LpStart::Warm);
    }

    #[test]
    fn escalates_on_event_budget() {
        let policy = ResolvePolicy::default();
        let inputs = PolicyInputs {
            events_since_full: policy.full_resolve_event_budget,
            ..base_inputs()
        };
        let decision = policy.decide(&inputs);
        assert_eq!(decision.kind, ResolveKind::FullLp);
        // A scheduled (non-forced) full solve still warm-starts.
        assert_eq!(decision.lp_start, LpStart::Warm);
    }

    #[test]
    fn escalates_on_drift() {
        let policy = ResolvePolicy::default();
        let inputs = PolicyInputs {
            relative_gap: Some(0.9),
            ..base_inputs()
        };
        assert_eq!(policy.decide(&inputs).kind, ResolveKind::FullLp);
    }

    #[test]
    fn escalates_on_small_population() {
        let policy = ResolvePolicy::default();
        let inputs = PolicyInputs {
            present: 1,
            ..base_inputs()
        };
        assert_eq!(policy.decide(&inputs).kind, ResolveKind::FullLp);
    }

    #[test]
    fn forced_wins_and_is_cold() {
        let policy = ResolvePolicy::default();
        let inputs = PolicyInputs {
            forced_full: true,
            ..base_inputs()
        };
        let decision = policy.decide(&inputs);
        assert_eq!(decision.kind, ResolveKind::FullLp);
        assert_eq!(decision.lp_start, LpStart::Cold);
    }

    #[test]
    fn disabling_warm_start_goes_cold() {
        let policy = ResolvePolicy {
            warm_start_lp: false,
            ..ResolvePolicy::default()
        };
        assert_eq!(policy.decide(&base_inputs()).lp_start, LpStart::Cold);
    }
}
