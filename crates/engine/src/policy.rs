//! The re-solve policy: incremental re-rounding vs. full LP re-solve.
//!
//! An *incremental* solve reuses (possibly cached) LP factors computed over
//! the session's full population and merely re-runs the CSF rounding on the
//! rows of the present shoppers — the mechanism of the paper's §5 dynamic
//! scenario. A *full* solve re-runs the LP relaxation on the restricted
//! instance, producing a tight bound and fresher factors, at LP cost.
//!
//! The policy escalates to a full solve when enough membership churn has
//! accumulated since the last full solve, when the observed utility has
//! drifted too far from the last tight bound, or when the present population
//! is a small fraction of the full group (full-population factors are then a
//! poor guide).

/// How a scheduled re-solve should be executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolveKind {
    /// Re-round the present shoppers against full-population factors.
    Incremental,
    /// Re-run the LP relaxation on the restricted instance, then round.
    FullLp,
}

/// Tunables deciding between [`ResolveKind`]s.
#[derive(Clone, Debug)]
pub struct ResolvePolicy {
    /// Full solve after this many applied events since the last full solve.
    pub full_resolve_event_budget: usize,
    /// Full solve when `(bound - utility) / bound` exceeds this value
    /// (measured against the last *tight* bound).
    pub drift_threshold: f64,
    /// Full solve when `present / full_population` drops below this fraction.
    pub min_population_fraction: f64,
    /// Catalogue or λ changes always force a full solve when `true`
    /// (they invalidate the factor fingerprint anyway, but the cache may
    /// still hold factors for the new fingerprint; `false` lets those hits
    /// serve incrementally).
    pub full_on_reshape: bool,
}

impl Default for ResolvePolicy {
    fn default() -> Self {
        ResolvePolicy {
            full_resolve_event_budget: 16,
            drift_threshold: 0.35,
            min_population_fraction: 0.25,
            full_on_reshape: false,
        }
    }
}

/// The per-session signals the policy reads.
#[derive(Clone, Copy, Debug)]
pub struct PolicyInputs {
    /// Applied events since the last full LP solve.
    pub events_since_full: usize,
    /// Present shoppers after applying the pending batch.
    pub present: usize,
    /// Size of the full population.
    pub full_population: usize,
    /// `(bound - utility) / bound` of the last served solution, if any.
    pub relative_gap: Option<f64>,
    /// Whether the pending batch reshapes the instance (catalogue / λ).
    pub reshaped: bool,
    /// Whether the caller explicitly requested a full solve.
    pub forced_full: bool,
}

impl ResolvePolicy {
    /// Decides how to execute the next re-solve.
    pub fn decide(&self, inputs: &PolicyInputs) -> ResolveKind {
        if inputs.forced_full {
            return ResolveKind::FullLp;
        }
        if inputs.reshaped && self.full_on_reshape {
            return ResolveKind::FullLp;
        }
        if inputs.events_since_full >= self.full_resolve_event_budget {
            return ResolveKind::FullLp;
        }
        if let Some(gap) = inputs.relative_gap {
            if gap > self.drift_threshold {
                return ResolveKind::FullLp;
            }
        }
        if inputs.full_population > 0 {
            let fraction = inputs.present as f64 / inputs.full_population as f64;
            if fraction < self.min_population_fraction {
                return ResolveKind::FullLp;
            }
        }
        ResolveKind::Incremental
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_inputs() -> PolicyInputs {
        PolicyInputs {
            events_since_full: 0,
            present: 8,
            full_population: 10,
            relative_gap: Some(0.05),
            reshaped: false,
            forced_full: false,
        }
    }

    #[test]
    fn defaults_to_incremental() {
        let policy = ResolvePolicy::default();
        assert_eq!(policy.decide(&base_inputs()), ResolveKind::Incremental);
    }

    #[test]
    fn escalates_on_event_budget() {
        let policy = ResolvePolicy::default();
        let inputs = PolicyInputs {
            events_since_full: policy.full_resolve_event_budget,
            ..base_inputs()
        };
        assert_eq!(policy.decide(&inputs), ResolveKind::FullLp);
    }

    #[test]
    fn escalates_on_drift() {
        let policy = ResolvePolicy::default();
        let inputs = PolicyInputs {
            relative_gap: Some(0.9),
            ..base_inputs()
        };
        assert_eq!(policy.decide(&inputs), ResolveKind::FullLp);
    }

    #[test]
    fn escalates_on_small_population() {
        let policy = ResolvePolicy::default();
        let inputs = PolicyInputs {
            present: 1,
            ..base_inputs()
        };
        assert_eq!(policy.decide(&inputs), ResolveKind::FullLp);
    }

    #[test]
    fn forced_wins() {
        let policy = ResolvePolicy::default();
        let inputs = PolicyInputs {
            forced_full: true,
            ..base_inputs()
        };
        assert_eq!(policy.decide(&inputs), ResolveKind::FullLp);
    }
}
