//! The driver-facing transport trait: one surface for in-process and remote
//! engines.
//!
//! [`EngineTransport`] is the contract the load drivers
//! (`svgic-workload`) and the cluster router (`svgic-cluster`) program
//! against. It has exactly one required method — [`EngineTransport::request`],
//! the typed request/response exchange — and provides every convenience
//! method (`create_session`, `flush`, `export_session`, …) as a default
//! implementation over it, so a transport only has to move
//! [`EngineRequest`]s and [`EngineResponse`]s.
//!
//! Two implementations exist:
//!
//! * [`Engine`] itself — `request` is [`Engine::handle`], a function call;
//! * `svgic_net::NetClient` — `request` is a codec round trip over a framed
//!   TCP connection to a remote `loadgen serve` process.
//!
//! Because the engine is deterministic and the codec is canonical, a driver
//! generic over `EngineTransport` produces **identical configuration
//! digests** through either implementation; only the latency changes. That
//! equality is asserted in `tests/net_service.rs` and the CI `net-smoke`
//! step.
//!
//! A transport that answers a request with the wrong response variant (a
//! server bug or a corrupted stream) surfaces as
//! [`EngineError::Transport`] — the only error the in-process engine never
//! returns.

use crate::api::{
    ConfigurationView, CreateSession, EngineError, EngineInfo, EngineRequest, EngineResponse,
    SessionEvent, SessionId,
};
use crate::engine::Engine;
use crate::session::SessionExport;
use crate::stats::StatsSnapshot;

/// Builds the error for a response variant the request can never produce.
fn mismatch(wanted: &'static str, got: &EngineResponse) -> EngineError {
    let got = match got {
        EngineResponse::SessionCreated(_) => "SessionCreated",
        EngineResponse::EventAccepted { .. } => "EventAccepted",
        EngineResponse::Configuration(_) => "Configuration",
        EngineResponse::Resolved(_) => "Resolved",
        EngineResponse::SessionClosed { .. } => "SessionClosed",
        EngineResponse::Flushed => "Flushed",
        EngineResponse::Stats(_) => "Stats",
        EngineResponse::StatsReset => "StatsReset",
        EngineResponse::SessionExported(_) => "SessionExported",
        EngineResponse::SessionImported(_) => "SessionImported",
        EngineResponse::Description(_) => "Description",
        EngineResponse::Metrics(_) => "Metrics",
        EngineResponse::Telemetry(_) => "Telemetry",
        EngineResponse::Profile(_) => "Profile",
        EngineResponse::StandbyStored => "StandbyStored",
        EngineResponse::StandbyTaken(_) => "StandbyTaken",
        EngineResponse::Crashed => "Crashed",
    };
    EngineError::Transport(format!("protocol mismatch: wanted {wanted}, got {got}"))
}

/// One engine-shaped endpoint: the in-process [`Engine`] or a remote engine
/// behind a wire protocol.
///
/// All provided methods are thin typed wrappers over [`request`]
/// — implementors only supply the exchange itself. Every method takes
/// `&mut self` because a remote transport writes to a socket even for reads.
///
/// [`request`]: EngineTransport::request
pub trait EngineTransport {
    /// Sends one request and returns the engine's response.
    ///
    /// Transport-level failures (IO, framing, codec) are reported as
    /// [`EngineError::Transport`]; engine-level rejections come back as the
    /// engine's own error variants, exactly as the in-process call would
    /// return them.
    fn request(&mut self, request: EngineRequest) -> Result<EngineResponse, EngineError>;

    /// Opens a session and solves its initial configuration.
    fn create_session(&mut self, spec: CreateSession) -> Result<ConfigurationView, EngineError> {
        match self.request(EngineRequest::CreateSession(Box::new(spec)))? {
            EngineResponse::SessionCreated(view) => Ok(view),
            other => Err(mismatch("SessionCreated", &other)),
        }
    }

    /// Queues an event; returns the session's pending-event count.
    fn submit_event(
        &mut self,
        session: SessionId,
        event: SessionEvent,
    ) -> Result<usize, EngineError> {
        match self.request(EngineRequest::SubmitEvent(session, event))? {
            EngineResponse::EventAccepted { pending, .. } => Ok(pending),
            other => Err(mismatch("EventAccepted", &other)),
        }
    }

    /// Reads the last served configuration without solving.
    fn query_configuration(
        &mut self,
        session: SessionId,
    ) -> Result<ConfigurationView, EngineError> {
        match self.request(EngineRequest::QueryConfiguration(session))? {
            EngineResponse::Configuration(view) => Ok(view),
            other => Err(mismatch("Configuration", &other)),
        }
    }

    /// Applies the session's pending events now and forces a full LP
    /// re-solve.
    fn force_resolve(&mut self, session: SessionId) -> Result<ConfigurationView, EngineError> {
        match self.request(EngineRequest::ForceResolve(session))? {
            EngineResponse::Resolved(view) => Ok(view),
            other => Err(mismatch("Resolved", &other)),
        }
    }

    /// Closes a session; returns its lifetime event count.
    fn close_session(&mut self, session: SessionId) -> Result<u64, EngineError> {
        match self.request(EngineRequest::CloseSession(session))? {
            EngineResponse::SessionClosed {
                lifetime_events, ..
            } => Ok(lifetime_events),
            other => Err(mismatch("SessionClosed", &other)),
        }
    }

    /// Applies every session's pending events in one batched dispatch.
    fn flush(&mut self) -> Result<(), EngineError> {
        match self.request(EngineRequest::Flush)? {
            EngineResponse::Flushed => Ok(()),
            other => Err(mismatch("Flushed", &other)),
        }
    }

    /// Reads a point-in-time snapshot of the engine counters.
    fn stats(&mut self) -> Result<StatsSnapshot, EngineError> {
        match self.request(EngineRequest::QueryStats)? {
            EngineResponse::Stats(snapshot) => Ok(*snapshot),
            other => Err(mismatch("Stats", &other)),
        }
    }

    /// Resets the engine counters (sessions and caches stay warm).
    fn reset_stats(&mut self) -> Result<(), EngineError> {
        match self.request(EngineRequest::ResetStats)? {
            EngineResponse::StatsReset => Ok(()),
            other => Err(mismatch("StatsReset", &other)),
        }
    }

    /// Drains a session into its transferable form (live-migration out).
    fn export_session(&mut self, session: SessionId) -> Result<SessionExport, EngineError> {
        match self.request(EngineRequest::ExportSession(session))? {
            EngineResponse::SessionExported(export) => Ok(*export),
            other => Err(mismatch("SessionExported", &other)),
        }
    }

    /// Adopts an exported session under a fresh local id (live-migration
    /// in).
    fn import_session(&mut self, export: SessionExport) -> Result<SessionId, EngineError> {
        match self.request(EngineRequest::ImportSession(Box::new(export)))? {
            EngineResponse::SessionImported(id) => Ok(id),
            other => Err(mismatch("SessionImported", &other)),
        }
    }

    /// Probes the engine's shape and occupancy.
    fn describe(&mut self) -> Result<EngineInfo, EngineError> {
        match self.request(EngineRequest::Describe)? {
            EngineResponse::Description(info) => Ok(info),
            other => Err(mismatch("Description", &other)),
        }
    }

    /// Scrapes the engine's exported metric series (the remote equivalent of
    /// `stats().metrics()`, without needing the snapshot codec).
    fn query_metrics(&mut self) -> Result<Vec<(String, f64)>, EngineError> {
        match self.request(EngineRequest::QueryMetrics)? {
            EngineResponse::Metrics(metrics) => Ok(metrics),
            other => Err(mismatch("Metrics", &other)),
        }
    }

    /// Reads the engine's telemetry ring, oldest sample first (empty when
    /// sampling is disabled or no flush has happened yet).
    fn query_telemetry(&mut self) -> Result<Vec<svgic_obs::TelemetrySample>, EngineError> {
        match self.request(EngineRequest::QueryTelemetry)? {
            EngineResponse::Telemetry(samples) => Ok(samples),
            other => Err(mismatch("Telemetry", &other)),
        }
    }

    /// Reads the engine's profile: the per-template solve ledger plus the
    /// critical-path view assembled from the flight recorder (span sections
    /// are empty when tracing is off).
    fn query_profile(&mut self) -> Result<crate::profile::EngineProfile, EngineError> {
        match self.request(EngineRequest::QueryProfile)? {
            EngineResponse::Profile(profile) => Ok(*profile),
            other => Err(mismatch("Profile", &other)),
        }
    }

    /// Clones a session into its transferable form without draining it (the
    /// replication half of warm standby).
    fn snapshot_session(&mut self, session: SessionId) -> Result<SessionExport, EngineError> {
        match self.request(EngineRequest::SnapshotSession(session))? {
            EngineResponse::SessionExported(export) => Ok(*export),
            other => Err(mismatch("SessionExported", &other)),
        }
    }

    /// Stores a standby replica under a cluster-assigned key (overwrites any
    /// previous replica under the same key).
    fn put_standby(&mut self, key: u64, export: SessionExport) -> Result<(), EngineError> {
        match self.request(EngineRequest::PutStandby(key, Box::new(export)))? {
            EngineResponse::StandbyStored => Ok(()),
            other => Err(mismatch("StandbyStored", &other)),
        }
    }

    /// Removes and returns the standby replica under a key, if any.
    fn take_standby(&mut self, key: u64) -> Result<Option<SessionExport>, EngineError> {
        match self.request(EngineRequest::TakeStandby(key))? {
            EngineResponse::StandbyTaken(export) => Ok(export.map(|b| *b)),
            other => Err(mismatch("StandbyTaken", &other)),
        }
    }

    /// Simulates a node crash: wipes the engine back to its
    /// freshly-constructed state (sessions, standbys, caches, counters).
    fn crash(&mut self) -> Result<(), EngineError> {
        match self.request(EngineRequest::Crash)? {
            EngineResponse::Crashed => Ok(()),
            other => Err(mismatch("Crashed", &other)),
        }
    }
}

impl EngineTransport for Engine {
    fn request(&mut self, request: EngineRequest) -> Result<EngineResponse, EngineError> {
        self.handle(request)
    }
}

impl<T: EngineTransport + ?Sized> EngineTransport for &mut T {
    fn request(&mut self, request: EngineRequest) -> Result<EngineResponse, EngineError> {
        (**self).request(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;
    use svgic_core::extensions::DynamicEvent;

    /// Drives the engine exclusively through the trait surface — what a
    /// remote client exercises — and checks the typed wrappers unwrap the
    /// right variants.
    #[test]
    fn trait_surface_covers_the_whole_engine() {
        let mut engine = Engine::new(crate::engine::EngineConfig {
            workers: 2,
            shards: 2,
            auto_flush_pending: 0,
            ..crate::engine::EngineConfig::default()
        });
        let backend: &mut dyn EngineTransport = &mut engine;
        let view = backend
            .create_session(CreateSession {
                instance: running_example(),
                initial_present: vec![],
                seed: 11,
            })
            .expect("creates");
        let id = view.session;
        let pending = backend
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(0)))
            .expect("submits");
        assert_eq!(pending, 1);
        backend.flush().expect("flushes");
        let view = backend.query_configuration(id).expect("queries");
        assert_eq!(view.present, vec![1, 2, 3]);
        let info = backend.describe().expect("describes");
        assert_eq!(info.workers, 2);
        assert_eq!(info.sessions, 1);
        assert_eq!(info.pending_events, 0);
        let metrics = backend.query_metrics().expect("scrapes");
        assert!(metrics
            .iter()
            .any(|(name, value)| name == "requests" && *value > 0.0));
        assert!(metrics.iter().all(|(_, value)| value.is_finite()));
        let telemetry = backend.query_telemetry().expect("telemetry");
        assert!(
            !telemetry.is_empty(),
            "the default engine samples telemetry on every flush"
        );
        let profile = backend.query_profile().expect("profiles");
        assert!(
            !profile.entries.is_empty(),
            "the default engine attributes solves to its template ledger"
        );
        assert!(
            profile.phases.is_empty() && profile.collapsed.is_empty(),
            "span sections stay empty while tracing is off"
        );
        let stats = backend.stats().expect("stats");
        assert_eq!(stats.sessions_created, 1);
        backend.reset_stats().expect("resets");
        assert_eq!(backend.stats().expect("stats").sessions_created, 0);
        let export = backend.export_session(id).expect("exports");
        assert!(export.has_warm_capital());
        let id = backend.import_session(export).expect("imports");
        let resolved = backend.force_resolve(id).expect("resolves");
        assert!(resolved.configuration.is_valid(resolved.catalog.len()));
        let lifetime = backend.close_session(id).expect("closes");
        assert_eq!(lifetime, 1);
        assert!(matches!(
            backend.query_configuration(id),
            Err(EngineError::UnknownSession(_))
        ));
    }

    /// The standby/crash wrappers: snapshot leaves the session live, a put
    /// standby comes back on take, and crash wipes everything.
    #[test]
    fn standby_surface_roundtrips_and_crash_wipes() {
        let mut engine = Engine::new(crate::engine::EngineConfig {
            workers: 1,
            shards: 1,
            auto_flush_pending: 0,
            ..crate::engine::EngineConfig::default()
        });
        let backend: &mut dyn EngineTransport = &mut engine;
        let view = backend
            .create_session(CreateSession {
                instance: running_example(),
                initial_present: vec![],
                seed: 21,
            })
            .expect("creates");
        let id = view.session;
        let snapshot = backend.snapshot_session(id).expect("snapshots");
        assert!(snapshot.has_warm_capital());
        backend
            .query_configuration(id)
            .expect("session stays live after a snapshot");
        backend.put_standby(0xBEEF, snapshot).expect("stores");
        assert!(
            backend.take_standby(0x5151).expect("takes").is_none(),
            "unknown key takes nothing"
        );
        let taken = backend
            .take_standby(0xBEEF)
            .expect("takes")
            .expect("replica present");
        assert_eq!(taken.generation, 1);
        assert!(
            backend.take_standby(0xBEEF).expect("takes").is_none(),
            "take removes the replica"
        );
        backend.put_standby(0xBEEF, taken).expect("stores again");
        backend.crash().expect("crashes");
        let info = backend.describe().expect("describes");
        assert_eq!(info.sessions, 0, "crash drops sessions");
        assert!(
            backend.take_standby(0xBEEF).expect("takes").is_none(),
            "crash drops standbys"
        );
        assert_eq!(
            backend.stats().expect("stats").sessions_created,
            0,
            "crash resets counters"
        );
        let view = backend
            .create_session(CreateSession {
                instance: running_example(),
                initial_present: vec![],
                seed: 21,
            })
            .expect("creates after crash");
        assert_eq!(view.session, SessionId(1), "session ids restart");
    }
}
