//! Engine-wide counters and latency accounting.
//!
//! All counters are atomics behind an [`Arc`](std::sync::Arc) so worker threads record
//! directly. Configurations and cache accounting are deterministic under a
//! fixed seed; wall-clock latencies naturally are not and are reported for
//! observability only.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use svgic_obs::{
    AtomicHistogram, Health, HealthPolicy, HistogramSnapshot, MetricsRegistry, SloObjective,
};

/// Default per-request-class latency objectives: `(class, objective)` for
/// each phase histogram the engine keeps. A class burns error budget when
/// more than `budget` of its samples exceed `objective_nanos`; the budgets
/// are deliberately loose (5%) so health flags sustained pressure, not a
/// stray slow solve.
pub const DEFAULT_SLO: [(&str, SloObjective); 4] = [
    ("lp", SloObjective::new(50_000_000, 0.05)),
    ("warm_solve", SloObjective::new(10_000_000, 0.05)),
    ("cold_solve", SloObjective::new(250_000_000, 0.05)),
    ("round", SloObjective::new(20_000_000, 0.05)),
];

/// Per-shard counters: how busy each shard is and how much work is queued
/// against it. `queue_depth` and `cache_entries` are **gauges** (pending
/// events / cached factor entries of the shard right now), the rest are
/// monotonic. Load-aware cluster rebalancing reads these to find hot nodes;
/// they are useful observability on their own.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Pipeline jobs dispatched to this shard.
    pub jobs: AtomicU64,
    /// Session solves executed by this shard.
    pub solves: AtomicU64,
    /// Nanoseconds this shard's jobs spent busy (restrict + factors + round).
    pub busy_nanos: AtomicU64,
    /// Pending events currently queued against this shard's sessions
    /// (incremented at submit, drained at dispatch/close/export).
    pub queue_depth: AtomicU64,
    /// Entries in this shard's factor cache right now (gauge, refreshed at
    /// the end of each shard pipeline job).
    pub cache_entries: AtomicU64,
    /// Bytes held by this shard's factor and component caches right now
    /// (gauge, refreshed alongside `cache_entries`; capacity accounting per
    /// `svgic_obs::mem`).
    pub cache_bytes: AtomicU64,
}

/// Monotonic counters shared between the engine and its workers.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Requests handled (all five request kinds).
    pub requests: AtomicU64,
    /// Sessions opened.
    pub sessions_created: AtomicU64,
    /// Sessions closed.
    pub sessions_closed: AtomicU64,
    /// Sessions exported (live-migrated out, not counted as closed).
    pub sessions_exported: AtomicU64,
    /// Sessions imported (live-migrated in, not counted as created).
    pub sessions_imported: AtomicU64,
    /// Per-shard busy/queue counters (length = the engine's shard count;
    /// empty for a bare `EngineStats::default()`).
    pub per_shard: Vec<ShardStats>,
    /// Events accepted into pending queues.
    pub events_submitted: AtomicU64,
    /// Events folded away by the batch coalescer.
    pub events_coalesced: AtomicU64,
    /// Dispatch batches run.
    pub batches: AtomicU64,
    /// Solves executed incrementally (re-round on cached/base factors).
    pub solves_incremental: AtomicU64,
    /// Solves executed as full LP re-solves.
    pub solves_full: AtomicU64,
    /// Factor-cache hits (LP skipped because a previous batch computed it).
    pub cache_hits: AtomicU64,
    /// Factor-cache misses (LP executed).
    pub cache_misses: AtomicU64,
    /// LP solves skipped because another session in the *same* batch needed
    /// the same fingerprint (batch dedup, distinct from cache reuse).
    pub batch_shared: AtomicU64,
    /// Factor lookups satisfied by the session's own last solution (the
    /// session-affine fast path; also counted in `cache_hits`).
    pub session_reuse: AtomicU64,
    /// Re-solves served warm: factors obtained from an exact reuse layer
    /// (session-affine, fingerprint cache, or within-batch sharing) instead
    /// of a fresh LP computation.
    pub solves_warm: AtomicU64,
    /// Re-solves served cold: factors computed from scratch.
    pub solves_cold: AtomicU64,
    /// Social-graph components reused verbatim from the warm cache.
    pub warm_components_reused: AtomicU64,
    /// Social-graph components solved from scratch.
    pub warm_components_solved: AtomicU64,
    /// Total nanoseconds spent in LP relaxation jobs.
    pub lp_nanos: AtomicU64,
    /// Total nanoseconds of warm re-solves (factor resolution + rounding).
    pub warm_solve_nanos: AtomicU64,
    /// Total nanoseconds of cold re-solves (LP computation + rounding).
    pub cold_solve_nanos: AtomicU64,
    /// Total nanoseconds spent in rounding jobs.
    pub round_nanos: AtomicU64,
    /// Slowest single job (one LP relaxation or one rounding pass) observed,
    /// in nanoseconds. LP and rounding run as separate pool jobs (an LP can
    /// serve many solves), so there is no meaningful combined per-solve total.
    pub max_solve_nanos: AtomicU64,
    /// Sum of per-solve `(bound - utility) / bound` gaps, in micro-units,
    /// over solves with a tight bound.
    pub gap_micros: AtomicU64,
    /// Number of solves contributing to `gap_micros`.
    pub gap_samples: AtomicU64,
    /// Per-LP-computation latency distribution (one sample per cache miss —
    /// the same events that feed `lp_nanos`/`cache_misses`).
    pub lp_latency: AtomicHistogram,
    /// Per-re-solve latency distribution, warm class.
    pub warm_solve_latency: AtomicHistogram,
    /// Per-re-solve latency distribution, cold class.
    pub cold_solve_latency: AtomicHistogram,
    /// Per-rounding-job latency distribution (one sample per solve).
    pub round_latency: AtomicHistogram,
    /// Queue-wait distribution: one sample per shard pipeline job with
    /// pending events, measuring how long the shard's oldest enqueued event
    /// waited between submit and the job starting.
    pub queue_wait_latency: AtomicHistogram,
    /// Bytes held by live session state — instances (full + diverged base)
    /// and warm factors (gauge, refreshed by `Engine::stats`).
    pub mem_session_bytes: AtomicU64,
    /// Bytes held by pending (un-flushed) event queues (gauge).
    pub mem_pending_bytes: AtomicU64,
    /// Bytes held by served solutions (gauge).
    pub mem_served_bytes: AtomicU64,
}

impl EngineStats {
    /// Stats for an engine with `shards` session shards.
    pub fn with_shards(shards: usize) -> Self {
        EngineStats {
            per_shard: (0..shards).map(|_| ShardStats::default()).collect(),
            ..EngineStats::default()
        }
    }

    /// Records one pipeline job dispatched to `shard` covering `solves`
    /// session solves.
    pub fn record_shard_dispatch(&self, shard: usize, solves: u64) {
        if let Some(stats) = self.per_shard.get(shard) {
            // lint: allow(relaxed-store, independent monotonic counters; a torn pair only skews a transient rate)
            stats.jobs.fetch_add(1, Ordering::Relaxed);
            stats.solves.fetch_add(solves, Ordering::Relaxed);
        }
    }

    /// Adds busy nanoseconds to `shard`'s clock.
    pub fn record_shard_busy(&self, shard: usize, nanos: u64) {
        if let Some(stats) = self.per_shard.get(shard) {
            // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
            stats.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Refreshes `shard`'s factor-cache gauges (entry count and bytes) as one
    /// published pair.
    ///
    /// The two gauges describe the same cache state and are read together by
    /// [`EngineStats::snapshot`]; publishing them independently with relaxed
    /// stores is exactly the multi-field gauge race PR 7 fixed in
    /// `sample_telemetry`. The byte store is made visible *before* the entry
    /// store (Release), and `snapshot` loads entries with Acquire first, so
    /// any snapshot that observes an entry count also observes a byte figure
    /// at least as recent as that count's pair.
    pub fn set_shard_cache_gauges(&self, shard: usize, entries: usize, bytes: u64) {
        if let Some(stats) = self.per_shard.get(shard) {
            // lint: allow(relaxed-store, ordered by the Release store of cache_entries below; see the doc comment)
            stats.cache_bytes.store(bytes, Ordering::Relaxed);
            stats.cache_entries.store(entries as u64, Ordering::Release);
        }
    }

    /// Refreshes the engine-level memory gauges (session / pending / served
    /// bytes). Called by `Engine::stats` just before snapshotting, so wire
    /// scrapes and local reads see the same accounting.
    pub fn set_mem_gauges(&self, session_bytes: u64, pending_bytes: u64, served_bytes: u64) {
        // Written and then read by the same snapshotting thread
        // (`Engine::stats` refreshes, then snapshots), so the three gauges
        // need no cross-thread publish ordering.
        // lint: allow(relaxed-store, same-thread write-then-read; no cross-thread pairing)
        let set = |gauge: &AtomicU64, v: u64| gauge.store(v, Ordering::Relaxed);
        set(&self.mem_session_bytes, session_bytes);
        set(&self.mem_pending_bytes, pending_bytes);
        set(&self.mem_served_bytes, served_bytes);
    }

    /// Raises `shard`'s queue-depth gauge by `events`.
    pub fn shard_queue_add(&self, shard: usize, events: usize) {
        if let Some(stats) = self.per_shard.get(shard) {
            // lint: allow(relaxed-store, single saturating gauge; no paired state)
            stats
                .queue_depth
                .fetch_add(events as u64, Ordering::Relaxed);
        }
    }

    /// Lowers `shard`'s queue-depth gauge by `events` (saturating — the
    /// gauge never wraps even if bookkeeping and a reset race).
    pub fn shard_queue_sub(&self, shard: usize, events: usize) {
        if let Some(stats) = self.per_shard.get(shard) {
            // lint: allow(relaxed-store, single saturating gauge; no paired state)
            let _ = stats
                .queue_depth
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |depth| {
                    Some(depth.saturating_sub(events as u64))
                });
        }
    }

    /// Records one job's duration (exactly one of `lp`/`rounding` is
    /// non-zero per call), updating totals and the slowest-job high-water
    /// mark.
    pub fn record_solve_nanos(&self, lp: u64, rounding: u64) {
        // lint: allow(relaxed-store, cumulative totals read for means; a torn read skews one transient mean only)
        self.lp_nanos.fetch_add(lp, Ordering::Relaxed);
        self.round_nanos.fetch_add(rounding, Ordering::Relaxed);
        // lint: allow(relaxed-store, high-water mark; fetch_max keeps it monotonic regardless of order)
        self.max_solve_nanos
            .fetch_max(lp.max(rounding), Ordering::Relaxed);
    }

    /// Records one LP factor computation: its duration and how many
    /// social-graph components it warm-reused vs. solved.
    pub fn record_lp_compute(&self, nanos: u64, reused_components: u64, solved_components: u64) {
        self.record_solve_nanos(nanos, 0);
        self.lp_latency.record_nanos(nanos);
        // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
        self.warm_components_reused
            .fetch_add(reused_components, Ordering::Relaxed);
        // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
        self.warm_components_solved
            .fetch_add(solved_components, Ordering::Relaxed);
    }

    /// Records one rounding job: aggregate time plus the per-job latency
    /// distribution (every solve rounds exactly once).
    pub fn record_round(&self, nanos: u64) {
        self.record_solve_nanos(0, nanos);
        self.round_latency.record_nanos(nanos);
    }

    /// Records one whole re-solve (factor resolution through rounding) as
    /// warm (factors reused) or cold (factors computed).
    pub fn record_solve_class(&self, nanos: u64, warm: bool) {
        if warm {
            // lint: allow(relaxed-store, cumulative count and nanos totals; a torn mean is transient and self-corrects)
            self.solves_warm.fetch_add(1, Ordering::Relaxed);
            self.warm_solve_nanos.fetch_add(nanos, Ordering::Relaxed);
            self.warm_solve_latency.record_nanos(nanos);
        } else {
            // lint: allow(relaxed-store, cumulative count and nanos totals; a torn mean is transient and self-corrects)
            self.solves_cold.fetch_add(1, Ordering::Relaxed);
            self.cold_solve_nanos.fetch_add(nanos, Ordering::Relaxed);
            self.cold_solve_latency.record_nanos(nanos);
        }
    }

    /// Records how long a shard's oldest pending event waited between submit
    /// and its shard pipeline job starting (one sample per dispatched shard
    /// job that had pending events).
    pub fn record_queue_wait(&self, nanos: u64) {
        self.queue_wait_latency.record_nanos(nanos);
    }

    /// Records a utility-vs-bound gap sample (tight bounds only).
    pub fn record_gap(&self, utility: f64, bound: f64) {
        if bound > 0.0 && utility.is_finite() {
            let gap = ((bound - utility) / bound).clamp(0.0, 1.0);
            // lint: allow(relaxed-store, cumulative sum and sample-count totals; a torn mean is transient and self-corrects)
            self.gap_micros
                .fetch_add((gap * 1e6) as u64, Ordering::Relaxed);
            self.gap_samples.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Resets every counter to zero, so a measured run can exclude warmup
    /// traffic without rebuilding the engine and losing its caches. The
    /// per-shard **queue-depth and cache-size gauges and the `mem_*` byte
    /// gauges are left alone**: they track live pending events, live cache
    /// contents and live session state, which a measurement boundary does
    /// not consume.
    pub fn reset(&self) {
        // lint: allow(relaxed-store, reset is a driver-side measurement boundary; writers are quiesced between runs)
        let clear = |counter: &AtomicU64| counter.store(0, Ordering::Relaxed);
        for shard in &self.per_shard {
            clear(&shard.jobs);
            clear(&shard.solves);
            clear(&shard.busy_nanos);
        }
        self.lp_latency.reset();
        self.warm_solve_latency.reset();
        self.cold_solve_latency.reset();
        self.round_latency.reset();
        self.queue_wait_latency.reset();
        clear(&self.requests);
        clear(&self.sessions_created);
        clear(&self.sessions_closed);
        clear(&self.sessions_exported);
        clear(&self.sessions_imported);
        clear(&self.events_submitted);
        clear(&self.events_coalesced);
        clear(&self.batches);
        clear(&self.solves_incremental);
        clear(&self.solves_full);
        clear(&self.cache_hits);
        clear(&self.cache_misses);
        clear(&self.batch_shared);
        clear(&self.session_reuse);
        clear(&self.solves_warm);
        clear(&self.solves_cold);
        clear(&self.warm_components_reused);
        clear(&self.warm_components_solved);
        clear(&self.lp_nanos);
        clear(&self.warm_solve_nanos);
        clear(&self.cold_solve_nanos);
        clear(&self.round_nanos);
        clear(&self.max_solve_nanos);
        clear(&self.gap_micros);
        clear(&self.gap_samples);
    }

    /// A point-in-time copy of every counter plus derived rates.
    pub fn snapshot(&self) -> StatsSnapshot {
        let load = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        StatsSnapshot {
            requests: load(&self.requests),
            sessions_created: load(&self.sessions_created),
            sessions_closed: load(&self.sessions_closed),
            sessions_exported: load(&self.sessions_exported),
            sessions_imported: load(&self.sessions_imported),
            shards: self
                .per_shard
                .iter()
                .map(|shard| ShardSnapshot {
                    jobs: load(&shard.jobs),
                    solves: load(&shard.solves),
                    busy_time: Duration::from_nanos(load(&shard.busy_nanos)),
                    queue_depth: load(&shard.queue_depth),
                    // Acquire pairs with the Release store in
                    // `set_shard_cache_gauges`: seeing an entry count makes
                    // its paired byte store visible (struct fields evaluate
                    // in source order, so entries is read first).
                    cache_entries: shard.cache_entries.load(Ordering::Acquire),
                    cache_bytes: load(&shard.cache_bytes),
                })
                .collect(),
            events_submitted: load(&self.events_submitted),
            events_coalesced: load(&self.events_coalesced),
            batches: load(&self.batches),
            solves_incremental: load(&self.solves_incremental),
            solves_full: load(&self.solves_full),
            cache_hits: load(&self.cache_hits),
            cache_misses: load(&self.cache_misses),
            batch_shared: load(&self.batch_shared),
            session_reuse: load(&self.session_reuse),
            solves_warm: load(&self.solves_warm),
            solves_cold: load(&self.solves_cold),
            warm_components_reused: load(&self.warm_components_reused),
            warm_components_solved: load(&self.warm_components_solved),
            lp_time: Duration::from_nanos(load(&self.lp_nanos)),
            warm_solve_time: Duration::from_nanos(load(&self.warm_solve_nanos)),
            cold_solve_time: Duration::from_nanos(load(&self.cold_solve_nanos)),
            round_time: Duration::from_nanos(load(&self.round_nanos)),
            max_solve_time: Duration::from_nanos(load(&self.max_solve_nanos)),
            gap_micros: load(&self.gap_micros),
            gap_samples: load(&self.gap_samples),
            lp_latency: self.lp_latency.snapshot(),
            warm_solve_latency: self.warm_solve_latency.snapshot(),
            cold_solve_latency: self.cold_solve_latency.snapshot(),
            round_latency: self.round_latency.snapshot(),
            queue_wait_latency: self.queue_wait_latency.snapshot(),
            profile: Vec::new(),
            profile_dropped: 0,
            mem_session_bytes: load(&self.mem_session_bytes),
            mem_pending_bytes: load(&self.mem_pending_bytes),
            mem_served_bytes: load(&self.mem_served_bytes),
        }
    }
}

/// Point-in-time view of one shard's counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Pipeline jobs dispatched to the shard.
    pub jobs: u64,
    /// Session solves the shard executed.
    pub solves: u64,
    /// Cumulative busy time of the shard's jobs.
    pub busy_time: Duration,
    /// Pending events queued against the shard right now (gauge).
    pub queue_depth: u64,
    /// Factor-cache entries held by the shard right now (gauge).
    pub cache_entries: u64,
    /// Bytes held by the shard's factor caches right now (gauge).
    pub cache_bytes: u64,
}

/// A consistent view of the engine counters with derived metrics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests handled.
    pub requests: u64,
    /// Sessions opened.
    pub sessions_created: u64,
    /// Sessions closed.
    pub sessions_closed: u64,
    /// Sessions live-migrated out.
    pub sessions_exported: u64,
    /// Sessions live-migrated in.
    pub sessions_imported: u64,
    /// Per-shard busy/queue counters (one entry per shard).
    pub shards: Vec<ShardSnapshot>,
    /// Events accepted.
    pub events_submitted: u64,
    /// Events coalesced away before solving.
    pub events_coalesced: u64,
    /// Dispatch batches run.
    pub batches: u64,
    /// Incremental solves.
    pub solves_incremental: u64,
    /// Full LP solves.
    pub solves_full: u64,
    /// Factor-cache hits.
    pub cache_hits: u64,
    /// Factor-cache misses.
    pub cache_misses: u64,
    /// LP solves deduplicated within a single batch.
    pub batch_shared: u64,
    /// Factor lookups satisfied by the session's own last solution.
    pub session_reuse: u64,
    /// Re-solves whose factors came from an exact reuse layer.
    pub solves_warm: u64,
    /// Re-solves that computed factors from scratch.
    pub solves_cold: u64,
    /// Component solutions reused verbatim from the warm cache.
    pub warm_components_reused: u64,
    /// Component solutions solved from scratch.
    pub warm_components_solved: u64,
    /// Cumulative LP time.
    pub lp_time: Duration,
    /// Cumulative latency of warm re-solves (reuse + rounding).
    pub warm_solve_time: Duration,
    /// Cumulative latency of cold re-solves (LP + rounding).
    pub cold_solve_time: Duration,
    /// Cumulative rounding time.
    pub round_time: Duration,
    /// Slowest single job (LP relaxation or rounding pass).
    pub max_solve_time: Duration,
    /// Sum of tight-bound gaps in micro-units.
    pub gap_micros: u64,
    /// Tight-bound gap samples.
    pub gap_samples: u64,
    /// Per-LP-computation latency distribution.
    pub lp_latency: HistogramSnapshot,
    /// Per-warm-re-solve latency distribution.
    pub warm_solve_latency: HistogramSnapshot,
    /// Per-cold-re-solve latency distribution.
    pub cold_solve_latency: HistogramSnapshot,
    /// Per-rounding-job latency distribution.
    pub round_latency: HistogramSnapshot,
    /// Queue-wait distribution (oldest pending event's submit→dispatch wait,
    /// one sample per dispatched shard job with pending events).
    pub queue_wait_latency: HistogramSnapshot,
    /// Per-template solve ledger entries, ascending by template fingerprint
    /// (populated by `Engine::stats`; empty for a bare `EngineStats`
    /// snapshot). Counts are deterministic under a fixed seed; nanos are
    /// wall-clock and never digest-covered.
    pub profile: Vec<crate::profile::ProfileEntry>,
    /// Template solves the ledger dropped because its fixed capacity was
    /// exhausted (attributed to no entry; `0` means full coverage).
    pub profile_dropped: u64,
    /// Bytes held by live session state (instances + warm factors) right
    /// now (gauge; capacity accounting per `svgic_obs::mem`).
    pub mem_session_bytes: u64,
    /// Bytes held by pending event queues right now (gauge).
    pub mem_pending_bytes: u64,
    /// Bytes held by served solutions right now (gauge).
    pub mem_served_bytes: u64,
}

impl StatsSnapshot {
    /// Total solves of either kind.
    pub fn solves(&self) -> u64 {
        self.solves_incremental + self.solves_full
    }

    /// Pending events queued engine-wide right now (sum of the per-shard
    /// queue-depth gauges).
    pub fn total_queue_depth(&self) -> u64 {
        self.shards.iter().map(|s| s.queue_depth).sum()
    }

    /// Folds another snapshot into this one: counters and durations add,
    /// high-water marks take the max, and the per-shard vectors add
    /// element-wise (padded with zeros when lengths differ). This is how a
    /// cluster aggregates per-node engine snapshots into one fleet view;
    /// derived rates stay consistent because they are recomputed from the
    /// merged raw counters.
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.requests += other.requests;
        self.sessions_created += other.sessions_created;
        self.sessions_closed += other.sessions_closed;
        self.sessions_exported += other.sessions_exported;
        self.sessions_imported += other.sessions_imported;
        if self.shards.len() < other.shards.len() {
            self.shards
                .resize(other.shards.len(), ShardSnapshot::default());
        }
        for (mine, theirs) in self.shards.iter_mut().zip(&other.shards) {
            mine.jobs += theirs.jobs;
            mine.solves += theirs.solves;
            mine.busy_time += theirs.busy_time;
            mine.queue_depth += theirs.queue_depth;
            mine.cache_entries += theirs.cache_entries;
            mine.cache_bytes += theirs.cache_bytes;
        }
        self.events_submitted += other.events_submitted;
        self.events_coalesced += other.events_coalesced;
        self.batches += other.batches;
        self.solves_incremental += other.solves_incremental;
        self.solves_full += other.solves_full;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.batch_shared += other.batch_shared;
        self.session_reuse += other.session_reuse;
        self.solves_warm += other.solves_warm;
        self.solves_cold += other.solves_cold;
        self.warm_components_reused += other.warm_components_reused;
        self.warm_components_solved += other.warm_components_solved;
        self.lp_time += other.lp_time;
        self.warm_solve_time += other.warm_solve_time;
        self.cold_solve_time += other.cold_solve_time;
        self.round_time += other.round_time;
        self.max_solve_time = self.max_solve_time.max(other.max_solve_time);
        self.gap_micros += other.gap_micros;
        self.gap_samples += other.gap_samples;
        self.lp_latency.merge(&other.lp_latency);
        self.warm_solve_latency.merge(&other.warm_solve_latency);
        self.cold_solve_latency.merge(&other.cold_solve_latency);
        self.round_latency.merge(&other.round_latency);
        self.queue_wait_latency.merge(&other.queue_wait_latency);
        crate::profile::merge_entries(&mut self.profile, &other.profile);
        self.profile_dropped += other.profile_dropped;
        self.mem_session_bytes += other.mem_session_bytes;
        self.mem_pending_bytes += other.mem_pending_bytes;
        self.mem_served_bytes += other.mem_served_bytes;
    }

    /// Factor-cache hit rate in `[0, 1]` (`0` when no lookups happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Mean solve latency (LP + rounding amortized over solves).
    pub fn mean_solve_time(&self) -> Duration {
        let solves = self.solves();
        if solves == 0 {
            Duration::ZERO
        } else {
            (self.lp_time + self.round_time) / solves as u32
        }
    }

    /// Mean `(bound - utility) / bound` over tight-bound solves.
    pub fn mean_gap(&self) -> f64 {
        if self.gap_samples == 0 {
            0.0
        } else {
            self.gap_micros as f64 / 1e6 / self.gap_samples as f64
        }
    }

    /// Fraction of submitted events folded away by the coalescer, in
    /// `[0, 1]` (`0` when nothing was submitted).
    pub fn coalesce_rate(&self) -> f64 {
        if self.events_submitted == 0 {
            0.0
        } else {
            self.events_coalesced as f64 / self.events_submitted as f64
        }
    }

    /// Fraction of solves served by the cheap incremental re-rounding path.
    pub fn incremental_fraction(&self) -> f64 {
        let solves = self.solves();
        if solves == 0 {
            0.0
        } else {
            self.solves_incremental as f64 / solves as f64
        }
    }

    /// Mean latency of one LP relaxation job (LP jobs run once per cache
    /// miss; hits and batch-shared solves skip the LP entirely). Derived
    /// from the per-phase histogram, so `p50/p95/p99` companions in
    /// [`StatsSnapshot::metrics`] describe the same sample set; zero (never
    /// NaN) when no LP ran.
    pub fn mean_lp_time(&self) -> Duration {
        mean_of(&self.lp_latency)
    }

    /// Fraction of re-solves served warm — factors reused from the session,
    /// a fingerprint cache, or within-batch sharing rather than recomputed —
    /// in `[0, 1]` (`0` when nothing was solved).
    pub fn warm_start_rate(&self) -> f64 {
        let solves = self.solves_warm + self.solves_cold;
        if solves == 0 {
            0.0
        } else {
            self.solves_warm as f64 / solves as f64
        }
    }

    /// Fraction of social-graph components reused verbatim instead of
    /// re-solved, in `[0, 1]` (`0` when no LP ran).
    pub fn component_reuse_rate(&self) -> f64 {
        let components = self.warm_components_reused + self.warm_components_solved;
        if components == 0 {
            0.0
        } else {
            self.warm_components_reused as f64 / components as f64
        }
    }

    /// Mean end-to-end latency of one warm re-solve (zero when none ran),
    /// from the warm-class phase histogram.
    pub fn mean_warm_solve_time(&self) -> Duration {
        mean_of(&self.warm_solve_latency)
    }

    /// Mean end-to-end latency of one cold re-solve (zero when none ran),
    /// from the cold-class phase histogram.
    pub fn mean_cold_solve_time(&self) -> Duration {
        mean_of(&self.cold_solve_latency)
    }

    /// Mean latency of one rounding job (every solve rounds exactly once),
    /// from the rounding phase histogram.
    pub fn mean_round_time(&self) -> Duration {
        mean_of(&self.round_latency)
    }

    /// Shard busy-time imbalance: the busiest shard's busy-nanos over the
    /// mean across shards. `1.0` is a perfectly even spread, `shards` is
    /// everything on one shard, `0.0` when no shard did any work — so the
    /// sharded-dispatch skew is visible per run without eyeballing the
    /// `shard<i>_busy_seconds` series.
    pub fn shard_imbalance(&self) -> f64 {
        let busy: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.busy_time.as_nanos().min(u64::MAX as u128) as u64)
            .collect();
        let total: u64 = busy.iter().sum();
        if busy.is_empty() || total == 0 {
            return 0.0;
        }
        let max = *busy.iter().max().expect("non-empty") as f64;
        let mean = total as f64 / busy.len() as f64;
        max / mean
    }

    /// Factor-cache entries held engine-wide right now (sum of the
    /// per-shard cache-size gauges).
    pub fn total_cache_entries(&self) -> u64 {
        self.shards.iter().map(|s| s.cache_entries).sum()
    }

    /// Bytes held by factor caches engine-wide right now (sum of the
    /// per-shard cache-byte gauges).
    pub fn mem_cache_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.cache_bytes).sum()
    }

    /// Total accounted bytes: session state + pending queues + served
    /// solutions + factor caches. Capacity accounting (`Arc`-shared
    /// payloads attributed to every holder), not RSS — see
    /// `svgic_obs::mem`.
    pub fn mem_total_bytes(&self) -> u64 {
        self.mem_session_bytes
            + self.mem_pending_bytes
            + self.mem_served_bytes
            + self.mem_cache_bytes()
    }

    /// Error-budget burn per request class, against [`DEFAULT_SLO`]: the
    /// observed fraction of samples over the class objective divided by the
    /// allowed fraction. All zero (never NaN) with no traffic.
    pub fn slo_burns(&self) -> [(&'static str, f64); 4] {
        let histogram = |class: &str| match class {
            "lp" => &self.lp_latency,
            "warm_solve" => &self.warm_solve_latency,
            "cold_solve" => &self.cold_solve_latency,
            _ => &self.round_latency,
        };
        DEFAULT_SLO.map(|(class, objective)| (class, objective.burn(histogram(class))))
    }

    /// The worst per-class burn (what [`StatsSnapshot::health`] thresholds
    /// on).
    pub fn max_slo_burn(&self) -> f64 {
        self.slo_burns()
            .iter()
            .map(|&(_, burn)| burn)
            .fold(0.0, f64::max)
    }

    /// Node health under the default [`HealthPolicy`] (no memory budget):
    /// `ok` under budget, `degraded` past it, `overloaded` far past it.
    pub fn health(&self) -> Health {
        self.health_with(&HealthPolicy::default())
    }

    /// Node health under an explicit policy (a memory budget makes the
    /// `mem_*` gauges participate).
    pub fn health_with(&self, policy: &HealthPolicy) -> Health {
        policy.assess(self.max_slo_burn(), self.mem_total_bytes())
    }

    /// The whole snapshot — raw counters *and* every derived rate — as an
    /// ordered `(name, value)` list, so reports (the `loadgen` JSON, the
    /// bench trajectory, the `QueryMetrics` wire response) can serialize it
    /// without re-deriving metrics ad hoc. Assembled through the
    /// [`MetricsRegistry`], the single source of truth for naming and
    /// NaN-guarding. Times are in seconds; rates/fractions are in `[0, 1]`;
    /// the per-phase latency distributions appear as
    /// `mean/p50/p95/p99_<phase>_seconds` quadruples. Per-shard
    /// busy/queue/cache counters are appended as `shard<i>_*` entries.
    pub fn metrics(&self) -> Vec<(String, f64)> {
        let mut registry = MetricsRegistry::new();
        registry.counter("requests", self.requests);
        registry.counter("sessions_created", self.sessions_created);
        registry.counter("sessions_closed", self.sessions_closed);
        registry.counter("sessions_exported", self.sessions_exported);
        registry.counter("sessions_imported", self.sessions_imported);
        registry.counter("events_submitted", self.events_submitted);
        registry.counter("events_coalesced", self.events_coalesced);
        registry.counter("batches", self.batches);
        registry.counter("solves_incremental", self.solves_incremental);
        registry.counter("solves_full", self.solves_full);
        registry.counter("cache_hits", self.cache_hits);
        registry.counter("cache_misses", self.cache_misses);
        registry.counter("batch_shared", self.batch_shared);
        registry.counter("session_reuse", self.session_reuse);
        registry.counter("solves_warm", self.solves_warm);
        registry.counter("solves_cold", self.solves_cold);
        registry.counter("warm_components_reused", self.warm_components_reused);
        registry.counter("warm_components_solved", self.warm_components_solved);
        registry.counter("gap_samples", self.gap_samples);
        registry.gauge("cache_hit_rate", self.cache_hit_rate());
        registry.gauge("coalesce_rate", self.coalesce_rate());
        registry.gauge("incremental_fraction", self.incremental_fraction());
        registry.gauge("warm_start_rate", self.warm_start_rate());
        registry.gauge("component_reuse_rate", self.component_reuse_rate());
        registry.gauge("mean_gap", self.mean_gap());
        registry.gauge("lp_seconds", self.lp_time.as_secs_f64());
        registry.gauge("warm_solve_seconds", self.warm_solve_time.as_secs_f64());
        registry.gauge("cold_solve_seconds", self.cold_solve_time.as_secs_f64());
        registry.gauge("round_seconds", self.round_time.as_secs_f64());
        registry.latency("lp", &self.lp_latency);
        registry.latency("warm_solve", &self.warm_solve_latency);
        registry.latency("cold_solve", &self.cold_solve_latency);
        registry.latency("round", &self.round_latency);
        registry.latency("queue_wait", &self.queue_wait_latency);
        registry.gauge("mean_solve_seconds", self.mean_solve_time().as_secs_f64());
        registry.gauge("max_solve_seconds", self.max_solve_time.as_secs_f64());
        registry.counter("shards", self.shards.len() as u64);
        registry.counter("queue_depth", self.total_queue_depth());
        registry.counter("cache_entries", self.total_cache_entries());
        registry.gauge("shard_imbalance", self.shard_imbalance());
        registry.counter("mem_session_bytes", self.mem_session_bytes);
        registry.counter("mem_pending_bytes", self.mem_pending_bytes);
        registry.counter("mem_served_bytes", self.mem_served_bytes);
        registry.counter("mem_cache_bytes", self.mem_cache_bytes());
        registry.counter("mem_total_bytes", self.mem_total_bytes());
        for (class, burn) in self.slo_burns() {
            registry.gauge(format!("slo_{class}_burn"), burn);
        }
        registry.gauge("health", self.health().level() as f64);
        for (index, shard) in self.shards.iter().enumerate() {
            registry.counter(format!("shard{index}_jobs"), shard.jobs);
            registry.counter(format!("shard{index}_solves"), shard.solves);
            registry.gauge(
                format!("shard{index}_busy_seconds"),
                shard.busy_time.as_secs_f64(),
            );
            registry.counter(format!("shard{index}_queue_depth"), shard.queue_depth);
            registry.counter(format!("shard{index}_cache_entries"), shard.cache_entries);
            registry.counter(format!("shard{index}_cache_bytes"), shard.cache_bytes);
        }
        registry.finish()
    }
}

/// Exact histogram mean as a [`Duration`] (zero when empty).
fn mean_of(histogram: &HistogramSnapshot) -> Duration {
    if histogram.is_empty() {
        Duration::ZERO
    } else {
        Duration::from_nanos(histogram.sum_nanos() / histogram.count())
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "engine stats")?;
        writeln!(
            f,
            "  requests {:>8}   sessions {:>5} opened / {:>5} closed ({} exported, {} imported)",
            self.requests,
            self.sessions_created,
            self.sessions_closed,
            self.sessions_exported,
            self.sessions_imported
        )?;
        writeln!(
            f,
            "  events   {:>8} submitted, {} coalesced away ({:.1}%)",
            self.events_submitted,
            self.events_coalesced,
            if self.events_submitted == 0 {
                0.0
            } else {
                100.0 * self.events_coalesced as f64 / self.events_submitted as f64
            }
        )?;
        writeln!(
            f,
            "  solves   {:>8} ({} incremental, {} full LP) over {} batches",
            self.solves(),
            self.solves_incremental,
            self.solves_full,
            self.batches
        )?;
        writeln!(
            f,
            "  factors  {:>8} cache hits / {} misses (hit rate {:.1}%), {} batch-shared",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.cache_hit_rate(),
            self.batch_shared
        )?;
        writeln!(
            f,
            "  warm     {:>8} warm / {} cold re-solves (warm-start rate {:.1}%), {} of {} components reused, {} session-affine reuses",
            self.solves_warm,
            self.solves_cold,
            100.0 * self.warm_start_rate(),
            self.warm_components_reused,
            self.warm_components_reused + self.warm_components_solved,
            self.session_reuse
        )?;
        writeln!(
            f,
            "  latency  mean {:?} per solve (LP {:?}, rounding {:?}), slowest job {:?}; mean re-solve warm {:?} vs cold {:?}",
            self.mean_solve_time(),
            self.lp_time,
            self.round_time,
            self.max_solve_time,
            self.mean_warm_solve_time(),
            self.mean_cold_solve_time()
        )?;
        writeln!(
            f,
            "  phases   p99 lp {:.1}µs / round {:.1}µs; shard imbalance {:.2} over {} shards ({} cached factors)",
            1e6 * self.lp_latency.quantile_seconds(0.99),
            1e6 * self.round_latency.quantile_seconds(0.99),
            self.shard_imbalance(),
            self.shards.len(),
            self.total_cache_entries()
        )?;
        writeln!(
            f,
            "  memory   {} bytes accounted (sessions {}, pending {}, served {}, caches {}); health {} (max burn {:.2})",
            self.mem_total_bytes(),
            self.mem_session_bytes,
            self.mem_pending_bytes,
            self.mem_served_bytes,
            self.mem_cache_bytes(),
            self.health().name(),
            self.max_slo_burn()
        )?;
        write!(
            f,
            "  quality  mean utility-vs-LP-bound gap {:.3}% over {} tight solves",
            100.0 * self.mean_gap(),
            self.gap_samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_gap() {
        let stats = EngineStats::default();
        stats.cache_hits.store(3, Ordering::Relaxed);
        stats.cache_misses.store(1, Ordering::Relaxed);
        stats.record_gap(0.8, 1.0);
        stats.record_gap(1.0, 1.0);
        let snap = stats.snapshot();
        assert!((snap.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert!((snap.mean_gap() - 0.1).abs() < 1e-3);
    }

    #[test]
    fn derived_rates_and_metrics_agree() {
        let stats = EngineStats::default();
        stats.events_submitted.store(10, Ordering::Relaxed);
        stats.events_coalesced.store(4, Ordering::Relaxed);
        stats.solves_incremental.store(3, Ordering::Relaxed);
        stats.solves_full.store(1, Ordering::Relaxed);
        stats.cache_misses.store(2, Ordering::Relaxed);
        stats.record_lp_compute(1_000, 0, 1);
        stats.record_lp_compute(3_000, 0, 1);
        stats.record_round(8_000);
        let snap = stats.snapshot();
        assert!((snap.coalesce_rate() - 0.4).abs() < 1e-12);
        assert!((snap.incremental_fraction() - 0.75).abs() < 1e-12);
        // Mean phase times come from the per-phase histograms, which sample
        // the same events (one LP record per cache miss, one rounding record
        // per solve).
        assert_eq!(snap.mean_lp_time(), Duration::from_nanos(2_000));
        assert_eq!(snap.mean_round_time(), Duration::from_nanos(8_000));
        assert_eq!(snap.lp_latency.count(), snap.cache_misses);
        let metrics = snap.metrics();
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(n, _)| *n == name)
                .unwrap_or_else(|| panic!("metric {name} missing"))
                .1
        };
        assert_eq!(get("events_submitted"), 10.0);
        assert!((get("coalesce_rate") - 0.4).abs() < 1e-12);
        assert!((get("cache_hit_rate") - snap.cache_hit_rate()).abs() < 1e-12);
        assert!((get("mean_lp_seconds") - 2e-6).abs() < 1e-12);
        // Names are unique (the JSON report uses them as object keys).
        let names: std::collections::HashSet<_> = metrics.iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), metrics.len());
    }

    #[test]
    fn phase_histograms_give_quantile_companions() {
        let stats = EngineStats::default();
        for i in 1..=100u64 {
            stats.record_lp_compute(i * 10_000, 0, 1);
            stats.record_solve_class(i * 20_000, false);
            stats.record_solve_class(i * 1_000, true);
            stats.record_round(i * 500);
            stats.record_queue_wait(i * 2_500);
        }
        let snap = stats.snapshot();
        let metrics = snap.metrics();
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(n, _)| *n == name)
                .unwrap_or_else(|| panic!("metric {name} missing"))
                .1
        };
        for base in ["lp", "warm_solve", "cold_solve", "round", "queue_wait"] {
            let (mean, p50, p95, p99) = (
                get(&format!("mean_{base}_seconds")),
                get(&format!("p50_{base}_seconds")),
                get(&format!("p95_{base}_seconds")),
                get(&format!("p99_{base}_seconds")),
            );
            assert!(mean > 0.0, "{base} mean");
            assert!(p50 <= p95 && p95 <= p99, "{base} quantiles must order");
            assert!(p99 > 0.0, "{base} p99");
        }
        // The quantiles describe the same samples the means do: a uniform
        // 10..1000µs LP grid has p50 ≈ 500µs within the histogram's 1/32
        // relative error band.
        let p50 = get("p50_lp_seconds");
        assert!((p50 - 500e-6).abs() / 500e-6 < 0.05, "p50_lp {p50}");
        // The mean metrics agree with the Duration-typed accessors.
        assert!(
            (get("mean_cold_solve_seconds") - snap.mean_cold_solve_time().as_secs_f64()).abs()
                < 1e-9
        );
    }

    #[test]
    fn shard_imbalance_reads_busy_skew() {
        let stats = EngineStats::with_shards(4);
        // No work yet: imbalance is the documented 0, not NaN.
        assert_eq!(stats.snapshot().shard_imbalance(), 0.0);
        stats.record_shard_busy(0, 3_000);
        stats.record_shard_busy(1, 1_000);
        // Shards 2 and 3 idle: mean = 1000, max = 3000.
        let snap = stats.snapshot();
        assert!((snap.shard_imbalance() - 3.0).abs() < 1e-9);
        let metrics = snap.metrics();
        let get = |name: &str| metrics.iter().find(|(n, _)| *n == name).unwrap().1;
        assert!((get("shard_imbalance") - 3.0).abs() < 1e-9);
        // A perfectly even spread reads 1.0.
        let even = EngineStats::with_shards(2);
        even.record_shard_busy(0, 5_000);
        even.record_shard_busy(1, 5_000);
        assert!((even.snapshot().shard_imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cache_entry_gauges_survive_reset_like_queue_depth() {
        let stats = EngineStats::with_shards(2);
        stats.set_shard_cache_gauges(0, 5, 0);
        stats.set_shard_cache_gauges(1, 2, 0);
        stats.set_shard_cache_gauges(9, 7, 0); // out of range: ignored
        assert_eq!(stats.snapshot().total_cache_entries(), 7);
        stats.reset();
        let snap = stats.snapshot();
        assert_eq!(
            snap.total_cache_entries(),
            7,
            "reset must not pretend live caches emptied"
        );
        let metrics = snap.metrics();
        let get = |name: &str| metrics.iter().find(|(n, _)| *n == name).unwrap().1;
        assert_eq!(get("cache_entries"), 7.0);
        assert_eq!(get("shard0_cache_entries"), 5.0);
        assert_eq!(get("shard1_cache_entries"), 2.0);
    }

    #[test]
    fn warm_cold_accounting_and_rates() {
        let stats = EngineStats::default();
        stats.record_lp_compute(6_000, 2, 1); // 2 components reused, 1 solved
        stats.record_lp_compute(10_000, 0, 3); // 3 components solved
        stats.record_solve_class(4_000, true); // warm re-solve
        stats.record_solve_class(20_000, false); // cold re-solve
        let snap = stats.snapshot();
        assert_eq!(snap.solves_warm, 1);
        assert_eq!(snap.solves_cold, 1);
        assert_eq!(snap.warm_components_reused, 2);
        assert_eq!(snap.warm_components_solved, 4);
        assert!((snap.warm_start_rate() - 0.5).abs() < 1e-12);
        assert!((snap.component_reuse_rate() - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(snap.mean_warm_solve_time(), Duration::from_nanos(4_000));
        assert_eq!(snap.mean_cold_solve_time(), Duration::from_nanos(20_000));
        // LP computation durations feed the aggregate LP accounting.
        assert_eq!(snap.lp_time, Duration::from_nanos(16_000));
        let metrics = snap.metrics();
        let get = |name: &str| metrics.iter().find(|(n, _)| *n == name).unwrap().1;
        assert!((get("warm_start_rate") - 0.5).abs() < 1e-12);
        assert!((get("mean_warm_solve_seconds") - 4e-6).abs() < 1e-12);
    }

    #[test]
    fn rates_are_zero_not_nan_when_denominators_are_zero() {
        // After a reset every denominator is zero; every derived rate must be
        // a well-defined 0, never NaN (the loadgen JSON would render `null`).
        let stats = EngineStats::default();
        stats.events_submitted.store(10, Ordering::Relaxed);
        stats.solves_incremental.store(3, Ordering::Relaxed);
        stats.record_lp_compute(5_000, 1, 0);
        stats.record_solve_class(5_000, true);
        stats.reset();
        let snap = stats.snapshot();
        for (name, value) in snap.metrics() {
            assert!(value.is_finite(), "{name} is not finite after reset");
            assert_eq!(value, 0.0, "{name} should be zero after reset");
        }
        assert_eq!(snap.coalesce_rate(), 0.0);
        assert_eq!(snap.incremental_fraction(), 0.0);
        assert_eq!(snap.cache_hit_rate(), 0.0);
        assert_eq!(snap.warm_start_rate(), 0.0);
        assert_eq!(snap.component_reuse_rate(), 0.0);
        assert_eq!(snap.mean_gap(), 0.0);
        assert_eq!(snap.mean_lp_time(), Duration::ZERO);
        assert_eq!(snap.mean_warm_solve_time(), Duration::ZERO);
        assert_eq!(snap.mean_cold_solve_time(), Duration::ZERO);
    }

    #[test]
    fn mem_gauges_survive_reset_and_feed_metrics_and_merge() {
        let stats = EngineStats::with_shards(2);
        stats.set_mem_gauges(1000, 50, 200);
        stats.set_shard_cache_gauges(0, 1, 300);
        stats.set_shard_cache_gauges(1, 1, 100);
        stats.set_shard_cache_gauges(9, 1, 7); // out of range: ignored
        stats.reset();
        let snap = stats.snapshot();
        assert_eq!(snap.mem_session_bytes, 1000, "live gauges survive reset");
        assert_eq!(snap.mem_cache_bytes(), 400);
        assert_eq!(snap.mem_total_bytes(), 1000 + 50 + 200 + 400);
        let metrics = snap.metrics();
        let get = |name: &str| metrics.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(get("mem_session_bytes"), 1000.0);
        assert_eq!(get("mem_pending_bytes"), 50.0);
        assert_eq!(get("mem_served_bytes"), 200.0);
        assert_eq!(get("mem_cache_bytes"), 400.0);
        assert_eq!(get("mem_total_bytes"), 1650.0);
        assert_eq!(get("shard0_cache_bytes"), 300.0);
        // Fleet aggregation: byte gauges add across nodes.
        let mut merged = snap.clone();
        merged.merge(&snap);
        assert_eq!(merged.mem_total_bytes(), 2 * 1650);
    }

    #[test]
    fn slo_burn_thresholds_drive_health() {
        let stats = EngineStats::default();
        let snap = stats.snapshot();
        assert_eq!(snap.max_slo_burn(), 0.0, "no traffic burns nothing");
        assert_eq!(snap.health(), Health::Ok);
        // 100 fast rounds and 20 slow ones: 1/6 over the 20ms round
        // objective against a 5% budget is a burn of ~3.3 → degraded.
        for _ in 0..100 {
            stats.record_round(1_000_000);
        }
        for _ in 0..20 {
            stats.record_round(100_000_000);
        }
        let snap = stats.snapshot();
        let burns = snap.slo_burns();
        let round_burn = burns
            .iter()
            .find(|(class, _)| *class == "round")
            .expect("round class")
            .1;
        assert!(
            (round_burn - (20.0 / 120.0) / 0.05).abs() < 0.2,
            "round burn {round_burn}"
        );
        assert_eq!(snap.health(), Health::Degraded);
        // Make every round slow: burn 20 → overloaded.
        for _ in 0..2000 {
            stats.record_round(100_000_000);
        }
        assert_eq!(stats.snapshot().health(), Health::Overloaded);
        // A memory budget folds in through the explicit policy.
        let policy = HealthPolicy {
            mem_budget_bytes: 100,
            ..HealthPolicy::default()
        };
        let idle = EngineStats::default();
        idle.set_mem_gauges(150, 0, 0);
        assert_eq!(idle.snapshot().health_with(&policy), Health::Overloaded);
        assert_eq!(idle.snapshot().health(), Health::Ok, "default: no budget");
    }

    #[test]
    fn imbalance_and_phase_gauges_pin_to_zero_after_reset() {
        // Regression: immediately after `reset_stats` with no traffic the
        // skew/latency gauges must read a hard 0 — a NaN here renders as
        // `null` in reports and breaks the bench trajectory diff.
        let stats = EngineStats::with_shards(4);
        for shard in 0..4 {
            stats.record_shard_busy(shard, 1_000 * (shard as u64 + 1));
        }
        for i in 1..=50 {
            stats.record_lp_compute(i * 1_000, 0, 1);
            stats.record_round(i * 500);
            stats.record_solve_class(i * 2_000, i % 2 == 0);
            stats.record_queue_wait(i * 3_000);
        }
        stats.reset();
        let snap = stats.snapshot();
        assert_eq!(snap.shard_imbalance(), 0.0);
        let metrics = snap.metrics();
        let get = |name: &str| metrics.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(get("shard_imbalance"), 0.0);
        for base in ["lp", "warm_solve", "cold_solve", "round", "queue_wait"] {
            for prefix in ["mean", "p50", "p95", "p99"] {
                let name = format!("{prefix}_{base}_seconds");
                let value = get(&name);
                assert!(value == 0.0 && value.is_finite(), "{name} = {value}");
            }
        }
        for (class, burn) in snap.slo_burns() {
            assert_eq!(burn, 0.0, "slo_{class}_burn after reset");
        }
        assert_eq!(get("health"), 0.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let stats = EngineStats::default();
        stats.requests.store(5, Ordering::Relaxed);
        stats.record_solve_nanos(1_000, 0);
        stats.record_gap(0.5, 1.0);
        stats.reset();
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.lp_time, Duration::ZERO);
        assert_eq!(snap.gap_samples, 0);
    }

    #[test]
    fn display_renders() {
        let stats = EngineStats::default();
        stats.record_solve_nanos(1_000, 2_000);
        let text = stats.snapshot().to_string();
        assert!(text.contains("engine stats"));
        assert!(text.contains("hit rate"));
    }

    #[test]
    fn shard_counters_track_dispatch_and_queue() {
        let stats = EngineStats::with_shards(3);
        assert_eq!(stats.per_shard.len(), 3);
        stats.record_shard_dispatch(0, 2);
        stats.record_shard_dispatch(2, 1);
        stats.record_shard_busy(2, 5_000);
        stats.shard_queue_add(1, 4);
        stats.shard_queue_sub(1, 1);
        // Out-of-range shards are ignored, never panic.
        stats.record_shard_dispatch(9, 1);
        stats.shard_queue_add(9, 1);
        let snap = stats.snapshot();
        assert_eq!(snap.shards.len(), 3, "snapshot pins the shard count");
        assert_eq!(snap.shards[0].jobs, 1);
        assert_eq!(snap.shards[0].solves, 2);
        assert_eq!(snap.shards[2].busy_time, Duration::from_nanos(5_000));
        assert_eq!(snap.shards[1].queue_depth, 3);
        assert_eq!(snap.total_queue_depth(), 3);
        // Per-shard solves sum to exactly the dispatched solves.
        let total: u64 = snap.shards.iter().map(|s| s.solves).sum();
        assert_eq!(total, 3);
        let metrics = snap.metrics();
        let get = |name: &str| metrics.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(get("shards"), 3.0);
        assert_eq!(get("shard1_queue_depth"), 3.0);
        assert_eq!(get("shard0_solves"), 2.0);
        assert_eq!(get("queue_depth"), 3.0);
        // Names stay unique with the per-shard entries appended.
        let names: std::collections::HashSet<_> = metrics.iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), metrics.len());
    }

    #[test]
    fn queue_gauge_saturates_and_survives_reset() {
        let stats = EngineStats::with_shards(2);
        stats.shard_queue_add(0, 2);
        stats.shard_queue_sub(0, 5); // saturates at zero, never wraps
        assert_eq!(stats.snapshot().shards[0].queue_depth, 0);
        stats.shard_queue_add(0, 7);
        stats.record_shard_dispatch(0, 3);
        stats.reset();
        let snap = stats.snapshot();
        assert_eq!(
            snap.shards[0].queue_depth, 7,
            "reset must not consume live pending events"
        );
        assert_eq!(snap.shards[0].jobs, 0, "monotonic counters do reset");
        assert_eq!(snap.shards[0].solves, 0);
    }

    #[test]
    fn merge_adds_counters_and_pads_shards() {
        let a_stats = EngineStats::with_shards(2);
        a_stats.requests.store(3, Ordering::Relaxed);
        a_stats.solves_full.store(2, Ordering::Relaxed);
        a_stats.record_shard_dispatch(1, 5);
        a_stats.record_solve_nanos(1_000, 500);
        let b_stats = EngineStats::with_shards(4);
        b_stats.requests.store(4, Ordering::Relaxed);
        b_stats.solves_incremental.store(6, Ordering::Relaxed);
        b_stats.record_shard_dispatch(3, 1);
        b_stats.record_solve_nanos(9_000, 0);
        let mut merged = a_stats.snapshot();
        merged.merge(&b_stats.snapshot());
        assert_eq!(merged.requests, 7);
        assert_eq!(merged.solves(), 8);
        assert_eq!(merged.shards.len(), 4, "shard vectors pad to the longer");
        assert_eq!(merged.shards[1].solves, 5);
        assert_eq!(merged.shards[3].jobs, 1);
        assert_eq!(merged.lp_time, Duration::from_nanos(10_000));
        assert_eq!(merged.max_solve_time, Duration::from_nanos(9_000));
        // Derived rates recompute from merged raw counters.
        assert!((merged.incremental_fraction() - 0.75).abs() < 1e-12);
    }
}
