//! The engine: session store, session-sharded dispatch, worker pool,
//! per-shard factor and warm-component caches.
//!
//! # Dispatch model
//!
//! Events accumulate per session ([`crate::scheduler::coalesce`] folds them at
//! dispatch time). Sessions hash to a **fixed shard** (`session id mod
//! shards`), and a flush submits one pipeline job per busy shard: the job
//! restricts the instance, resolves factors (session-affine reuse → shard
//! factor cache → component-wise solve via [`crate::warm`]) and re-rounds its
//! sessions in order. Shards own their caches outright, so a global flush
//! never serializes on a shared cache path — the serial part of a flush is
//! only the event coalescing and policy decisions.
//!
//! Factor resolution inside a shard job:
//!
//! 1. **Session-affine reuse** — a solve whose factor fingerprint matches the
//!    session's previous solve reuses the session's own factors (the common
//!    case for incremental re-rounds, whose fingerprint is the stable base
//!    fingerprint).
//! 2. **Shard factor cache** — an LRU keyed by restricted-instance
//!    fingerprint, shared by the shard's sessions (hot templates hit here).
//! 3. **Component-wise solve** — the LP separates across social-graph
//!    components, so missing factors are solved per component with
//!    fingerprint-keyed reuse of unchanged components
//!    ([`crate::warm::solve_factors_warm`]). Warm starts are *pure
//!    optimizations*: factors are byte-identical to a cold solve.
//!
//! Incremental solves then slice the full-population factor rows of the
//! present shoppers (the paper's §5 dynamic mechanism); full solves round on
//! factors computed for exactly the restricted instance.
//!
//! Sharding trades engine-wide LP dedup for isolation: a fingerprint shared
//! by sessions on *different* shards is solved once per shard (bounded by
//! the shard count) instead of once per flush, because restricting and
//! fingerprinting happen inside the shard jobs — moving them back to the
//! serial dispatch phase to dedup globally would reintroduce exactly the
//! serialized O(n·m) per-session work sharding removes. Within a shard,
//! dedup is exact (`batch_shared`), and hot-template reuse re-converges via
//! each shard's own caches after one solve per shard.
//!
//! Rounding seeds derive from `(session seed, generation)` and results are
//! applied in session order, so served configurations are reproducible under
//! a fixed seed regardless of worker scheduling, shard count, or cache
//! contents.

use std::collections::BTreeMap;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use svgic_algorithms::avg::round_with_factors;
use svgic_algorithms::factors::RelaxationOptions;
use svgic_algorithms::{LpBackend, SamplingScheme, UtilityFactors};
use svgic_core::utility::total_utility;
use svgic_core::{Configuration, ItemIdx, SvgicInstance, UserIdx};

use rand_chacha::ChaCha8Rng;

use crate::api::{
    ConfigurationView, CreateSession, EngineError, EngineRequest, EngineResponse, SessionEvent,
    SessionId,
};
use crate::cache::FactorCache;
use crate::fingerprint::instance_fingerprint;
use crate::policy::{LpStart, PolicyInputs, ResolveKind, ResolvePolicy};
use crate::pool::WorkerPool;
use crate::profile::{EngineProfile, SolveLedger};
use crate::scheduler::coalesce;
use crate::session::{Served, SessionExport, SessionState};
use crate::stats::{EngineStats, StatsSnapshot};
use crate::warm::{solve_factors_warm, CacheMode};
use svgic_obs::telemetry::rate_to_ppm;
use svgic_obs::{ObsConfig, Phase, SpanRecord, TelemetryRing, TelemetrySample, Tracer};

use rand::SeedableRng;

/// Engine-wide tunables.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads (`0` = one per available core).
    pub workers: usize,
    /// Session shards (`0` = one per worker). Sessions map to shard
    /// `session id mod shards`; each shard owns a factor cache and a warm
    /// component cache and always runs on worker `shard mod workers`.
    pub shards: usize,
    /// Per-shard factor-cache capacity in factor sets (`0` disables factor
    /// caching).
    pub cache_capacity: usize,
    /// Per-shard warm component-cache capacity in component factor sets.
    /// `0` disables only the component-level reuse layer — session-affine
    /// and factor-cache reuse still serve warm; set
    /// [`ResolvePolicy::warm_start_lp`] to `false` for a fully cold engine.
    pub component_cache_capacity: usize,
    /// Incremental-vs-full re-solve (and warm-vs-cold LP) policy.
    pub policy: ResolvePolicy,
    /// Auto-flush once this many events are pending engine-wide
    /// (`0` disables auto-flush; call [`Engine::flush`] manually).
    pub auto_flush_pending: usize,
    /// LP backend for relaxation solves.
    pub backend: LpBackend,
    /// Rounding sampling scheme.
    pub sampling: SamplingScheme,
    /// Idle-iteration safety valve for the rounding loop.
    pub max_idle_iterations: usize,
    /// Observability switches (span tracing + flight recorder). Off by
    /// default; enabling it is strictly read-side — served configurations,
    /// counters and response digests are byte-identical either way.
    pub obs: ObsConfig,
    /// Capacity of the telemetry ring: how many per-tick
    /// [`TelemetrySample`]s the engine retains (one is recorded after every
    /// handled [`EngineRequest::Flush`], the driver's deterministic tick).
    /// `0` disables sampling entirely. Like `obs`, strictly read-side.
    pub telemetry_capacity: usize,
    /// Capacity of the per-template cost-attribution ledger: how many
    /// distinct template fingerprints [`crate::profile::SolveLedger`]
    /// attributes solves to (`0` disables the ledger). Folded serially in
    /// session order, so its counts are deterministic; like `obs`, strictly
    /// read-side.
    pub profile_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            shards: 0,
            cache_capacity: 128,
            component_cache_capacity: 256,
            policy: ResolvePolicy::default(),
            auto_flush_pending: 32,
            backend: LpBackend::Auto,
            sampling: SamplingScheme::Advanced,
            max_idle_iterations: 10_000,
            obs: ObsConfig::default(),
            telemetry_capacity: 1024,
            profile_capacity: 128,
        }
    }
}

/// One scheduled solve, produced by the serial dispatch phase and executed
/// inside its session's shard job.
struct SolvePlan {
    session: u64,
    kind: ResolveKind,
    lp_start: LpStart,
    base: Arc<SvgicInstance>,
    base_fingerprint: u64,
    present: Vec<UserIdx>,
    catalog: Vec<ItemIdx>,
    seed: u64,
    /// The session's previous factors + their fingerprint, for session-affine
    /// reuse without touching the shard cache.
    session_factors: Option<(u64, Arc<UtilityFactors>)>,
}

/// Result of one session's solve inside a shard job.
struct SolveOutcome {
    session: u64,
    kind: ResolveKind,
    configuration: Configuration,
    utility: f64,
    lp_bound: f64,
    tight: bool,
    present: Vec<UserIdx>,
    catalog: Vec<ItemIdx>,
    round_nanos: u64,
    /// Factors the solve used, persisted back onto the session.
    factors: Arc<UtilityFactors>,
    factor_fingerprint: u64,
    /// The session's base-instance (template) fingerprint — the ledger's
    /// attribution key.
    base_fingerprint: u64,
    /// Whether the factors came from a reuse layer (vs. computed cold).
    warm_served: bool,
    /// Whole-solve wall time (factor resolution through rounding).
    solve_nanos: u64,
}

/// Caches owned by one shard. Only the shard's own pipeline job touches them
/// (one job per shard per flush, pinned to a fixed worker), so the mutex is
/// uncontended — it exists to move the state into the job and back, not to
/// arbitrate access.
#[derive(Debug)]
struct ShardState {
    /// LRU of whole-instance factors, keyed by restricted-instance
    /// fingerprint.
    factors: FactorCache,
    /// LRU of per-component factors, keyed by component sub-instance
    /// fingerprint — the warm-start currency.
    components: FactorCache,
}

/// The online multi-session serving engine.
pub struct Engine {
    config: EngineConfig,
    sessions: BTreeMap<u64, SessionState>,
    /// Passive standby replicas, keyed by the *cluster's* session key (the
    /// router's namespace, not local session ids). Replicas are inert
    /// payload: never solved, never flushed, invisible to `describe` and the
    /// memory gauges' session walk — they exist only to be taken back by the
    /// router when another node dies.
    standbys: BTreeMap<u64, SessionExport>,
    next_session: u64,
    shards: Vec<Arc<Mutex<ShardState>>>,
    pool: WorkerPool,
    stats: Arc<EngineStats>,
    tracer: Tracer,
    /// The wire request id currently being served by [`Engine::handle_traced`]
    /// (0 between requests), so spans recorded inside the handler correlate
    /// with the frame that caused them.
    current_request: u64,
    /// Events queued across all sessions (kept incrementally so the
    /// auto-flush threshold check is O(1) per submit).
    pending_total: usize,
    /// Per-tick time series, one sample per handled `Flush` request.
    telemetry: TelemetryRing,
    /// Ticks elapsed since construction or the last stats reset (the
    /// sample timestamps; monotone within the ring).
    ticks: u64,
    /// The per-template cost-attribution ledger, folded serially in the
    /// batch apply loop (disabled at `profile_capacity: 0`).
    ledger: SolveLedger,
    /// Per shard: when the shard's *oldest* currently-pending event was
    /// enqueued (`None` = no pending events since the last dispatch).
    /// Feeds the queue-wait histogram and `Phase::QueueWait` spans.
    queue_since: Vec<Option<Instant>>,
}

impl Engine {
    /// Builds an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        let pool = WorkerPool::new(config.workers);
        let shard_count = if config.shards == 0 {
            pool.workers()
        } else {
            config.shards
        };
        let shards = (0..shard_count)
            .map(|_| {
                Arc::new(Mutex::new(ShardState {
                    factors: FactorCache::new(config.cache_capacity),
                    components: FactorCache::new(config.component_cache_capacity),
                }))
            })
            .collect();
        let tracer = Tracer::new(config.obs);
        let telemetry = TelemetryRing::new(config.telemetry_capacity);
        let ledger = SolveLedger::new(config.profile_capacity);
        Engine {
            config,
            sessions: BTreeMap::new(),
            standbys: BTreeMap::new(),
            next_session: 1,
            shards,
            pool,
            stats: Arc::new(EngineStats::with_shards(shard_count)),
            tracer,
            current_request: 0,
            pending_total: 0,
            telemetry,
            ticks: 0,
            ledger,
            // lint: allow(prealloc, shard_count is the engine's own resolved shard total, not wire input)
            queue_since: vec![None; shard_count],
        }
    }

    /// The shard a session id pins to.
    fn shard_of(&self, id: u64) -> usize {
        shard_index(id, self.shards.len())
    }

    /// Builds an engine with default configuration.
    pub fn with_defaults() -> Self {
        Engine::new(EngineConfig::default())
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Events queued engine-wide, awaiting the next flush.
    pub fn pending_events(&self) -> usize {
        self.pending_total
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Number of session shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of factor sets currently cached, summed over shards.
    pub fn cached_factor_sets(&self) -> usize {
        self.shards
            .iter()
            // lint: allow(no-panic, a poisoned shard lock means a worker panicked mid-batch; engine state is unrecoverable)
            .map(|shard| shard.lock().expect("shard poisoned").factors.len())
            .sum()
    }

    /// Number of warm component solutions currently cached, summed over
    /// shards.
    pub fn cached_component_sets(&self) -> usize {
        self.shards
            .iter()
            // lint: allow(no-panic, a poisoned shard lock means a worker panicked mid-batch; engine state is unrecoverable)
            .map(|shard| shard.lock().expect("shard poisoned").components.len())
            .sum()
    }

    /// A point-in-time snapshot of the engine counters. Refreshes the
    /// session-side `mem_*` gauges first (an O(sessions) arithmetic walk —
    /// strictly read-side, never touching matrix data).
    pub fn stats(&self) -> StatsSnapshot {
        // Shard jobs publish their cache gauges after sending their last
        // outcome but before releasing the shard lock, so a batch can look
        // finished (all outcomes drained) while a worker's gauge store is
        // still in flight. Briefly taking each shard lock fences those
        // stores, so every snapshot — telemetry sampling, the wire `Stats`
        // request, local reads — sees the post-batch cache sizes.
        for shard in &self.shards {
            // lint: allow(no-panic, a poisoned shard lock means a worker panicked mid-batch; engine state is unrecoverable)
            drop(shard.lock().expect("shard poisoned"));
        }
        self.refresh_mem_gauges();
        let mut snapshot = self.stats.snapshot();
        snapshot.profile = self.ledger.entries();
        snapshot.profile_dropped = self.ledger.dropped();
        snapshot
    }

    /// The engine's full profile: the per-template ledger plus the critical
    /// path assembled from the flight recorder (the in-process answer to
    /// [`EngineRequest::QueryProfile`]). The span-derived sections are empty
    /// when tracing is off; the ledger sections are empty at
    /// `profile_capacity: 0`.
    pub fn profile(&self) -> EngineProfile {
        let spans = self.spans();
        EngineProfile {
            entries: self.ledger.entries(),
            dropped: self.ledger.dropped(),
            phases: svgic_obs::aggregate_phases(&spans),
            waterfalls: svgic_obs::assemble_waterfalls(&spans),
            collapsed: svgic_obs::collapsed_stacks(&spans),
        }
    }

    /// Recomputes the session/pending/served byte gauges from the live
    /// session store (shard cache bytes refresh at shard-job end and on
    /// import, where the caches actually change).
    fn refresh_mem_gauges(&self) {
        let mut session = 0u64;
        let mut pending = 0u64;
        let mut served = 0u64;
        for state in self.sessions.values() {
            let footprint = crate::mem::session_footprint(state);
            session += footprint.session_bytes;
            pending += footprint.pending_bytes;
            served += footprint.served_bytes;
        }
        self.stats.set_mem_gauges(session, pending, served);
    }

    /// Resets the engine counters to zero without touching sessions or the
    /// factor cache — e.g. to exclude a warmup prefix from a measured run
    /// while keeping the caches warm. The telemetry ring and its tick clock
    /// reset too: reports carry only the measured window.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.telemetry.clear();
        self.ticks = 0;
        self.ledger.clear();
    }

    /// The telemetry ring's samples, oldest first (empty when
    /// [`EngineConfig::telemetry_capacity`] is 0 or no flush has happened
    /// yet).
    pub fn telemetry(&self) -> Vec<TelemetrySample> {
        self.telemetry.samples()
    }

    /// Records one time-series sample at the current tick, then advances
    /// the tick clock. Called from the `Flush` request arm — the driver's
    /// deterministic tick boundary — never from a timer.
    fn sample_telemetry(&mut self) {
        self.ticks += 1;
        if !self.telemetry.is_enabled() {
            return;
        }
        // `stats()` fences on the shard locks before snapshotting, so the
        // sample always reads the post-batch cache sizes — which keeps the
        // ring deterministic across backends.
        let snapshot = self.stats();
        self.telemetry.push(TelemetrySample {
            tick: self.ticks - 1,
            requests: snapshot.requests,
            solves: snapshot.solves(),
            queue_depth: snapshot.total_queue_depth(),
            warm_rate_ppm: rate_to_ppm(snapshot.warm_start_rate()),
            imbalance_ppm: rate_to_ppm(snapshot.shard_imbalance()),
            mem_session_bytes: snapshot.mem_session_bytes,
            mem_pending_bytes: snapshot.mem_pending_bytes,
            mem_served_bytes: snapshot.mem_served_bytes,
            mem_cache_bytes: snapshot.mem_cache_bytes(),
            mem_total_bytes: snapshot.mem_total_bytes(),
        });
    }

    /// Handles a typed request.
    pub fn handle(&mut self, request: EngineRequest) -> Result<EngineResponse, EngineError> {
        match request {
            EngineRequest::CreateSession(spec) => self
                .create_session(*spec)
                .map(EngineResponse::SessionCreated),
            EngineRequest::SubmitEvent(session, event) => self
                .submit_event(session, event)
                .map(|pending| EngineResponse::EventAccepted { session, pending }),
            EngineRequest::QueryConfiguration(session) => self
                .query_configuration(session)
                .map(EngineResponse::Configuration),
            EngineRequest::ForceResolve(session) => {
                self.force_resolve(session).map(EngineResponse::Resolved)
            }
            EngineRequest::CloseSession(session) => {
                self.close_session(session)
                    .map(|lifetime_events| EngineResponse::SessionClosed {
                        session,
                        lifetime_events,
                    })
            }
            EngineRequest::Flush => {
                self.flush();
                // The handled Flush is the driver's tick boundary: exactly
                // one telemetry sample per tick, on no wall-clock at all.
                self.sample_telemetry();
                Ok(EngineResponse::Flushed)
            }
            EngineRequest::QueryStats => Ok(EngineResponse::Stats(Box::new(self.stats()))),
            EngineRequest::ResetStats => {
                self.reset_stats();
                Ok(EngineResponse::StatsReset)
            }
            EngineRequest::ExportSession(session) => self
                .export_session(session)
                .map(|export| EngineResponse::SessionExported(Box::new(export))),
            EngineRequest::ImportSession(export) => Ok(EngineResponse::SessionImported(
                self.import_session(*export),
            )),
            EngineRequest::Describe => Ok(EngineResponse::Description(self.describe())),
            EngineRequest::QueryMetrics => Ok(EngineResponse::Metrics(self.stats().metrics())),
            EngineRequest::QueryTelemetry => Ok(EngineResponse::Telemetry(self.telemetry())),
            EngineRequest::QueryProfile => Ok(EngineResponse::Profile(Box::new(self.profile()))),
            EngineRequest::SnapshotSession(session) => self
                .snapshot_session(session)
                .map(|export| EngineResponse::SessionExported(Box::new(export))),
            EngineRequest::PutStandby(key, export) => {
                self.put_standby(key, *export);
                Ok(EngineResponse::StandbyStored)
            }
            EngineRequest::TakeStandby(key) => Ok(EngineResponse::StandbyTaken(
                self.take_standby(key).map(Box::new),
            )),
            EngineRequest::Crash => {
                self.crash();
                Ok(EngineResponse::Crashed)
            }
        }
    }

    /// Handles a typed request on behalf of wire frame `request_id`,
    /// recording a [`Phase::Serve`] span around the whole handler. Spans
    /// recorded *inside* the handler (Submit, Coalesce, Migrate, …) carry the
    /// same id, and the server echoes it in the response frame — so one id
    /// names one request's work on both sides of a TCP connection.
    pub fn handle_traced(
        &mut self,
        request_id: u64,
        request: EngineRequest,
    ) -> Result<EngineResponse, EngineError> {
        let t = self.tracer.begin();
        let session = match &request {
            EngineRequest::SubmitEvent(session, _)
            | EngineRequest::QueryConfiguration(session)
            | EngineRequest::ForceResolve(session)
            | EngineRequest::CloseSession(session)
            | EngineRequest::ExportSession(session)
            | EngineRequest::SnapshotSession(session) => session.0,
            _ => 0,
        };
        self.current_request = request_id;
        let result = self.handle(request);
        self.current_request = 0;
        self.tracer
            .finish(t, Phase::Serve, request_id, session, SpanRecord::NO_SHARD);
        result
    }

    /// The engine's span tracer (cloneable; a no-op handle unless
    /// [`EngineConfig::obs`] enabled tracing).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Every span the flight recorder retains, sorted by start time.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.tracer.spans()
    }

    /// The engine's shape and occupancy (the in-process answer to
    /// [`EngineRequest::Describe`]).
    pub fn describe(&self) -> crate::api::EngineInfo {
        crate::api::EngineInfo {
            workers: self.workers(),
            shards: self.shard_count(),
            sessions: self.session_count(),
            pending_events: self.pending_events(),
        }
    }

    /// Opens a session and solves its initial configuration.
    pub fn create_session(
        &mut self,
        spec: CreateSession,
    ) -> Result<ConfigurationView, EngineError> {
        self.count_request();
        let CreateSession {
            instance,
            mut initial_present,
            seed,
        } = spec;
        if instance.num_users() == 0 {
            return Err(EngineError::InvalidSession("instance has no users".into()));
        }
        if initial_present.is_empty() {
            initial_present = (0..instance.num_users()).collect();
        }
        initial_present.sort_unstable();
        initial_present.dedup();
        if let Some(&out_of_range) = initial_present
            .iter()
            .find(|&&user| user >= instance.num_users())
        {
            return Err(EngineError::InvalidSession(format!(
                "initial user {out_of_range} outside population 0..{}",
                instance.num_users()
            )));
        }
        let id = self.next_session;
        self.next_session += 1;
        let state = SessionState::new(SessionId(id), instance, initial_present, seed);
        self.sessions.insert(id, state);
        // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
        self.stats
            .sessions_created
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.run_batch(&[id], false);
        Ok(self.sessions[&id].view())
    }

    /// Queues an event; may trigger an auto-flush.
    pub fn submit_event(
        &mut self,
        session: SessionId,
        event: SessionEvent,
    ) -> Result<usize, EngineError> {
        self.count_request();
        let t = self.tracer.begin();
        let state = self
            .sessions
            .get_mut(&session.0)
            .ok_or(EngineError::UnknownSession(session))?;
        let event = validate_event(&state.full, event)?;
        state.pending.push(event);
        self.pending_total += 1;
        let shard = self.shard_of(session.0);
        if self.queue_since[shard].is_none() {
            // lint: allow(wall-clock, queue-wait telemetry only; solve results never read it)
            self.queue_since[shard] = Some(Instant::now());
        }
        self.stats.shard_queue_add(shard, 1);
        // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
        self.stats
            .events_submitted
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // The span covers validation + queueing; an auto-flush below is
        // traced as its own Coalesce/ShardDispatch spans, not folded in here.
        self.tracer.finish(
            t,
            Phase::Submit,
            self.current_request,
            session.0,
            SpanRecord::NO_SHARD,
        );
        let threshold = self.config.auto_flush_pending;
        if threshold > 0 && self.pending_total >= threshold {
            self.flush();
        }
        Ok(self
            .sessions
            .get(&session.0)
            .map(|state| state.pending.len())
            .unwrap_or(0))
    }

    /// Reads the last served configuration without solving.
    pub fn query_configuration(
        &mut self,
        session: SessionId,
    ) -> Result<ConfigurationView, EngineError> {
        self.count_request();
        self.sessions
            .get(&session.0)
            .map(SessionState::view)
            .ok_or(EngineError::UnknownSession(session))
    }

    /// Applies the session's pending events now and forces a full LP re-solve.
    pub fn force_resolve(&mut self, session: SessionId) -> Result<ConfigurationView, EngineError> {
        self.count_request();
        if !self.sessions.contains_key(&session.0) {
            return Err(EngineError::UnknownSession(session));
        }
        self.run_batch(&[session.0], true);
        Ok(self.sessions[&session.0].view())
    }

    /// Closes a session, dropping any unapplied events.
    pub fn close_session(&mut self, session: SessionId) -> Result<u64, EngineError> {
        self.count_request();
        let state = self
            .sessions
            .remove(&session.0)
            .ok_or(EngineError::UnknownSession(session))?;
        self.pending_total = self.pending_total.saturating_sub(state.pending.len());
        self.stats
            .shard_queue_sub(self.shard_of(session.0), state.pending.len());
        // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
        self.stats
            .sessions_closed
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(state.lifetime_events)
    }

    /// Removes a session and returns its complete transferable state —
    /// the drain half of a **live migration**. Unapplied events, the served
    /// solution, the solve generation and the session's warm capital (last
    /// LP factors + fingerprint) all travel with the export; nothing is
    /// solved or dropped. Not counted as a close.
    pub fn export_session(&mut self, session: SessionId) -> Result<SessionExport, EngineError> {
        self.count_request();
        let t = self.tracer.begin();
        let state = self
            .sessions
            .remove(&session.0)
            .ok_or(EngineError::UnknownSession(session))?;
        self.pending_total = self.pending_total.saturating_sub(state.pending.len());
        self.stats
            .shard_queue_sub(self.shard_of(session.0), state.pending.len());
        // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
        self.stats
            .sessions_exported
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let export = state.into_export();
        self.tracer.finish(
            t,
            Phase::Migrate,
            self.current_request,
            session.0,
            SpanRecord::NO_SHARD,
        );
        Ok(export)
    }

    /// Adopts an exported session under a fresh local id — the hand-off half
    /// of a live migration. The session continues exactly where it left off:
    /// solve seeds derive from `(seed, generation)` (both carried), factors
    /// are byte-identical wherever computed, and the next flush applies any
    /// carried pending events — so served configurations are independent of
    /// which engine hosts the session. Not counted as a create.
    pub fn import_session(&mut self, export: SessionExport) -> SessionId {
        self.count_request();
        let t = self.tracer.begin();
        let id = self.next_session;
        self.next_session += 1;
        let state = SessionState::from_export(SessionId(id), export);
        let shard = self.shard_of(id);
        self.pending_total += state.pending.len();
        if !state.pending.is_empty() && self.queue_since[shard].is_none() {
            // lint: allow(wall-clock, queue-wait telemetry only; solve results never read it)
            self.queue_since[shard] = Some(Instant::now());
        }
        self.stats.shard_queue_add(shard, state.pending.len());
        // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
        self.stats
            .sessions_imported
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Seed the receiving shard's factor cache with the carried warm
        // capital: beyond the session's own session-affine reuse, *other*
        // sessions sharing the fingerprint (same template, e.g.) now hit the
        // cache instead of recomputing the LP this engine never ran —
        // migrations cross-pollinate node caches. Factors are byte-identical
        // wherever computed, so this is a pure optimization.
        if let (Some(fingerprint), Some(factors)) =
            (state.last_factor_fingerprint, state.last_factors.clone())
        {
            // lint: allow(no-panic, a poisoned shard lock means a worker panicked mid-batch; engine state is unrecoverable)
            let mut shard_state = self.shards[shard].lock().expect("shard poisoned");
            shard_state.factors.insert(fingerprint, factors);
            self.stats.set_shard_cache_gauges(
                shard,
                shard_state.factors.len(),
                shard_state.factors.footprint_bytes(),
            );
        }
        self.sessions.insert(id, state);
        self.tracer.finish(
            t,
            Phase::Migrate,
            self.current_request,
            id,
            SpanRecord::NO_SHARD,
        );
        SessionId(id)
    }

    /// Clones a session's complete transferable state *without* draining it
    /// — the replication half of warm standby. The live session is
    /// untouched; the copy is what travels to the ring-successor. Not
    /// counted as a request or an export, so replication leaves every
    /// traffic counter exactly where a replication-free run puts it.
    pub fn snapshot_session(&mut self, session: SessionId) -> Result<SessionExport, EngineError> {
        self.sessions
            .get(&session.0)
            .map(SessionState::to_export)
            .ok_or(EngineError::UnknownSession(session))
    }

    /// Stores a standby replica under a cluster-assigned key, replacing any
    /// previous replica under that key. The replica is passive payload; it
    /// participates in nothing until taken back.
    pub fn put_standby(&mut self, key: u64, export: SessionExport) {
        self.standbys.insert(key, export);
    }

    /// Removes and returns the standby replica under `key`, if any. Taking
    /// is both promotion (the router imports the result elsewhere) and
    /// discard (the router drops a stale copy) — one operation, no separate
    /// delete to drift out of sync.
    pub fn take_standby(&mut self, key: u64) -> Option<SessionExport> {
        self.standbys.remove(&key)
    }

    /// Standby replicas currently held (test/inspection surface).
    pub fn standby_count(&self) -> usize {
        self.standbys.len()
    }

    /// Simulates a node crash: drops every session, standby replica, cached
    /// factor set, telemetry sample and counter, returning the engine to
    /// its freshly-constructed state. The worker pool survives (threads are
    /// the *process's* resource; a simulated crash kills the node's state,
    /// not the host). After `crash`, session ids restart at 1 — a crashed
    /// server is indistinguishable from a newly spawned one, which is what
    /// lets the cluster kill and re-join remote processes it cannot fork.
    pub fn crash(&mut self) {
        for (&id, state) in &self.sessions {
            let shard = shard_index(id, self.shards.len());
            self.stats.shard_queue_sub(shard, state.pending.len());
        }
        self.sessions.clear();
        self.standbys.clear();
        self.next_session = 1;
        self.pending_total = 0;
        self.telemetry.clear();
        self.ticks = 0;
        self.ledger.clear();
        for slot in &mut self.queue_since {
            *slot = None;
        }
        for (shard, state) in self.shards.iter().enumerate() {
            // lint: allow(no-panic, a poisoned shard lock means a worker panicked mid-batch; engine state is unrecoverable)
            let mut shard_state = state.lock().expect("shard poisoned");
            shard_state.factors = FactorCache::new(self.config.cache_capacity);
            shard_state.components = FactorCache::new(self.config.component_cache_capacity);
            self.stats.set_shard_cache_gauges(shard, 0, 0);
        }
        self.stats.reset();
        self.stats.set_mem_gauges(0, 0, 0);
    }

    /// Applies every session's pending events in one batched dispatch.
    pub fn flush(&mut self) {
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        self.run_batch(&ids, false);
    }

    fn count_request(&self) {
        // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
        self.stats
            .requests
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Serial dispatch phase + one pipeline job per busy shard. `forced_full`
    /// applies to every id in `ids` (used by `force_resolve`).
    fn run_batch(&mut self, ids: &[u64], forced_full: bool) {
        use std::sync::atomic::Ordering;

        // ---- Phase A: coalesce, decide, plan (serial, deterministic) ----
        // Plans bucket by shard; everything cache- or LP-related happens
        // inside the shard jobs, against shard-owned state.
        let shard_count = self.shards.len();
        let mut buckets: BTreeMap<usize, Vec<SolvePlan>> = BTreeMap::new();
        let mut planned = 0usize;
        let mut drained_shards: std::collections::BTreeSet<usize> =
            std::collections::BTreeSet::new();

        let t_coalesce = self.tracer.begin();
        for &id in ids {
            let Some(state) = self.sessions.get_mut(&id) else {
                continue;
            };
            let batch = coalesce(&state.present, &state.catalog, state.lambda, &state.pending);
            let needs_initial = state.served.is_none() && state.generation == 0;
            if !state.pending.is_empty() {
                drained_shards.insert(shard_index(id, shard_count));
            }
            self.pending_total = self.pending_total.saturating_sub(state.pending.len());
            self.stats
                .shard_queue_sub(shard_index(id, shard_count), state.pending.len());
            state.pending.clear();
            state.lifetime_events += batch.raw_events as u64;
            // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
            self.stats
                .events_coalesced
                .fetch_add(batch.coalesced_away as u64, Ordering::Relaxed);
            if !batch.dirty && !needs_initial && !forced_full {
                continue;
            }
            let net_events = batch.raw_events - batch.coalesced_away;
            state.events_since_full += net_events;
            state.present = batch.present.clone();
            if let Some(catalog) = batch.catalog {
                state.catalog = catalog;
            }
            if let Some(lambda) = batch.lambda {
                state.lambda = lambda;
            }
            if batch.reshaped {
                state.rebuild_base();
            }
            if state.present.is_empty() {
                // Dormant: everyone left. Nothing to solve until a join.
                state.served = None;
                continue;
            }

            let inputs = PolicyInputs {
                events_since_full: state.events_since_full,
                present: state.present.len(),
                full_population: state.base.num_users(),
                relative_gap: state.relative_gap(),
                reshaped: batch.reshaped,
                forced_full,
            };
            let decision = self.config.policy.decide(&inputs);

            let session_factors = state
                .last_factor_fingerprint
                .zip(state.last_factors.clone());
            planned += 1;
            buckets
                .entry(shard_index(id, shard_count))
                .or_default()
                .push(SolvePlan {
                    session: id,
                    kind: decision.kind,
                    lp_start: decision.lp_start,
                    base: Arc::clone(&state.base),
                    base_fingerprint: state.base_fingerprint,
                    present: state.present.clone(),
                    catalog: state.catalog.clone(),
                    seed: state.next_solve_seed(),
                    session_factors,
                });
        }
        self.tracer.finish(
            t_coalesce,
            Phase::Coalesce,
            self.current_request,
            0,
            SpanRecord::NO_SHARD,
        );

        // Queue-wait bookkeeping: a shard whose pending events were drained
        // stops waiting now. Shards that also dispatch a job below record
        // the oldest event's enqueue→pickup wait; shards whose events
        // coalesced to nothing just clear (no dispatch to attribute to).
        let mut queue_waits: BTreeMap<usize, Instant> = BTreeMap::new();
        for &shard in &drained_shards {
            if let Some(enqueued_at) = self.queue_since[shard].take() {
                if buckets.contains_key(&shard) {
                    queue_waits.insert(shard, enqueued_at);
                }
            }
        }

        if planned == 0 {
            return;
        }
        // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
        self.stats.batches.fetch_add(1, Ordering::Relaxed);

        // ---- Shard jobs: restrict, resolve factors, round — in parallel
        // across shards, sequentially (in session order) within a shard ----
        let (result_tx, result_rx) = channel();
        let warm_enabled = self.config.policy.warm_start_lp;
        for (shard, plans) in buckets {
            let tx = result_tx.clone();
            let shard_state = Arc::clone(&self.shards[shard]);
            let stats = Arc::clone(&self.stats);
            let tracer = self.tracer.clone();
            let enqueued_at = queue_waits.get(&shard).copied();
            stats.record_shard_dispatch(shard, plans.len() as u64);
            let options = RelaxationOptions {
                backend: self.config.backend,
                ..RelaxationOptions::default()
            };
            let sampling = self.config.sampling;
            let max_idle = self.config.max_idle_iterations;
            self.pool.execute_on(
                shard,
                Box::new(move || {
                    // lint: allow(wall-clock, worker busy-clock telemetry only; solve results never read it)
                    let busy_started = Instant::now();
                    // Queueing ends where service begins: the shard's oldest
                    // pending event waited from enqueue to this pickup.
                    if let Some(enqueued_at) = enqueued_at {
                        stats.record_queue_wait(enqueued_at.elapsed().as_nanos() as u64);
                        tracer.finish(
                            tracer.is_enabled().then_some(enqueued_at),
                            Phase::QueueWait,
                            0,
                            0,
                            shard as u32,
                        );
                    }
                    let t_dispatch = tracer.begin();
                    // lint: allow(no-panic, a poisoned shard lock means a worker panicked mid-batch; engine state is unrecoverable)
                    let mut state = shard_state.lock().expect("shard poisoned");
                    run_shard_plans(
                        &mut state,
                        plans,
                        shard,
                        &options,
                        warm_enabled,
                        sampling,
                        max_idle,
                        &stats,
                        &tracer,
                        &tx,
                    );
                    stats.set_shard_cache_gauges(
                        shard,
                        state.factors.len(),
                        state.factors.footprint_bytes(),
                    );
                    drop(state);
                    tracer.finish(t_dispatch, Phase::ShardDispatch, 0, 0, shard as u32);
                    stats.record_shard_busy(shard, busy_started.elapsed().as_nanos() as u64);
                }),
            );
        }
        drop(result_tx);
        let mut outcomes: Vec<SolveOutcome> = (0..planned)
            // lint: allow(no-panic, a dead worker already panicked; the batch cannot complete and crashing is correct)
            .map(|_| result_rx.recv().expect("shard worker died"))
            .collect();
        outcomes.sort_by_key(|outcome| outcome.session);

        // ---- Apply results in session order (deterministic) ----
        for outcome in outcomes {
            let Some(state) = self.sessions.get_mut(&outcome.session) else {
                continue;
            };
            state.generation += 1;
            match outcome.kind {
                ResolveKind::Incremental => {
                    // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
                    self.stats
                        .solves_incremental
                        .fetch_add(1, Ordering::Relaxed);
                }
                ResolveKind::FullLp => {
                    // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
                    self.stats.solves_full.fetch_add(1, Ordering::Relaxed);
                    state.events_since_full = 0;
                }
            }
            self.stats.record_round(outcome.round_nanos);
            if outcome.tight {
                self.stats.record_gap(outcome.utility, outcome.lp_bound);
            }
            // Ledger fold: serial, in session order — attribution counts are
            // deterministic; the nanos are wall-clock telemetry only.
            self.ledger.record(
                outcome.base_fingerprint,
                outcome.factor_fingerprint,
                outcome.warm_served,
                outcome.solve_nanos,
            );
            state.last_factors = Some(Arc::clone(&outcome.factors));
            state.last_factor_fingerprint = Some(outcome.factor_fingerprint);
            state.served = Some(Served {
                configuration: outcome.configuration,
                present: outcome.present,
                catalog: outcome.catalog,
                utility: outcome.utility,
                lp_bound: outcome.lp_bound,
                tight: outcome.tight,
            });
        }
    }
}

/// The single definition of the session→shard pinning rule (`id mod
/// shards`); every gauge update and dispatch bucket goes through it so the
/// rule can never silently diverge between call sites.
fn shard_index(id: u64, shard_count: usize) -> usize {
    (id % shard_count as u64) as usize
}

/// Executes one shard's plans: restrict the instance, resolve factors
/// (session-affine reuse → shard cache → component-wise solve), re-round, and
/// stream the outcomes back. Runs pinned to the shard's worker with the shard
/// state locked for the whole job.
#[allow(clippy::too_many_arguments)]
fn run_shard_plans(
    shard: &mut ShardState,
    plans: Vec<SolvePlan>,
    shard_index: usize,
    options: &RelaxationOptions,
    warm_enabled: bool,
    sampling: SamplingScheme,
    max_idle: usize,
    stats: &EngineStats,
    tracer: &Tracer,
    tx: &std::sync::mpsc::Sender<SolveOutcome>,
) {
    use std::sync::atomic::Ordering;
    let shard_lane = shard_index as u32;

    // Factors computed by *this* job, keyed by fingerprint. Checked before
    // the shard cache so (a) batch dedup survives `cache_capacity: 0` (the
    // LRU insert is a no-op then) and (b) the stats can tell within-batch
    // sharing apart from genuine cross-flush cache reuse.
    let mut computed_this_batch: std::collections::HashMap<u64, Arc<UtilityFactors>> =
        std::collections::HashMap::new();
    for plan in plans {
        // lint: allow(wall-clock, per-solve latency telemetry only; solve results never read it)
        let solve_started = Instant::now();
        let t_project = tracer.begin();
        let restricted = if plan.present.len() == plan.base.num_users() {
            Arc::clone(&plan.base)
        } else {
            Arc::new(plan.base.restrict_users(&plan.present))
        };
        let factor_fingerprint = match plan.kind {
            ResolveKind::Incremental => plan.base_fingerprint,
            ResolveKind::FullLp => instance_fingerprint(&restricted),
        };
        tracer.finish(t_project, Phase::Project, 0, plan.session, shard_lane);

        // A solve may reuse previously computed factors only when the warm
        // policy allows it (a forced re-solve, or a cold-baseline engine,
        // recomputes). Reuse layers, in order: the session's own last
        // solution, then the shard's fingerprint-keyed factor cache.
        let reuse_allowed = warm_enabled && plan.lp_start == LpStart::Warm;
        let session_reused = plan
            .session_factors
            .as_ref()
            .filter(|(fingerprint, _)| reuse_allowed && *fingerprint == factor_fingerprint);
        let mut warm_served = true;
        let factors: Arc<UtilityFactors> = if let Some((_, factors)) = session_reused {
            // lint: allow(relaxed-store, independent monotonic counters; nothing else is published with them)
            stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            stats.session_reuse.fetch_add(1, Ordering::Relaxed);
            Arc::clone(factors)
        } else if let Some(factors) = reuse_allowed
            .then(|| computed_this_batch.get(&factor_fingerprint))
            .flatten()
        {
            // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
            stats.batch_shared.fetch_add(1, Ordering::Relaxed);
            Arc::clone(factors)
        } else if let Some(factors) = reuse_allowed
            .then(|| shard.factors.get(factor_fingerprint))
            .flatten()
        {
            // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
            stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            factors
        } else {
            warm_served = false;
            let factor_instance = match plan.kind {
                ResolveKind::Incremental => &plan.base,
                ResolveKind::FullLp => &restricted,
            };
            let component_cache = if !warm_enabled {
                None
            } else if reuse_allowed {
                Some(CacheMode::Reuse)
            } else {
                // Forced cold solve in a warm engine: recompute everything,
                // but refresh the warm cache with the fresh solutions.
                Some(CacheMode::Refresh)
            };
            // lint: allow(wall-clock, LP latency telemetry only; solve results never read it)
            let started = Instant::now();
            let t_lp = tracer.begin();
            let outcome = match component_cache {
                None => solve_factors_warm(factor_instance, options, None),
                Some(mode) => solve_factors_warm(
                    factor_instance,
                    options,
                    Some((&mut shard.components, mode)),
                ),
            };
            // Warm vs. cold by what actually happened: a solve that reused at
            // least one cached component solution ran warm.
            let lp_phase = if outcome.reused > 0 {
                Phase::LpWarm
            } else {
                Phase::LpCold
            };
            tracer.finish(t_lp, lp_phase, 0, plan.session, shard_lane);
            let nanos = started.elapsed().as_nanos() as u64;
            // lint: allow(relaxed-store, independent monotonic counter; nothing else is published with it)
            stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            stats.record_lp_compute(nanos, outcome.reused as u64, outcome.solved() as u64);
            if warm_enabled {
                shard
                    .factors
                    .insert(factor_fingerprint, Arc::clone(&outcome.factors));
                computed_this_batch.insert(factor_fingerprint, Arc::clone(&outcome.factors));
            }
            outcome.factors
        };

        // lint: allow(wall-clock, rounding latency telemetry only; solve results never read it)
        let started = Instant::now();
        // Borrow the shared factors in the pass-through case (full population
        // present, or a full solve); only genuine incremental restriction
        // copies rows.
        let sliced;
        let effective: &UtilityFactors = if factors.num_users() == restricted.num_users() {
            factors.as_ref()
        } else {
            sliced = slice_factors(&factors, &restricted, &plan.present);
            &sliced
        };
        let lp_bound = effective.utility_upper_bound(&restricted);
        let mut rng = ChaCha8Rng::seed_from_u64(plan.seed);
        let t_round = tracer.begin();
        let (configuration, _iterations) =
            round_with_factors(&restricted, effective, None, sampling, max_idle, &mut rng);
        tracer.finish(t_round, Phase::Round, 0, plan.session, shard_lane);
        let utility = total_utility(&restricted, &configuration);
        let solve_nanos = solve_started.elapsed().as_nanos() as u64;
        stats.record_solve_class(solve_nanos, warm_served);
        let outcome = SolveOutcome {
            session: plan.session,
            kind: plan.kind,
            configuration,
            utility,
            lp_bound,
            tight: plan.kind == ResolveKind::FullLp,
            present: plan.present,
            catalog: plan.catalog,
            round_nanos: started.elapsed().as_nanos() as u64,
            factors,
            factor_fingerprint,
            base_fingerprint: plan.base_fingerprint,
            warm_served,
            solve_nanos,
        };
        let _ = tx.send(outcome);
    }
}

/// Restricts `factors` (over the base population) to the rows of `present`,
/// producing factors dimensioned for `restricted`. The caller handles the
/// dimensions-already-match case by borrowing the shared factors instead.
fn slice_factors(
    factors: &Arc<UtilityFactors>,
    restricted: &SvgicInstance,
    present: &[UserIdx],
) -> UtilityFactors {
    let n = restricted.num_users();
    let m = restricted.num_items();
    debug_assert_eq!(present.len(), n);
    let mut aggregate = Vec::with_capacity(n * m);
    for &user in present {
        for item in 0..m {
            aggregate.push(factors.aggregate(user, item));
        }
    }
    UtilityFactors::from_aggregate(
        restricted,
        aggregate,
        factors.scaled_objective,
        factors.backend,
    )
}

/// Validates a single event against the session's full universe, returning it
/// in normalized form (`SetCatalog` payloads come back sorted and
/// deduplicated, so the scheduler can compare them directly).
fn validate_event(full: &SvgicInstance, event: SessionEvent) -> Result<SessionEvent, EngineError> {
    use svgic_core::extensions::DynamicEvent;
    match event {
        SessionEvent::Membership(DynamicEvent::Join(user))
        | SessionEvent::Membership(DynamicEvent::Leave(user)) => {
            if user >= full.num_users() {
                return Err(EngineError::InvalidEvent(format!(
                    "user {user} outside population 0..{}",
                    full.num_users()
                )));
            }
        }
        SessionEvent::SetCatalog(items) => {
            let mut sorted = items;
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() < full.num_slots() {
                return Err(EngineError::InvalidEvent(format!(
                    "catalogue of {} items cannot fill k = {} slots",
                    sorted.len(),
                    full.num_slots()
                )));
            }
            if let Some(&item) = sorted.iter().find(|&&item| item >= full.num_items()) {
                return Err(EngineError::InvalidEvent(format!(
                    "item {item} outside catalogue 0..{}",
                    full.num_items()
                )));
            }
            return Ok(SessionEvent::SetCatalog(sorted));
        }
        SessionEvent::RetuneLambda(lambda) => {
            if !lambda.is_finite() || !(0.0..=1.0).contains(&lambda) {
                return Err(EngineError::InvalidEvent(format!(
                    "lambda {lambda} outside [0, 1]"
                )));
            }
        }
    }
    Ok(event)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;
    use svgic_core::extensions::DynamicEvent;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            workers: 2,
            auto_flush_pending: 0,
            ..EngineConfig::default()
        })
    }

    fn create(engine: &mut Engine) -> SessionId {
        let view = engine
            .create_session(CreateSession {
                instance: running_example(),
                initial_present: Vec::new(),
                seed: 0xFEED,
            })
            .expect("session created");
        assert!(view.configuration.is_valid(view.catalog.len()));
        view.session
    }

    #[test]
    fn create_solves_immediately() {
        let mut engine = engine();
        let id = create(&mut engine);
        let view = engine.query_configuration(id).unwrap();
        assert_eq!(view.present.len(), 4);
        assert!(view.utility > 0.0);
        assert_eq!(view.staleness, 0);
    }

    #[test]
    fn events_queue_until_flush() {
        let mut engine = engine();
        let id = create(&mut engine);
        let pending = engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(0)))
            .unwrap();
        assert_eq!(pending, 1);
        assert_eq!(engine.query_configuration(id).unwrap().staleness, 1);
        engine.flush();
        let view = engine.query_configuration(id).unwrap();
        assert_eq!(view.staleness, 0);
        assert_eq!(view.present, vec![1, 2, 3]);
        assert!(view.configuration.is_valid(view.catalog.len()));
    }

    #[test]
    fn invalid_events_rejected() {
        let mut engine = engine();
        let id = create(&mut engine);
        assert!(matches!(
            engine.submit_event(id, SessionEvent::Membership(DynamicEvent::Join(99))),
            Err(EngineError::InvalidEvent(_))
        ));
        assert!(matches!(
            engine.submit_event(id, SessionEvent::RetuneLambda(1.5)),
            Err(EngineError::InvalidEvent(_))
        ));
        assert!(matches!(
            engine.submit_event(id, SessionEvent::SetCatalog(vec![0])),
            Err(EngineError::InvalidEvent(_))
        ));
        assert!(matches!(
            engine.submit_event(SessionId(999), SessionEvent::RetuneLambda(0.5)),
            Err(EngineError::UnknownSession(_))
        ));
    }

    #[test]
    fn force_resolve_is_full_and_tight() {
        let mut engine = engine();
        let id = create(&mut engine);
        engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(2)))
            .unwrap();
        let view = engine.force_resolve(id).unwrap();
        assert_eq!(view.present, vec![0, 1, 3]);
        assert!(view.lp_bound + 1e-9 >= view.utility);
        let stats = engine.stats();
        assert!(stats.solves_full >= 1);
    }

    #[test]
    fn cache_hits_on_population_revisit() {
        let mut engine = engine();
        let id = create(&mut engine);
        // Leave then rejoin: the second solve revisits the original
        // population fingerprint and must hit the cache.
        engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(3)))
            .unwrap();
        engine.flush();
        engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Join(3)))
            .unwrap();
        engine.flush();
        let stats = engine.stats();
        assert!(stats.cache_hits >= 1, "stats: {stats}");
    }

    #[test]
    fn batch_dedup_survives_zero_cache_capacity() {
        // With the factor cache disabled, two sessions needing the same
        // fingerprint in one flush must still share a single LP computation
        // (the within-batch map, not the LRU, carries that guarantee).
        let mut engine = Engine::new(EngineConfig {
            workers: 2,
            shards: 1,
            cache_capacity: 0,
            auto_flush_pending: 0,
            policy: ResolvePolicy {
                // Escalate to a full solve on every event so both sessions
                // need factors for the *same restricted* fingerprint (the
                // session-affine layer can't serve those).
                full_resolve_event_budget: 1,
                ..ResolvePolicy::default()
            },
            ..EngineConfig::default()
        });
        let a = create(&mut engine);
        let b = create(&mut engine);
        engine
            .submit_event(a, SessionEvent::Membership(DynamicEvent::Leave(0)))
            .unwrap();
        engine
            .submit_event(b, SessionEvent::Membership(DynamicEvent::Leave(0)))
            .unwrap();
        engine.flush();
        let stats = engine.stats();
        assert_eq!(engine.cached_factor_sets(), 0, "cache stays disabled");
        assert!(stats.batch_shared >= 1, "{stats}");
        // Two creates + one shared full re-solve = three computations, not
        // four.
        assert_eq!(stats.cache_misses, 3, "{stats}");
    }

    #[test]
    fn full_resolves_on_fragmented_groups_reuse_untouched_components() {
        // The component layer's contract end to end: a group whose social
        // graph splits into two friend pairs loses one shopper; the full
        // re-solve on the restricted population must reuse the untouched
        // pair's factors (solved as part of the initial base solve) instead
        // of recomputing them.
        use svgic_core::instance::SvgicInstanceBuilder;
        use svgic_graph::SocialGraph;
        let graph = SocialGraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)]);
        let mut builder = SvgicInstanceBuilder::new(graph, 4, 2, 0.5);
        builder.fill_preferences(|u, c| 0.1 + 0.07 * ((u * 4 + c) % 9) as f64);
        builder.fill_social(|u, v, c| 0.05 + 0.03 * ((u + 2 * v + c) % 5) as f64);
        let instance = builder.build().expect("valid instance");

        let mut engine = Engine::new(EngineConfig {
            workers: 2,
            shards: 1,
            auto_flush_pending: 0,
            policy: ResolvePolicy {
                full_resolve_event_budget: 1,
                ..ResolvePolicy::default()
            },
            ..EngineConfig::default()
        });
        let view = engine
            .create_session(CreateSession {
                instance,
                initial_present: Vec::new(),
                seed: 11,
            })
            .expect("session created");
        let id = view.session;
        engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(0)))
            .unwrap();
        engine.flush();
        let view = engine.query_configuration(id).unwrap();
        assert_eq!(view.present, vec![1, 2, 3]);
        assert!(view.configuration.is_valid(view.catalog.len()));
        let stats = engine.stats();
        assert!(stats.solves_full >= 1, "{stats}");
        assert!(
            stats.warm_components_reused >= 1,
            "untouched friend pair must be served from the component cache: {stats}"
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = || {
            let mut engine = engine();
            let id = create(&mut engine);
            engine
                .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(1)))
                .unwrap();
            engine.flush();
            engine
                .submit_event(id, SessionEvent::Membership(DynamicEvent::Join(1)))
                .unwrap();
            engine
                .submit_event(id, SessionEvent::RetuneLambda(0.25))
                .unwrap();
            engine.flush();
            let view = engine.query_configuration(id).unwrap();
            (
                view.configuration.clone(),
                view.utility,
                engine.stats().cache_hits,
            )
        };
        let (config_a, utility_a, hits_a) = run();
        let (config_b, utility_b, hits_b) = run();
        assert_eq!(config_a, config_b);
        assert_eq!(utility_a, utility_b);
        assert_eq!(hits_a, hits_b);
    }

    #[test]
    fn dormant_session_serves_empty_view() {
        let mut engine = engine();
        let id = create(&mut engine);
        for user in 0..4 {
            engine
                .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(user)))
                .unwrap();
        }
        engine.flush();
        let view = engine.query_configuration(id).unwrap();
        assert!(view.present.is_empty());
        assert_eq!(view.utility, 0.0);
        // A join revives it.
        engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Join(2)))
            .unwrap();
        engine.flush();
        let view = engine.query_configuration(id).unwrap();
        assert_eq!(view.present, vec![2]);
        assert!(view.configuration.is_valid(view.catalog.len()));
    }

    #[test]
    fn migrated_session_serves_identically_and_warm() {
        // Reference run: one engine serves the whole session.
        let mut reference = engine();
        let ref_id = create(&mut reference);
        reference
            .submit_event(ref_id, SessionEvent::Membership(DynamicEvent::Leave(1)))
            .unwrap();
        reference.flush();
        reference
            .submit_event(ref_id, SessionEvent::Membership(DynamicEvent::Join(1)))
            .unwrap();
        reference.flush();
        let want = reference.query_configuration(ref_id).unwrap();

        // Migrated run: same prefix on engine A, then export → import into a
        // fresh engine B mid-stream (with a pending event in flight).
        let mut a = engine();
        let id = create(&mut a);
        a.submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(1)))
            .unwrap();
        a.flush();
        a.submit_event(id, SessionEvent::Membership(DynamicEvent::Join(1)))
            .unwrap();
        let export = a.export_session(id).unwrap();
        assert!(export.has_warm_capital(), "solved sessions carry factors");
        assert_eq!(export.pending.len(), 1, "in-flight events travel along");
        assert!(a.query_configuration(id).is_err(), "exported = gone");
        assert_eq!(a.stats().sessions_exported, 1);

        let mut b = engine();
        let new_id = b.import_session(export);
        b.flush();
        let got = b.query_configuration(new_id).unwrap();
        assert_eq!(got.configuration, want.configuration);
        assert_eq!(got.utility, want.utility);
        assert_eq!(got.present, want.present);
        assert_eq!(got.generation, want.generation);
        let stats = b.stats();
        assert_eq!(stats.sessions_imported, 1);
        // The carried factors serve the post-migration incremental re-solve
        // via session-affine reuse: no LP ran on the receiving engine.
        assert!(
            stats.session_reuse >= 1,
            "migrated warm capital must be reused: {stats}"
        );
        assert_eq!(stats.cache_misses, 0, "no cold LP after migration");
        assert!(stats.warm_start_rate() > 0.0);
    }

    #[test]
    fn shard_queue_gauge_tracks_pending() {
        let mut engine = Engine::new(EngineConfig {
            workers: 2,
            shards: 2,
            auto_flush_pending: 0,
            ..EngineConfig::default()
        });
        let a = create(&mut engine);
        let b = create(&mut engine);
        engine
            .submit_event(a, SessionEvent::Membership(DynamicEvent::Leave(0)))
            .unwrap();
        engine
            .submit_event(b, SessionEvent::Membership(DynamicEvent::Leave(1)))
            .unwrap();
        engine
            .submit_event(b, SessionEvent::RetuneLambda(0.4))
            .unwrap();
        let snap = engine.stats();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.total_queue_depth(), 3);
        // Sessions 1 and 2 pin to shards 1 and 0 respectively.
        assert_eq!(snap.shards[(a.0 % 2) as usize].queue_depth, 1);
        assert_eq!(snap.shards[(b.0 % 2) as usize].queue_depth, 2);
        engine.flush();
        let snap = engine.stats();
        assert_eq!(snap.total_queue_depth(), 0, "flush drains the gauges");
        let shard_solves: u64 = snap.shards.iter().map(|s| s.solves).sum();
        assert_eq!(
            shard_solves,
            snap.solves(),
            "per-shard solves account for every solve"
        );
        assert!(snap.shards.iter().any(|s| s.jobs > 0));
    }

    #[test]
    fn telemetry_samples_on_flush_requests_with_monotone_ticks() {
        let mut engine = engine();
        let id = create(&mut engine);
        assert!(engine.telemetry().is_empty(), "no tick yet");
        for _ in 0..3 {
            engine
                .submit_event(id, SessionEvent::RetuneLambda(0.3))
                .unwrap();
            engine.handle(EngineRequest::Flush).unwrap();
        }
        let samples = engine.telemetry();
        assert_eq!(samples.len(), 3);
        let ticks: Vec<u64> = samples.iter().map(|s| s.tick).collect();
        assert_eq!(ticks, vec![0, 1, 2], "ticks are the flush count");
        let last = samples.last().unwrap();
        assert!(last.requests > 0);
        assert!(last.mem_session_bytes > 0, "live session is accounted");
        assert_eq!(
            last.mem_total_bytes,
            last.mem_session_bytes
                + last.mem_pending_bytes
                + last.mem_served_bytes
                + last.mem_cache_bytes
        );
        // Direct flush() calls (auto-flush path) are not tick boundaries.
        engine.flush();
        assert_eq!(engine.telemetry().len(), 3);
    }

    #[test]
    fn reset_stats_clears_the_ring_and_restarts_the_tick_clock() {
        let mut engine = engine();
        create(&mut engine);
        engine.handle(EngineRequest::Flush).unwrap();
        engine.handle(EngineRequest::Flush).unwrap();
        assert_eq!(engine.telemetry().len(), 2);
        engine.handle(EngineRequest::ResetStats).unwrap();
        assert!(engine.telemetry().is_empty(), "warmup samples discarded");
        engine.handle(EngineRequest::Flush).unwrap();
        let samples = engine.telemetry();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].tick, 0, "tick clock restarts at the boundary");
    }

    #[test]
    fn zero_telemetry_capacity_disables_sampling() {
        let mut engine = Engine::new(EngineConfig {
            workers: 2,
            auto_flush_pending: 0,
            telemetry_capacity: 0,
            ..EngineConfig::default()
        });
        create(&mut engine);
        engine.handle(EngineRequest::Flush).unwrap();
        assert!(engine.telemetry().is_empty());
        let EngineResponse::Telemetry(samples) =
            engine.handle(EngineRequest::QueryTelemetry).unwrap()
        else {
            panic!("wrong response variant");
        };
        assert!(samples.is_empty());
    }

    #[test]
    fn mem_gauges_track_live_state_and_survive_reset() {
        let mut engine = engine();
        let id = create(&mut engine);
        let snap = engine.stats();
        assert!(snap.mem_session_bytes > 0);
        assert!(snap.mem_served_bytes > 0, "initial solve leaves a Served");
        assert_eq!(snap.mem_pending_bytes, 0);
        engine
            .submit_event(id, SessionEvent::RetuneLambda(0.7))
            .unwrap();
        let queued = engine.stats();
        assert!(queued.mem_pending_bytes > 0, "queued event is accounted");
        engine.reset_stats();
        let after = engine.stats();
        assert_eq!(
            after.mem_session_bytes, queued.mem_session_bytes,
            "mem gauges describe live state, not the measurement window"
        );
        engine.close_session(id).unwrap();
        let empty = engine.stats();
        assert_eq!(empty.mem_session_bytes, 0);
        assert_eq!(empty.mem_pending_bytes, 0);
        assert_eq!(empty.mem_served_bytes, 0);
    }

    #[test]
    fn close_reports_lifetime_events() {
        let mut engine = engine();
        let id = create(&mut engine);
        engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(0)))
            .unwrap();
        engine.flush();
        let lifetime = engine.close_session(id).unwrap();
        assert_eq!(lifetime, 1);
        assert!(engine.query_configuration(id).is_err());
        assert_eq!(engine.session_count(), 0);
    }

    #[test]
    fn typed_request_roundtrip() {
        let mut engine = engine();
        let response = engine
            .handle(EngineRequest::CreateSession(Box::new(CreateSession {
                instance: running_example(),
                initial_present: vec![0, 1],
                seed: 1,
            })))
            .unwrap();
        let EngineResponse::SessionCreated(view) = response else {
            panic!("wrong response variant");
        };
        let id = view.session;
        let response = engine
            .handle(EngineRequest::SubmitEvent(
                id,
                SessionEvent::Membership(DynamicEvent::Join(2)),
            ))
            .unwrap();
        assert!(matches!(
            response,
            EngineResponse::EventAccepted { pending: 1, .. }
        ));
        let response = engine.handle(EngineRequest::ForceResolve(id)).unwrap();
        let EngineResponse::Resolved(view) = response else {
            panic!("wrong response variant");
        };
        assert_eq!(view.present, vec![0, 1, 2]);
        let response = engine.handle(EngineRequest::CloseSession(id)).unwrap();
        assert!(matches!(response, EngineResponse::SessionClosed { .. }));
    }
}
