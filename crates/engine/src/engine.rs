//! The engine: session store, batched dispatch, worker pool, factor cache.
//!
//! # Dispatch model
//!
//! Events accumulate per session ([`crate::scheduler::coalesce`] folds them at
//! dispatch time). A flush runs in two parallel waves on the worker pool:
//!
//! 1. **LP wave** — every *distinct missing* factor fingerprint in the batch
//!    is solved once (`solve_relaxation`) and inserted into the LRU cache;
//!    sessions sharing a fingerprint (or hitting the cache) skip the LP
//!    entirely.
//! 2. **Rounding wave** — every scheduled session re-rounds on its restricted
//!    instance: incremental solves slice the full-population factor rows of
//!    the present shoppers (the paper's §5 dynamic mechanism), full solves
//!    round on factors computed for exactly the restricted instance.
//!
//! Rounding seeds derive from `(session seed, generation)` and results are
//! applied in session order, so served configurations are reproducible under
//! a fixed seed regardless of worker scheduling.

use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Instant;

use svgic_algorithms::avg::round_with_factors;
use svgic_algorithms::factors::{solve_relaxation, RelaxationOptions};
use svgic_algorithms::{LpBackend, SamplingScheme, UtilityFactors};
use svgic_core::utility::total_utility;
use svgic_core::{Configuration, ItemIdx, SvgicInstance, UserIdx};

use rand_chacha::ChaCha8Rng;

use crate::api::{
    ConfigurationView, CreateSession, EngineError, EngineRequest, EngineResponse, SessionEvent,
    SessionId,
};
use crate::cache::FactorCache;
use crate::fingerprint::instance_fingerprint;
use crate::policy::{PolicyInputs, ResolveKind, ResolvePolicy};
use crate::pool::WorkerPool;
use crate::scheduler::coalesce;
use crate::session::{Served, SessionState};
use crate::stats::{EngineStats, StatsSnapshot};

use rand::SeedableRng;

/// Engine-wide tunables.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads (`0` = one per available core).
    pub workers: usize,
    /// Factor-cache capacity in factor sets (`0` disables caching).
    pub cache_capacity: usize,
    /// Incremental-vs-full re-solve policy.
    pub policy: ResolvePolicy,
    /// Auto-flush once this many events are pending engine-wide
    /// (`0` disables auto-flush; call [`Engine::flush`] manually).
    pub auto_flush_pending: usize,
    /// LP backend for relaxation solves.
    pub backend: LpBackend,
    /// Rounding sampling scheme.
    pub sampling: SamplingScheme,
    /// Idle-iteration safety valve for the rounding loop.
    pub max_idle_iterations: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            cache_capacity: 128,
            policy: ResolvePolicy::default(),
            auto_flush_pending: 32,
            backend: LpBackend::Auto,
            sampling: SamplingScheme::Advanced,
            max_idle_iterations: 10_000,
        }
    }
}

/// One scheduled solve, produced by the serial dispatch phase.
struct SolvePlan {
    session: u64,
    kind: ResolveKind,
    restricted: Arc<SvgicInstance>,
    present: Vec<UserIdx>,
    catalog: Vec<ItemIdx>,
    factor_fingerprint: u64,
    seed: u64,
}

/// Result of a rounding job.
struct SolveOutcome {
    session: u64,
    kind: ResolveKind,
    configuration: Configuration,
    utility: f64,
    lp_bound: f64,
    tight: bool,
    present: Vec<UserIdx>,
    catalog: Vec<ItemIdx>,
    round_nanos: u64,
}

/// The online multi-session serving engine.
pub struct Engine {
    config: EngineConfig,
    sessions: BTreeMap<u64, SessionState>,
    next_session: u64,
    cache: FactorCache,
    pool: WorkerPool,
    stats: Arc<EngineStats>,
    /// Events queued across all sessions (kept incrementally so the
    /// auto-flush threshold check is O(1) per submit).
    pending_total: usize,
}

impl Engine {
    /// Builds an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        let pool = WorkerPool::new(config.workers);
        let cache = FactorCache::new(config.cache_capacity);
        Engine {
            config,
            sessions: BTreeMap::new(),
            next_session: 1,
            cache,
            pool,
            stats: Arc::new(EngineStats::default()),
            pending_total: 0,
        }
    }

    /// Builds an engine with default configuration.
    pub fn with_defaults() -> Self {
        Engine::new(EngineConfig::default())
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Number of factor sets currently cached.
    pub fn cached_factor_sets(&self) -> usize {
        self.cache.len()
    }

    /// A point-in-time snapshot of the engine counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Resets the engine counters to zero without touching sessions or the
    /// factor cache — e.g. to exclude a warmup prefix from a measured run
    /// while keeping the caches warm.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Handles a typed request.
    pub fn handle(&mut self, request: EngineRequest) -> Result<EngineResponse, EngineError> {
        match request {
            EngineRequest::CreateSession(spec) => self
                .create_session(*spec)
                .map(EngineResponse::SessionCreated),
            EngineRequest::SubmitEvent(session, event) => self
                .submit_event(session, event)
                .map(|pending| EngineResponse::EventAccepted { session, pending }),
            EngineRequest::QueryConfiguration(session) => self
                .query_configuration(session)
                .map(EngineResponse::Configuration),
            EngineRequest::ForceResolve(session) => {
                self.force_resolve(session).map(EngineResponse::Resolved)
            }
            EngineRequest::CloseSession(session) => {
                self.close_session(session)
                    .map(|lifetime_events| EngineResponse::SessionClosed {
                        session,
                        lifetime_events,
                    })
            }
        }
    }

    /// Opens a session and solves its initial configuration.
    pub fn create_session(
        &mut self,
        spec: CreateSession,
    ) -> Result<ConfigurationView, EngineError> {
        self.count_request();
        let CreateSession {
            instance,
            mut initial_present,
            seed,
        } = spec;
        if instance.num_users() == 0 {
            return Err(EngineError::InvalidSession("instance has no users".into()));
        }
        if initial_present.is_empty() {
            initial_present = (0..instance.num_users()).collect();
        }
        initial_present.sort_unstable();
        initial_present.dedup();
        if let Some(&out_of_range) = initial_present
            .iter()
            .find(|&&user| user >= instance.num_users())
        {
            return Err(EngineError::InvalidSession(format!(
                "initial user {out_of_range} outside population 0..{}",
                instance.num_users()
            )));
        }
        let id = self.next_session;
        self.next_session += 1;
        let state = SessionState::new(SessionId(id), instance, initial_present, seed);
        self.sessions.insert(id, state);
        self.stats
            .sessions_created
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.run_batch(&[id], false);
        Ok(self.sessions[&id].view())
    }

    /// Queues an event; may trigger an auto-flush.
    pub fn submit_event(
        &mut self,
        session: SessionId,
        event: SessionEvent,
    ) -> Result<usize, EngineError> {
        self.count_request();
        let state = self
            .sessions
            .get_mut(&session.0)
            .ok_or(EngineError::UnknownSession(session))?;
        let event = validate_event(&state.full, event)?;
        state.pending.push(event);
        self.pending_total += 1;
        self.stats
            .events_submitted
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let threshold = self.config.auto_flush_pending;
        if threshold > 0 && self.pending_total >= threshold {
            self.flush();
        }
        Ok(self
            .sessions
            .get(&session.0)
            .map(|state| state.pending.len())
            .unwrap_or(0))
    }

    /// Reads the last served configuration without solving.
    pub fn query_configuration(
        &mut self,
        session: SessionId,
    ) -> Result<ConfigurationView, EngineError> {
        self.count_request();
        self.sessions
            .get(&session.0)
            .map(SessionState::view)
            .ok_or(EngineError::UnknownSession(session))
    }

    /// Applies the session's pending events now and forces a full LP re-solve.
    pub fn force_resolve(&mut self, session: SessionId) -> Result<ConfigurationView, EngineError> {
        self.count_request();
        if !self.sessions.contains_key(&session.0) {
            return Err(EngineError::UnknownSession(session));
        }
        self.run_batch(&[session.0], true);
        Ok(self.sessions[&session.0].view())
    }

    /// Closes a session, dropping any unapplied events.
    pub fn close_session(&mut self, session: SessionId) -> Result<u64, EngineError> {
        self.count_request();
        let state = self
            .sessions
            .remove(&session.0)
            .ok_or(EngineError::UnknownSession(session))?;
        self.pending_total = self.pending_total.saturating_sub(state.pending.len());
        self.stats
            .sessions_closed
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(state.lifetime_events)
    }

    /// Applies every session's pending events in one batched dispatch.
    pub fn flush(&mut self) {
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        self.run_batch(&ids, false);
    }

    fn count_request(&self) {
        self.stats
            .requests
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Serial dispatch phase + two parallel waves. `forced_full` applies to
    /// every id in `ids` (used by `force_resolve`).
    fn run_batch(&mut self, ids: &[u64], forced_full: bool) {
        use std::sync::atomic::Ordering;

        // ---- Phase A: coalesce, decide, plan (serial, deterministic) ----
        let mut plans: Vec<SolvePlan> = Vec::new();
        // Factor sources for this batch: fingerprint -> cached Arc or the
        // instance a leader job must solve.
        let mut cached: HashMap<u64, Arc<UtilityFactors>> = HashMap::new();
        let mut to_compute: BTreeMap<u64, Arc<SvgicInstance>> = BTreeMap::new();

        for &id in ids {
            let Some(state) = self.sessions.get_mut(&id) else {
                continue;
            };
            let batch = coalesce(&state.present, &state.catalog, state.lambda, &state.pending);
            let needs_initial = state.served.is_none() && state.generation == 0;
            self.pending_total = self.pending_total.saturating_sub(state.pending.len());
            state.pending.clear();
            state.lifetime_events += batch.raw_events as u64;
            self.stats
                .events_coalesced
                .fetch_add(batch.coalesced_away as u64, Ordering::Relaxed);
            if !batch.dirty && !needs_initial && !forced_full {
                continue;
            }
            let net_events = batch.raw_events - batch.coalesced_away;
            state.events_since_full += net_events;
            state.present = batch.present.clone();
            if let Some(catalog) = batch.catalog {
                state.catalog = catalog;
            }
            if let Some(lambda) = batch.lambda {
                state.lambda = lambda;
            }
            if batch.reshaped {
                state.rebuild_base();
            }
            if state.present.is_empty() {
                // Dormant: everyone left. Nothing to solve until a join.
                state.served = None;
                continue;
            }

            let inputs = PolicyInputs {
                events_since_full: state.events_since_full,
                present: state.present.len(),
                full_population: state.base.num_users(),
                relative_gap: state.relative_gap(),
                reshaped: batch.reshaped,
                forced_full,
            };
            let kind = self.config.policy.decide(&inputs);

            let restricted = if state.present.len() == state.base.num_users() {
                Arc::clone(&state.base)
            } else {
                Arc::new(state.base.restrict_users(&state.present))
            };
            let factor_fingerprint = match kind {
                ResolveKind::Incremental => state.base_fingerprint,
                ResolveKind::FullLp => instance_fingerprint(&restricted),
            };

            // Cache accounting happens here, serially, so hit counts are
            // deterministic under a fixed request sequence.
            if let std::collections::hash_map::Entry::Vacant(e) = cached.entry(factor_fingerprint) {
                if let Some(factors) = self.cache.get(factor_fingerprint) {
                    e.insert(factors);
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                } else if let std::collections::btree_map::Entry::Vacant(e) =
                    to_compute.entry(factor_fingerprint)
                {
                    let factor_instance = match kind {
                        ResolveKind::Incremental => Arc::clone(&state.base),
                        ResolveKind::FullLp => Arc::clone(&restricted),
                    };
                    e.insert(factor_instance);
                    self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                } else {
                    // Another session in this batch already queued the LP;
                    // that is batch dedup, not a cache hit.
                    self.stats.batch_shared.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                self.stats.batch_shared.fetch_add(1, Ordering::Relaxed);
            }

            plans.push(SolvePlan {
                session: id,
                kind,
                restricted,
                present: state.present.clone(),
                catalog: state.catalog.clone(),
                factor_fingerprint,
                seed: state.next_solve_seed(),
            });
        }

        if plans.is_empty() {
            return;
        }
        self.stats.batches.fetch_add(1, Ordering::Relaxed);

        // ---- Wave 1: solve every distinct missing LP in parallel ----
        if !to_compute.is_empty() {
            let (result_tx, result_rx) = channel();
            let jobs = to_compute.len();
            for (fingerprint, instance) in std::mem::take(&mut to_compute) {
                let tx = result_tx.clone();
                let options = RelaxationOptions {
                    backend: self.config.backend,
                    ..RelaxationOptions::default()
                };
                self.pool.execute(Box::new(move || {
                    let started = Instant::now();
                    let factors = solve_relaxation(&instance, &options);
                    let nanos = started.elapsed().as_nanos() as u64;
                    let _ = tx.send((fingerprint, Arc::new(factors), nanos));
                }));
            }
            drop(result_tx);
            let mut solved: Vec<(u64, Arc<UtilityFactors>, u64)> = (0..jobs)
                .map(|_| result_rx.recv().expect("LP worker died"))
                .collect();
            solved.sort_by_key(|(fingerprint, _, _)| *fingerprint);
            for (fingerprint, factors, nanos) in solved {
                self.stats.record_solve_nanos(nanos, 0);
                self.cache.insert(fingerprint, Arc::clone(&factors));
                cached.insert(fingerprint, factors);
            }
        }

        // ---- Wave 2: re-round every scheduled session in parallel ----
        let (result_tx, result_rx) = channel();
        let jobs = plans.len();
        for plan in plans {
            let tx = result_tx.clone();
            let factors = Arc::clone(
                cached
                    .get(&plan.factor_fingerprint)
                    .expect("factor source resolved in wave 1"),
            );
            let sampling = self.config.sampling;
            let max_idle = self.config.max_idle_iterations;
            self.pool.execute(Box::new(move || {
                let started = Instant::now();
                // Borrow the shared factors in the pass-through case (full
                // population present, or a full solve); only genuine
                // incremental restriction copies rows.
                let sliced;
                let effective: &UtilityFactors =
                    if factors.num_users() == plan.restricted.num_users() {
                        factors.as_ref()
                    } else {
                        sliced = slice_factors(&factors, &plan.restricted, &plan.present);
                        &sliced
                    };
                let lp_bound = effective.utility_upper_bound(&plan.restricted);
                let mut rng = ChaCha8Rng::seed_from_u64(plan.seed);
                let (configuration, _iterations) = round_with_factors(
                    &plan.restricted,
                    effective,
                    None,
                    sampling,
                    max_idle,
                    &mut rng,
                );
                let utility = total_utility(&plan.restricted, &configuration);
                let outcome = SolveOutcome {
                    session: plan.session,
                    kind: plan.kind,
                    configuration,
                    utility,
                    lp_bound,
                    tight: plan.kind == ResolveKind::FullLp,
                    present: plan.present,
                    catalog: plan.catalog,
                    round_nanos: started.elapsed().as_nanos() as u64,
                };
                let _ = tx.send(outcome);
            }));
        }
        drop(result_tx);
        let mut outcomes: Vec<SolveOutcome> = (0..jobs)
            .map(|_| result_rx.recv().expect("round worker died"))
            .collect();
        outcomes.sort_by_key(|outcome| outcome.session);

        // ---- Apply results in session order (deterministic) ----
        for outcome in outcomes {
            let Some(state) = self.sessions.get_mut(&outcome.session) else {
                continue;
            };
            state.generation += 1;
            match outcome.kind {
                ResolveKind::Incremental => {
                    self.stats
                        .solves_incremental
                        .fetch_add(1, Ordering::Relaxed);
                }
                ResolveKind::FullLp => {
                    self.stats.solves_full.fetch_add(1, Ordering::Relaxed);
                    state.events_since_full = 0;
                }
            }
            self.stats.record_solve_nanos(0, outcome.round_nanos);
            if outcome.tight {
                self.stats.record_gap(outcome.utility, outcome.lp_bound);
            }
            state.served = Some(Served {
                configuration: outcome.configuration,
                present: outcome.present,
                catalog: outcome.catalog,
                utility: outcome.utility,
                lp_bound: outcome.lp_bound,
                tight: outcome.tight,
            });
        }
    }
}

/// Restricts `factors` (over the base population) to the rows of `present`,
/// producing factors dimensioned for `restricted`. The caller handles the
/// dimensions-already-match case by borrowing the shared factors instead.
fn slice_factors(
    factors: &Arc<UtilityFactors>,
    restricted: &SvgicInstance,
    present: &[UserIdx],
) -> UtilityFactors {
    let n = restricted.num_users();
    let m = restricted.num_items();
    debug_assert_eq!(present.len(), n);
    let mut aggregate = Vec::with_capacity(n * m);
    for &user in present {
        for item in 0..m {
            aggregate.push(factors.aggregate(user, item));
        }
    }
    UtilityFactors::from_aggregate(
        restricted,
        aggregate,
        factors.scaled_objective,
        factors.backend,
    )
}

/// Validates a single event against the session's full universe, returning it
/// in normalized form (`SetCatalog` payloads come back sorted and
/// deduplicated, so the scheduler can compare them directly).
fn validate_event(full: &SvgicInstance, event: SessionEvent) -> Result<SessionEvent, EngineError> {
    use svgic_core::extensions::DynamicEvent;
    match event {
        SessionEvent::Membership(DynamicEvent::Join(user))
        | SessionEvent::Membership(DynamicEvent::Leave(user)) => {
            if user >= full.num_users() {
                return Err(EngineError::InvalidEvent(format!(
                    "user {user} outside population 0..{}",
                    full.num_users()
                )));
            }
        }
        SessionEvent::SetCatalog(items) => {
            let mut sorted = items;
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() < full.num_slots() {
                return Err(EngineError::InvalidEvent(format!(
                    "catalogue of {} items cannot fill k = {} slots",
                    sorted.len(),
                    full.num_slots()
                )));
            }
            if let Some(&item) = sorted.iter().find(|&&item| item >= full.num_items()) {
                return Err(EngineError::InvalidEvent(format!(
                    "item {item} outside catalogue 0..{}",
                    full.num_items()
                )));
            }
            return Ok(SessionEvent::SetCatalog(sorted));
        }
        SessionEvent::RetuneLambda(lambda) => {
            if !lambda.is_finite() || !(0.0..=1.0).contains(&lambda) {
                return Err(EngineError::InvalidEvent(format!(
                    "lambda {lambda} outside [0, 1]"
                )));
            }
        }
    }
    Ok(event)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;
    use svgic_core::extensions::DynamicEvent;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            workers: 2,
            auto_flush_pending: 0,
            ..EngineConfig::default()
        })
    }

    fn create(engine: &mut Engine) -> SessionId {
        let view = engine
            .create_session(CreateSession {
                instance: running_example(),
                initial_present: Vec::new(),
                seed: 0xFEED,
            })
            .expect("session created");
        assert!(view.configuration.is_valid(view.catalog.len()));
        view.session
    }

    #[test]
    fn create_solves_immediately() {
        let mut engine = engine();
        let id = create(&mut engine);
        let view = engine.query_configuration(id).unwrap();
        assert_eq!(view.present.len(), 4);
        assert!(view.utility > 0.0);
        assert_eq!(view.staleness, 0);
    }

    #[test]
    fn events_queue_until_flush() {
        let mut engine = engine();
        let id = create(&mut engine);
        let pending = engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(0)))
            .unwrap();
        assert_eq!(pending, 1);
        assert_eq!(engine.query_configuration(id).unwrap().staleness, 1);
        engine.flush();
        let view = engine.query_configuration(id).unwrap();
        assert_eq!(view.staleness, 0);
        assert_eq!(view.present, vec![1, 2, 3]);
        assert!(view.configuration.is_valid(view.catalog.len()));
    }

    #[test]
    fn invalid_events_rejected() {
        let mut engine = engine();
        let id = create(&mut engine);
        assert!(matches!(
            engine.submit_event(id, SessionEvent::Membership(DynamicEvent::Join(99))),
            Err(EngineError::InvalidEvent(_))
        ));
        assert!(matches!(
            engine.submit_event(id, SessionEvent::RetuneLambda(1.5)),
            Err(EngineError::InvalidEvent(_))
        ));
        assert!(matches!(
            engine.submit_event(id, SessionEvent::SetCatalog(vec![0])),
            Err(EngineError::InvalidEvent(_))
        ));
        assert!(matches!(
            engine.submit_event(SessionId(999), SessionEvent::RetuneLambda(0.5)),
            Err(EngineError::UnknownSession(_))
        ));
    }

    #[test]
    fn force_resolve_is_full_and_tight() {
        let mut engine = engine();
        let id = create(&mut engine);
        engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(2)))
            .unwrap();
        let view = engine.force_resolve(id).unwrap();
        assert_eq!(view.present, vec![0, 1, 3]);
        assert!(view.lp_bound + 1e-9 >= view.utility);
        let stats = engine.stats();
        assert!(stats.solves_full >= 1);
    }

    #[test]
    fn cache_hits_on_population_revisit() {
        let mut engine = engine();
        let id = create(&mut engine);
        // Leave then rejoin: the second solve revisits the original
        // population fingerprint and must hit the cache.
        engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(3)))
            .unwrap();
        engine.flush();
        engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Join(3)))
            .unwrap();
        engine.flush();
        let stats = engine.stats();
        assert!(stats.cache_hits >= 1, "stats: {stats}");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = || {
            let mut engine = engine();
            let id = create(&mut engine);
            engine
                .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(1)))
                .unwrap();
            engine.flush();
            engine
                .submit_event(id, SessionEvent::Membership(DynamicEvent::Join(1)))
                .unwrap();
            engine
                .submit_event(id, SessionEvent::RetuneLambda(0.25))
                .unwrap();
            engine.flush();
            let view = engine.query_configuration(id).unwrap();
            (
                view.configuration.clone(),
                view.utility,
                engine.stats().cache_hits,
            )
        };
        let (config_a, utility_a, hits_a) = run();
        let (config_b, utility_b, hits_b) = run();
        assert_eq!(config_a, config_b);
        assert_eq!(utility_a, utility_b);
        assert_eq!(hits_a, hits_b);
    }

    #[test]
    fn dormant_session_serves_empty_view() {
        let mut engine = engine();
        let id = create(&mut engine);
        for user in 0..4 {
            engine
                .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(user)))
                .unwrap();
        }
        engine.flush();
        let view = engine.query_configuration(id).unwrap();
        assert!(view.present.is_empty());
        assert_eq!(view.utility, 0.0);
        // A join revives it.
        engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Join(2)))
            .unwrap();
        engine.flush();
        let view = engine.query_configuration(id).unwrap();
        assert_eq!(view.present, vec![2]);
        assert!(view.configuration.is_valid(view.catalog.len()));
    }

    #[test]
    fn close_reports_lifetime_events() {
        let mut engine = engine();
        let id = create(&mut engine);
        engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(0)))
            .unwrap();
        engine.flush();
        let lifetime = engine.close_session(id).unwrap();
        assert_eq!(lifetime, 1);
        assert!(engine.query_configuration(id).is_err());
        assert_eq!(engine.session_count(), 0);
    }

    #[test]
    fn typed_request_roundtrip() {
        let mut engine = engine();
        let response = engine
            .handle(EngineRequest::CreateSession(Box::new(CreateSession {
                instance: running_example(),
                initial_present: vec![0, 1],
                seed: 1,
            })))
            .unwrap();
        let EngineResponse::SessionCreated(view) = response else {
            panic!("wrong response variant");
        };
        let id = view.session;
        let response = engine
            .handle(EngineRequest::SubmitEvent(
                id,
                SessionEvent::Membership(DynamicEvent::Join(2)),
            ))
            .unwrap();
        assert!(matches!(
            response,
            EngineResponse::EventAccepted { pending: 1, .. }
        ));
        let response = engine.handle(EngineRequest::ForceResolve(id)).unwrap();
        let EngineResponse::Resolved(view) = response else {
            panic!("wrong response variant");
        };
        assert_eq!(view.present, vec![0, 1, 2]);
        let response = engine.handle(EngineRequest::CloseSession(id)).unwrap();
        assert!(matches!(response, EngineResponse::SessionClosed { .. }));
    }
}
