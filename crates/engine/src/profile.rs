//! Per-template cost-attribution ledger.
//!
//! Every solve is attributed to the **template fingerprint** of its base
//! instance (the catalogue/layout skeleton sessions are stamped from), so a
//! profile names which templates burn cold LP time and why. The ledger is a
//! fixed-capacity `BTreeMap` folded **serially** in the engine's apply loop
//! (session order), so its counts are deterministic under a fixed seed;
//! the nanosecond fields are wall-clock and are never digest-covered.
//!
//! Cold solves carry a **miss cause**:
//!
//! * `new_fingerprint` — first time any session needed this exact factor
//!   fingerprint under this template: cold by necessity;
//! * `evicted` — this factor fingerprint was computed before, so the miss is
//!   pure cache pressure (capacity tuning fixes it);
//! * `component_changed` — the template was seen before but this factor
//!   fingerprint is new: population/catalogue churn changed the instance
//!   composition (incremental factorization is the fix, not capacity).

use std::collections::{BTreeMap, BTreeSet};

use svgic_obs::{PhaseAggregate, RequestWaterfall};

/// Hard cap on the seen-fingerprint recall sets, independent of the entry
/// capacity. Past it new fingerprints stop being remembered (deterministic
/// drop-new policy) and previously-unseen misses classify as
/// `new_fingerprint` — a conservative answer, never a wrong `evicted` one.
const SEEN_CAPACITY: usize = 65_536;

/// Ledger counters for one template fingerprint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileEntry {
    /// The template (base-instance) fingerprint the counters attribute to.
    pub template_fingerprint: u64,
    /// Re-solves served warm (factors reused) under this template.
    pub warm_solves: u64,
    /// Re-solves served cold (factors computed) under this template.
    pub cold_solves: u64,
    /// Wall nanoseconds of the warm re-solves (observability only).
    pub warm_nanos: u64,
    /// Wall nanoseconds of the cold re-solves (observability only).
    pub cold_nanos: u64,
    /// Cold solves whose factor fingerprint had never been computed.
    pub miss_new: u64,
    /// Cold solves whose factor fingerprint had been computed before —
    /// pure cache-capacity pressure.
    pub miss_evicted: u64,
    /// Cold solves under a previously-seen template but a new factor
    /// fingerprint — population/catalogue churn.
    pub miss_component_changed: u64,
}

impl ProfileEntry {
    /// Total solves attributed to this template.
    pub fn solves(&self) -> u64 {
        self.warm_solves + self.cold_solves
    }

    /// Folds another entry for the same template into this one.
    pub fn merge(&mut self, other: &ProfileEntry) {
        self.warm_solves += other.warm_solves;
        self.cold_solves += other.cold_solves;
        self.warm_nanos += other.warm_nanos;
        self.cold_nanos += other.cold_nanos;
        self.miss_new += other.miss_new;
        self.miss_evicted += other.miss_evicted;
        self.miss_component_changed += other.miss_component_changed;
    }
}

/// Merges `src` ledger entries into `dst`, matching on template fingerprint
/// and keeping `dst` ascending by fingerprint. This is how
/// `StatsSnapshot::merge` aggregates per-node ledgers into a fleet view.
pub fn merge_entries(dst: &mut Vec<ProfileEntry>, src: &[ProfileEntry]) {
    for entry in src {
        match dst.binary_search_by_key(&entry.template_fingerprint, |e| e.template_fingerprint) {
            Ok(i) => dst[i].merge(entry),
            Err(i) => dst.insert(i, entry.clone()),
        }
    }
}

/// The engine's fixed-capacity per-template solve ledger.
///
/// `capacity` bounds the number of distinct template entries; solves for
/// templates beyond it are counted in `dropped` instead of being attributed
/// (deterministic drop-new policy — existing entries keep accumulating). A
/// capacity of `0` disables the ledger entirely.
#[derive(Debug)]
pub struct SolveLedger {
    capacity: usize,
    entries: BTreeMap<u64, ProfileEntry>,
    dropped: u64,
    seen_factors: BTreeSet<u64>,
    seen_templates: BTreeSet<u64>,
}

impl SolveLedger {
    /// A ledger holding at most `capacity` template entries (`0` disables).
    pub fn new(capacity: usize) -> Self {
        SolveLedger {
            capacity,
            entries: BTreeMap::new(),
            dropped: 0,
            seen_factors: BTreeSet::new(),
            seen_templates: BTreeSet::new(),
        }
    }

    /// Whether the ledger records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Attributes one solve to `template_fingerprint`. `factor_fingerprint`
    /// identifies the exact factor set the solve needed (drives miss-cause
    /// classification), `warm` whether factors were reused, `nanos` the
    /// solve's wall time.
    pub fn record(
        &mut self,
        template_fingerprint: u64,
        factor_fingerprint: u64,
        warm: bool,
        nanos: u64,
    ) {
        if self.capacity == 0 {
            return;
        }
        let template_seen = self.seen_templates.contains(&template_fingerprint);
        let factors_seen = self.seen_factors.contains(&factor_fingerprint);
        if self.seen_templates.len() < SEEN_CAPACITY {
            self.seen_templates.insert(template_fingerprint);
        }
        if self.seen_factors.len() < SEEN_CAPACITY {
            self.seen_factors.insert(factor_fingerprint);
        }
        if !self.entries.contains_key(&template_fingerprint) && self.entries.len() >= self.capacity
        {
            self.dropped += 1;
            return;
        }
        let entry = self
            .entries
            .entry(template_fingerprint)
            .or_insert_with(|| ProfileEntry {
                template_fingerprint,
                ..ProfileEntry::default()
            });
        if warm {
            entry.warm_solves += 1;
            entry.warm_nanos += nanos;
        } else {
            entry.cold_solves += 1;
            entry.cold_nanos += nanos;
            if factors_seen {
                entry.miss_evicted += 1;
            } else if template_seen {
                entry.miss_component_changed += 1;
            } else {
                entry.miss_new += 1;
            }
        }
    }

    /// Every entry, ascending by template fingerprint.
    pub fn entries(&self) -> Vec<ProfileEntry> {
        self.entries.values().cloned().collect()
    }

    /// Solves that could not be attributed because the entry capacity was
    /// exhausted.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Forgets everything — entries, drop count and the seen-fingerprint
    /// recall sets (a measurement boundary, mirroring `EngineStats::reset`).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dropped = 0;
        self.seen_factors.clear();
        self.seen_templates.clear();
    }
}

/// The full profile served by the `QueryProfile` wire request: the ledger
/// plus the critical-path view assembled from the flight recorder. The span
/// sections (`phases`, `waterfalls`, `collapsed`) are empty when tracing is
/// disabled; the ledger sections are empty when `profile_capacity` is `0`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineProfile {
    /// Per-template ledger entries, ascending by template fingerprint.
    pub entries: Vec<ProfileEntry>,
    /// Solves the ledger could not attribute (capacity overflow).
    pub dropped: u64,
    /// Per-phase span aggregates in pipeline order.
    pub phases: Vec<PhaseAggregate>,
    /// The top-K-slowest reconstructed request waterfalls.
    pub waterfalls: Vec<RequestWaterfall>,
    /// Collapsed-stack (folded flamegraph) export of the recorded spans.
    pub collapsed: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_attributes_solves_and_classifies_misses() {
        let mut ledger = SolveLedger::new(8);
        assert!(ledger.is_enabled());
        // First cold solve for template 10 / factors 100: brand new.
        ledger.record(10, 100, false, 5_000);
        // Warm solve on the same template.
        ledger.record(10, 100, true, 1_000);
        // Cold again on factors 100: they were computed before → evicted.
        ledger.record(10, 100, false, 4_000);
        // Cold on a new factor fingerprint under the known template →
        // component changed.
        ledger.record(10, 101, false, 6_000);
        // A different template entirely → new fingerprint.
        ledger.record(20, 200, false, 2_000);
        let entries = ledger.entries();
        assert_eq!(entries.len(), 2);
        let t10 = &entries[0];
        assert_eq!(t10.template_fingerprint, 10);
        assert_eq!(t10.solves(), 4);
        assert_eq!(t10.warm_solves, 1);
        assert_eq!(t10.cold_solves, 3);
        assert_eq!(t10.warm_nanos, 1_000);
        assert_eq!(t10.cold_nanos, 15_000);
        assert_eq!(
            (t10.miss_new, t10.miss_evicted, t10.miss_component_changed),
            (1, 1, 1)
        );
        assert_eq!(entries[1].miss_new, 1);
        assert_eq!(ledger.dropped(), 0);
    }

    #[test]
    fn capacity_drops_new_templates_deterministically() {
        let mut ledger = SolveLedger::new(2);
        ledger.record(1, 1, false, 100);
        ledger.record(2, 2, false, 100);
        ledger.record(3, 3, false, 100); // over capacity: dropped
        ledger.record(1, 1, true, 50); // existing entries keep accumulating
        assert_eq!(ledger.entries().len(), 2);
        assert_eq!(ledger.dropped(), 1);
        assert_eq!(ledger.entries()[0].warm_solves, 1);
        // Zero capacity disables everything.
        let mut off = SolveLedger::new(0);
        assert!(!off.is_enabled());
        off.record(1, 1, false, 100);
        assert!(off.entries().is_empty());
        assert_eq!(off.dropped(), 0);
    }

    #[test]
    fn clear_is_a_measurement_boundary() {
        let mut ledger = SolveLedger::new(4);
        ledger.record(1, 1, false, 100);
        ledger.clear();
        assert!(ledger.entries().is_empty());
        // The recall sets reset too: the same solve is `new` again, not
        // `evicted` — post-reset classification matches a fresh engine.
        ledger.record(1, 1, false, 100);
        assert_eq!(ledger.entries()[0].miss_new, 1);
        assert_eq!(ledger.entries()[0].miss_evicted, 0);
    }

    #[test]
    fn merge_entries_matches_on_fingerprint_and_stays_sorted() {
        let mut dst = vec![
            ProfileEntry {
                template_fingerprint: 10,
                warm_solves: 1,
                ..ProfileEntry::default()
            },
            ProfileEntry {
                template_fingerprint: 30,
                cold_solves: 2,
                ..ProfileEntry::default()
            },
        ];
        let src = vec![
            ProfileEntry {
                template_fingerprint: 10,
                warm_solves: 4,
                ..ProfileEntry::default()
            },
            ProfileEntry {
                template_fingerprint: 20,
                miss_new: 1,
                ..ProfileEntry::default()
            },
        ];
        merge_entries(&mut dst, &src);
        let fingerprints: Vec<u64> = dst.iter().map(|e| e.template_fingerprint).collect();
        assert_eq!(fingerprints, vec![10, 20, 30]);
        assert_eq!(dst[0].warm_solves, 5);
        assert_eq!(dst[1].miss_new, 1);
    }
}
