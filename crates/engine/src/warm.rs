//! Component-wise, warm-startable LP factor solving.
//!
//! The LP relaxation of an SVGIC instance separates exactly across the
//! connected components of its social graph: no coupling term crosses a
//! component boundary, so the factors of each component can be solved
//! independently and concatenated. That makes component solutions perfect
//! warm-start currency for the dynamic scenario — a Join/Leave only changes
//! the components the churning shopper touches, and every other component's
//! sub-instance is *bit-identical* to one solved before.
//!
//! [`solve_factors_warm`] exploits this: it splits the instance into
//! components, fingerprints each component's sub-instance, reuses cached
//! component factors on fingerprint match, and solves only the rest. Because
//! a reused solution is the verbatim output of the same deterministic solver
//! on the same subproblem, the warm path is a **pure optimization**: factors
//! (and therefore served configurations) are byte-identical with and without
//! the cache. This is the property the engine's warm/cold digest-equality
//! tests and the `churn-heavy` bench pin down.
//!
//! (The LP crate additionally offers a *seeded* warm start —
//! [`svgic_lp::solve_min_coupling_warm`] — which projects a prior fractional
//! solution onto the new feasible region and re-optimises only the dirty
//! neighbourhood. It is cheaper still for changed components, but as a
//! single-start ascent it may land on a different local optimum, so the
//! engine's digest-stable serving path does not use it.)

use std::sync::Arc;

use svgic_algorithms::factors::{solve_relaxation, RelaxationOptions};
use svgic_algorithms::UtilityFactors;
use svgic_core::{SvgicInstance, UserIdx};

use crate::cache::FactorCache;
use crate::fingerprint::instance_fingerprint;

/// What a component-wise factor solve did.
#[derive(Clone, Debug)]
pub struct WarmOutcome {
    /// The assembled factors over the whole instance.
    pub factors: Arc<UtilityFactors>,
    /// Number of social-graph components the instance splits into.
    pub components: usize,
    /// Components whose factors were reused from the warm cache.
    pub reused: usize,
}

impl WarmOutcome {
    /// Components that had to be solved from scratch.
    pub fn solved(&self) -> usize {
        self.components - self.reused
    }

    /// Whether any component was warm-reused.
    pub fn warm(&self) -> bool {
        self.reused > 0
    }
}

/// Connected components of the instance's social graph, as sorted user-index
/// lists ordered by smallest member — a deterministic partition of
/// `0..num_users()` (isolated shoppers are singleton components). Delegates
/// to [`svgic_graph::SocialGraph::connected_components`], which guarantees
/// exactly this ordering.
pub fn social_components(instance: &SvgicInstance) -> Vec<Vec<UserIdx>> {
    instance.graph().connected_components()
}

/// How a component cache participates in a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheMode {
    /// Look cached components up and insert the newly solved ones (the warm
    /// path).
    Reuse,
    /// Skip lookups but insert the fresh solutions (a forced cold solve that
    /// still refreshes the cache).
    Refresh,
}

/// Solves the instance's LP factors component by component.
///
/// With `cache: Some((.., CacheMode::Reuse))`, each component's sub-instance
/// fingerprint is first looked up and the solved components are inserted back
/// (the warm path); `CacheMode::Refresh` skips lookups but still inserts;
/// `None` neither reads nor writes any cache (the cold path). All paths
/// produce **identical factors** — the cache only skips recomputation of
/// subproblems it has seen verbatim.
pub fn solve_factors_warm(
    instance: &Arc<SvgicInstance>,
    options: &RelaxationOptions,
    mut cache: Option<(&mut FactorCache, CacheMode)>,
) -> WarmOutcome {
    // Looks one component's sub-instance up in the warm cache (solving and
    // inserting on miss); returns the factors and whether they were reused.
    let resolve = |sub: &Arc<SvgicInstance>,
                   cache: &mut Option<(&mut FactorCache, CacheMode)>|
     -> (Arc<UtilityFactors>, bool) {
        let fingerprint = instance_fingerprint(sub);
        let looked_up = match cache.as_mut() {
            Some((cache, CacheMode::Reuse)) => cache.get(fingerprint),
            _ => None,
        };
        match looked_up {
            Some(cached) => (cached, true),
            None => {
                let solved = Arc::new(solve_relaxation(sub, options));
                if let Some((cache, _)) = cache.as_mut() {
                    cache.insert(fingerprint, Arc::clone(&solved));
                }
                (solved, false)
            }
        }
    };

    let components = social_components(instance);
    let n = instance.num_users();
    let m = instance.num_items();

    // Single component spanning the whole instance (the common connected
    // case): the component's factors *are* the instance's factors — return
    // the Arc as-is instead of copying the matrix through `from_aggregate`.
    // The component cache may still know the instance as a fragment of a
    // larger population seen earlier, so the lookup happens either way.
    if components.len() == 1 {
        let (factors, was_reused) = resolve(instance, &mut cache);
        return WarmOutcome {
            factors,
            components: 1,
            reused: usize::from(was_reused),
        };
    }

    let mut aggregate = vec![0.0f64; n * m];
    let mut scaled_objective = 0.0f64;
    let mut reused = 0usize;
    let num_components = components.len();

    for component in &components {
        let sub = Arc::new(instance.restrict_users(component));
        let (factors, was_reused) = resolve(&sub, &mut cache);
        reused += usize::from(was_reused);
        scaled_objective += factors.scaled_objective;
        for (row, &user) in component.iter().enumerate() {
            for item in 0..m {
                aggregate[user * m + item] = factors.aggregate(row, item);
            }
        }
    }

    let backend = options.backend;
    let factors = Arc::new(UtilityFactors::from_aggregate(
        instance,
        aggregate,
        scaled_objective,
        backend,
    ));
    WarmOutcome {
        factors,
        components: num_components,
        reused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;

    #[test]
    fn components_partition_the_population() {
        let instance = running_example();
        let components = social_components(&instance);
        let mut seen: Vec<UserIdx> = components.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..instance.num_users()).collect::<Vec<_>>());
        for component in &components {
            assert!(component.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn restricted_population_fragments_into_components() {
        // The running example's social graph is connected; dropping the right
        // shopper must split the rest (or at least never lose anyone).
        let instance = running_example();
        for drop in 0..instance.num_users() {
            let keep: Vec<UserIdx> = (0..instance.num_users()).filter(|&u| u != drop).collect();
            let restricted = instance.restrict_users(&keep);
            let components = social_components(&restricted);
            let total: usize = components.iter().map(Vec::len).sum();
            assert_eq!(total, keep.len());
        }
    }

    #[test]
    fn warm_and_cold_factors_are_identical() {
        let instance = Arc::new(running_example().restrict_users(&[0, 1, 3]));
        let options = RelaxationOptions::default();
        let cold = solve_factors_warm(&instance, &options, None);
        let mut cache = FactorCache::new(16);
        let first = solve_factors_warm(&instance, &options, Some((&mut cache, CacheMode::Reuse)));
        let second = solve_factors_warm(&instance, &options, Some((&mut cache, CacheMode::Reuse)));
        assert_eq!(first.reused, 0);
        assert_eq!(second.reused, second.components, "everything reused");
        for u in 0..instance.num_users() {
            for c in 0..instance.num_items() {
                assert_eq!(cold.factors.aggregate(u, c), first.factors.aggregate(u, c));
                assert_eq!(cold.factors.aggregate(u, c), second.factors.aggregate(u, c));
            }
        }
        assert_eq!(
            cold.factors.scaled_objective,
            second.factors.scaled_objective
        );
    }

    #[test]
    fn component_fingerprints_are_stable_across_supersets() {
        // The same component reached through different population restrictions
        // must fingerprint identically — that is what makes component reuse
        // fire across membership churn.
        let base = running_example();
        let a = base.restrict_users(&[0, 1, 2]);
        let b = base
            .restrict_users(&[0, 1, 2, 3])
            .restrict_users(&[0, 1, 2]);
        assert_eq!(instance_fingerprint(&a), instance_fingerprint(&b));
    }

    #[test]
    fn objective_sums_to_the_whole_instance_bound() {
        // Factors solved component-wise carry the summed scaled objective,
        // which must equal the whole-instance LP bound (the LP separates).
        let base = running_example();
        // Drop a user to (possibly) fragment the graph; either way the
        // whole-instance exact solve and the component-wise solve agree.
        let instance = Arc::new(base.restrict_users(&[0, 2, 3]));
        let options = RelaxationOptions {
            backend: svgic_algorithms::LpBackend::ExactSimplex,
            ..RelaxationOptions::default()
        };
        let componentwise = solve_factors_warm(&instance, &options, None);
        let whole = solve_relaxation(&instance, &options);
        assert!(
            (componentwise.factors.scaled_objective - whole.scaled_objective).abs() < 1e-6,
            "componentwise {} vs whole {}",
            componentwise.factors.scaled_objective,
            whole.scaled_objective
        );
    }
}
