//! A fixed-size `std::thread` worker pool.
//!
//! Jobs are boxed closures; results travel back through whatever channel the
//! closure captured. The pool is deliberately dumb — all ordering and
//! determinism guarantees live in the engine's dispatch logic, which assigns
//! deterministic seeds per job and applies results in session order, so the
//! pool's scheduling cannot influence served configurations.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads consuming jobs from a shared queue.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (`0` means one per available core).
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|cores| cores.get())
                .unwrap_or(1)
        } else {
            workers
        };
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = channel();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("svgic-engine-worker-{index}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = receiver.lock().expect("worker queue poisoned");
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // queue closed: shut down
                        }
                    })
                    .expect("failed to spawn engine worker")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues a job.
    pub fn execute(&self, job: Job) {
        self.sender
            .as_ref()
            .expect("pool already shut down")
            .send(job)
            .expect("worker queue closed");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..64 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn zero_means_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.workers() >= 1);
    }
}
