//! A fixed-size `std::thread` worker pool with per-worker queues.
//!
//! Jobs are boxed closures; results travel back through whatever channel the
//! closure captured. Every worker owns a private queue: [`WorkerPool::execute_on`]
//! pins a job to a worker (the engine's session-affinity sharding — shard `s`
//! always runs on worker `s % workers`, so per-shard state is never contended),
//! while [`WorkerPool::execute`] round-robins unpinned jobs. The pool is
//! deliberately dumb — all ordering and determinism guarantees live in the
//! engine's dispatch logic, which assigns deterministic seeds per job and
//! applies results in session order, so the pool's scheduling cannot influence
//! served configurations.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads, each consuming its own job queue.
#[derive(Debug)]
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    next: AtomicUsize,
}

impl WorkerPool {
    /// Spawns `workers` threads (`0` means one per available core).
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|cores| cores.get())
                .unwrap_or(1)
        } else {
            workers
        };
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let (sender, receiver): (Sender<Job>, Receiver<Job>) = channel();
            senders.push(sender);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("svgic-engine-worker-{index}"))
                    .spawn(move || {
                        while let Ok(job) = receiver.recv() {
                            job();
                        }
                        // Queue closed: shut down.
                    })
                    .expect("failed to spawn engine worker"),
            );
        }
        WorkerPool {
            senders,
            handles,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues a job on a specific worker's queue (`worker` is taken modulo
    /// the pool size). Jobs pinned to the same worker run in submission
    /// order, which is what makes per-shard state single-threaded.
    pub fn execute_on(&self, worker: usize, job: Job) {
        let slot = worker % self.senders.len();
        self.senders[slot].send(job).expect("worker queue closed");
    }

    /// Enqueues an unpinned job, round-robining across workers.
    pub fn execute(&self, job: Job) {
        // lint: allow(relaxed-store, round-robin ticket counter; only fair distribution, not ordering, depends on it)
        let slot = self.next.fetch_add(1, Ordering::Relaxed);
        self.execute_on(slot, job);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_all_jobs() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..64 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn pinned_jobs_on_one_worker_run_in_submission_order() {
        let pool = WorkerPool::new(3);
        let (tx, rx) = channel();
        for i in 0..32u32 {
            let tx = tx.clone();
            pool.execute_on(1, Box::new(move || tx.send(i).unwrap()));
        }
        let order: Vec<u32> = (0..32).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(order, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn worker_index_wraps() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = channel();
        let tx2 = tx.clone();
        pool.execute_on(7, Box::new(move || tx2.send(7u32).unwrap()));
        pool.execute_on(8, Box::new(move || tx.send(8u32).unwrap()));
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![7, 8]);
    }

    #[test]
    fn zero_means_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.workers() >= 1);
    }
}
