//! LRU-bounded cache of LP utility factors, keyed by instance fingerprint.
//!
//! The LP relaxation dominates solve cost; sessions whose (population,
//! catalogue, λ) state revisits a previously solved instance — or that share a
//! template with another session — skip it entirely. Entries are
//! [`Arc`]-shared so cached factors can be handed to worker threads without
//! copying the `n × m` matrix.

use std::collections::HashMap;
use std::sync::Arc;

use svgic_algorithms::UtilityFactors;

/// An LRU map from instance fingerprint to shared utility factors.
#[derive(Debug)]
pub struct FactorCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<u64, (Arc<UtilityFactors>, u64)>,
}

impl FactorCache {
    /// A cache holding at most `capacity` factor sets (`capacity == 0` means
    /// caching is disabled).
    pub fn new(capacity: usize) -> Self {
        FactorCache {
            capacity,
            clock: 0,
            entries: HashMap::new(),
        }
    }

    /// Number of cached factor sets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up factors by fingerprint, refreshing recency on hit.
    pub fn get(&mut self, fingerprint: u64) -> Option<Arc<UtilityFactors>> {
        self.clock += 1;
        let clock = self.clock;
        self.entries
            .get_mut(&fingerprint)
            .map(|(factors, touched)| {
                *touched = clock;
                Arc::clone(factors)
            })
    }

    /// Bytes held by the cached factor matrices plus per-entry map overhead
    /// — what this cache costs to keep warm (shared `Arc` payloads are
    /// attributed to every holder; see `crate::mem` for the convention).
    pub fn footprint_bytes(&self) -> u64 {
        let entry = std::mem::size_of::<(u64, (Arc<UtilityFactors>, u64))>() as u64
            + svgic_obs::mem::MAP_ENTRY_OVERHEAD_BYTES;
        // lint: allow(hash-iter, summation is commutative; iteration order cannot change the total)
        self.entries
            .values()
            .map(|(factors, _)| crate::mem::factors_bytes(factors) + entry)
            .sum()
    }

    /// Inserts factors, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, fingerprint: u64, factors: Arc<UtilityFactors>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&fingerprint) {
            // Tie-break equal `touched` stamps on the fingerprint so the
            // victim never depends on HashMap iteration order. With a tie,
            // `min_by_key` keeps the first minimum it visits — RandomState
            // order — and which entry survives would then differ across
            // replicas, skewing their warm/cold split. The (touched,
            // fingerprint) key is total, so eviction is reproducible.
            // lint: allow(hash-iter, full scan minimized by the total (touched, fingerprint) key; order-independent)
            if let Some((&oldest, _)) = self
                .entries
                .iter()
                .min_by_key(|(&fp, (_, touched))| (*touched, fp))
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(fingerprint, (factors, self.clock));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_algorithms::factors::solve_relaxation_with;
    use svgic_algorithms::LpBackend;
    use svgic_core::example::running_example;

    fn factors() -> Arc<UtilityFactors> {
        Arc::new(solve_relaxation_with(
            &running_example(),
            LpBackend::ExactSimplex,
        ))
    }

    #[test]
    fn hit_after_insert() {
        let mut cache = FactorCache::new(4);
        assert!(cache.get(7).is_none());
        cache.insert(7, factors());
        assert!(cache.get(7).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = FactorCache::new(2);
        let shared = factors();
        cache.insert(1, Arc::clone(&shared));
        cache.insert(2, Arc::clone(&shared));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.get(1).is_some());
        cache.insert(3, shared);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn reinsert_at_capacity_refreshes_recency_without_growing() {
        // The duplicate-fingerprint path: re-inserting a resident key while
        // the cache is full must (a) not evict anything, (b) not grow `len`
        // past capacity, and (c) count as a recency touch.
        let mut cache = FactorCache::new(2);
        let shared = factors();
        cache.insert(1, Arc::clone(&shared));
        cache.insert(2, Arc::clone(&shared));
        assert_eq!(cache.len(), 2);
        // Re-insert 1 (now the LRU entry): len stays at capacity, both keys
        // stay resident.
        cache.insert(1, Arc::clone(&shared));
        assert_eq!(cache.len(), 2);
        // The re-insert refreshed 1's recency, so 2 is now the LRU entry and
        // the next insert evicts it — not 1.
        cache.insert(3, shared);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_some(), "re-inserted key must be retained");
        assert!(cache.get(2).is_none(), "stale key must be the one evicted");
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn eviction_tie_breaks_on_fingerprint() {
        // Equal `touched` stamps cannot arise through the public API today
        // (every op bumps the clock), but the eviction key must stay total
        // anyway: build tied stamps directly and check the victim is the
        // smallest fingerprint, not whichever entry RandomState yields first.
        let shared = factors();
        let mut cache = FactorCache {
            capacity: 3,
            clock: 5,
            entries: HashMap::new(),
        };
        for fp in [9, 4, 7] {
            cache.entries.insert(fp, (Arc::clone(&shared), 5));
        }
        cache.insert(1, shared);
        assert_eq!(cache.len(), 3);
        assert!(cache.get(4).is_none(), "smallest tied fingerprint evicted");
        assert!(cache.get(7).is_some());
        assert!(cache.get(9).is_some());
        assert!(cache.get(1).is_some());
    }

    #[test]
    fn reinsert_replaces_the_stored_factors() {
        let mut cache = FactorCache::new(2);
        let first = factors();
        let second = factors();
        cache.insert(7, Arc::clone(&first));
        cache.insert(7, Arc::clone(&second));
        assert_eq!(cache.len(), 1);
        let got = cache.get(7).expect("resident");
        assert!(
            Arc::ptr_eq(&got, &second),
            "re-insert must replace the stored value"
        );
    }

    #[test]
    fn footprint_counts_matrices_and_entry_overhead() {
        let mut cache = FactorCache::new(4);
        assert_eq!(cache.footprint_bytes(), 0);
        let shared = factors();
        let matrix = crate::mem::factors_bytes(&shared);
        cache.insert(1, Arc::clone(&shared));
        cache.insert(2, shared);
        let footprint = cache.footprint_bytes();
        // Two entries, each one full matrix plus bounded per-entry overhead.
        assert!(footprint >= 2 * matrix, "{footprint} vs {matrix}");
        assert!(footprint <= 2 * (matrix + 64), "{footprint} vs {matrix}");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = FactorCache::new(0);
        cache.insert(1, factors());
        assert!(cache.get(1).is_none());
        assert!(cache.is_empty());
    }
}
