//! LRU-bounded cache of LP utility factors, keyed by instance fingerprint.
//!
//! The LP relaxation dominates solve cost; sessions whose (population,
//! catalogue, λ) state revisits a previously solved instance — or that share a
//! template with another session — skip it entirely. Entries are
//! [`Arc`]-shared so cached factors can be handed to worker threads without
//! copying the `n × m` matrix.

use std::collections::HashMap;
use std::sync::Arc;

use svgic_algorithms::UtilityFactors;

/// An LRU map from instance fingerprint to shared utility factors.
#[derive(Debug)]
pub struct FactorCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<u64, (Arc<UtilityFactors>, u64)>,
}

impl FactorCache {
    /// A cache holding at most `capacity` factor sets (`capacity == 0` means
    /// caching is disabled).
    pub fn new(capacity: usize) -> Self {
        FactorCache {
            capacity,
            clock: 0,
            entries: HashMap::new(),
        }
    }

    /// Number of cached factor sets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up factors by fingerprint, refreshing recency on hit.
    pub fn get(&mut self, fingerprint: u64) -> Option<Arc<UtilityFactors>> {
        self.clock += 1;
        let clock = self.clock;
        self.entries
            .get_mut(&fingerprint)
            .map(|(factors, touched)| {
                *touched = clock;
                Arc::clone(factors)
            })
    }

    /// Inserts factors, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, fingerprint: u64, factors: Arc<UtilityFactors>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&fingerprint) {
            if let Some((&oldest, _)) = self.entries.iter().min_by_key(|(_, (_, touched))| *touched)
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(fingerprint, (factors, self.clock));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_algorithms::factors::solve_relaxation_with;
    use svgic_algorithms::LpBackend;
    use svgic_core::example::running_example;

    fn factors() -> Arc<UtilityFactors> {
        Arc::new(solve_relaxation_with(
            &running_example(),
            LpBackend::ExactSimplex,
        ))
    }

    #[test]
    fn hit_after_insert() {
        let mut cache = FactorCache::new(4);
        assert!(cache.get(7).is_none());
        cache.insert(7, factors());
        assert!(cache.get(7).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = FactorCache::new(2);
        let shared = factors();
        cache.insert(1, Arc::clone(&shared));
        cache.insert(2, Arc::clone(&shared));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.get(1).is_some());
        cache.insert(3, shared);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = FactorCache::new(0);
        cache.insert(1, factors());
        assert!(cache.get(1).is_none());
        assert!(cache.is_empty());
    }
}
