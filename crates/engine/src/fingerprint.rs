//! Structural fingerprints of [`SvgicInstance`]s.
//!
//! The factor cache is keyed by a 64-bit FNV-1a hash over everything the LP
//! relaxation depends on: dimensions, `λ`, the full preference matrix, the
//! per-edge social utilities and the edge list itself. Two instances with the
//! same fingerprint produce the same [`svgic_algorithms::UtilityFactors`]
//! (up to the backend's determinism, which all backends in this workspace
//! guarantee), so cached factors can be reused across re-solves *and across
//! sessions* spawned from a shared template.

use svgic_core::SvgicInstance;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a hasher over 64-bit words.
#[derive(Clone, Copy, Debug)]
pub struct Fnv(u64);

impl Fnv {
    /// Fresh hasher.
    pub fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    /// Absorbs one word.
    #[inline]
    pub fn write_u64(&mut self, word: u64) {
        let mut hash = self.0;
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            hash ^= (word >> shift) & 0xFF;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        self.0 = hash;
    }

    /// Absorbs an `f64` by bit pattern (`-0.0` normalized to `0.0`).
    #[inline]
    pub fn write_f64(&mut self, value: f64) {
        let normalized = if value == 0.0 { 0.0 } else { value };
        self.write_u64(normalized.to_bits());
    }

    /// Final hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

/// Fingerprints everything the LP relaxation reads from `instance`.
pub fn instance_fingerprint(instance: &SvgicInstance) -> u64 {
    let mut hasher = Fnv::new();
    let (n, m, k) = (
        instance.num_users(),
        instance.num_items(),
        instance.num_slots(),
    );
    hasher.write_u64(n as u64);
    hasher.write_u64(m as u64);
    hasher.write_u64(k as u64);
    hasher.write_f64(instance.lambda());
    for u in 0..n {
        for &p in instance.preference_row(u) {
            hasher.write_f64(p);
        }
    }
    for (e, &(u, v)) in instance.graph().edges().iter().enumerate() {
        hasher.write_u64(((u as u64) << 32) | v as u64);
        for c in 0..m {
            hasher.write_f64(instance.social_by_edge(e, c));
        }
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;

    #[test]
    fn fingerprint_is_stable() {
        let a = running_example();
        let b = running_example();
        assert_eq!(instance_fingerprint(&a), instance_fingerprint(&b));
    }

    #[test]
    fn fingerprint_sees_lambda() {
        let a = running_example();
        let b = a.with_lambda(0.25).unwrap();
        assert_ne!(instance_fingerprint(&a), instance_fingerprint(&b));
    }

    #[test]
    fn fingerprint_sees_population() {
        let a = running_example();
        let b = a.restrict_users(&[0, 1, 2]);
        assert_ne!(instance_fingerprint(&a), instance_fingerprint(&b));
    }
}
