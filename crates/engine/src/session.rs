//! Per-session live state.
//!
//! A session owns the shopping group's *full* instance (every shopper who may
//! ever be present, the full item universe), the currently active catalogue
//! and `λ`, the present population, the queue of unapplied events, and the
//! last served solution. The derived *base instance* — full population
//! restricted to the active catalogue at the current `λ` — is what the LP
//! factors are computed over; its fingerprint keys the shared factor cache.

use std::sync::Arc;

use svgic_algorithms::UtilityFactors;
use svgic_core::{Configuration, ItemIdx, SvgicInstance, UserIdx};

use crate::api::{ConfigurationView, SessionEvent, SessionId};
use crate::fingerprint::instance_fingerprint;

/// The last solution served for a session.
#[derive(Clone, Debug)]
pub struct Served {
    /// Configuration over restricted indices (`present` × `catalog`).
    pub configuration: Configuration,
    /// Original user indices the configuration covers.
    pub present: Vec<UserIdx>,
    /// Original item indices of the active catalogue at solve time.
    pub catalog: Vec<ItemIdx>,
    /// SAVG utility of the configuration.
    pub utility: f64,
    /// LP bound associated with the factors used.
    pub lp_bound: f64,
    /// Whether `lp_bound` is tight (LP was solved on exactly this restricted
    /// instance) rather than the loose full-population bound.
    pub tight: bool,
}

/// Live state of one session.
#[derive(Debug)]
pub struct SessionState {
    /// The session's id.
    pub id: SessionId,
    /// Full instance as provided at creation (all shoppers, all items).
    /// `Arc`-shared with `base` until catalogue or λ diverge.
    pub full: Arc<SvgicInstance>,
    /// Active catalogue (sorted original item indices).
    pub catalog: Vec<ItemIdx>,
    /// Current trade-off weight.
    pub lambda: f64,
    /// Derived base instance: full population × active catalogue at `lambda`.
    /// `Arc`-shared so flush dispatch can hand it to worker jobs without
    /// copying the utility matrices.
    pub base: Arc<SvgicInstance>,
    /// Fingerprint of `base` (factor-cache key for incremental solves).
    pub base_fingerprint: u64,
    /// Present shoppers (sorted original user indices).
    pub present: Vec<UserIdx>,
    /// Submitted-but-unapplied events, in arrival order.
    pub pending: Vec<SessionEvent>,
    /// Last served solution, if the session has ever been solved.
    pub served: Option<Served>,
    /// Base seed for randomized rounding; combined with `generation`.
    pub seed: u64,
    /// Number of completed solves.
    pub generation: u64,
    /// Applied events since the last full LP solve.
    pub events_since_full: usize,
    /// Total events applied over the session's lifetime.
    pub lifetime_events: u64,
    /// The fractional LP factors the last solve used, kept for
    /// session-affine warm starts: when the next solve needs the same
    /// factor fingerprint (the common case for incremental re-rounds, whose
    /// fingerprint is the stable `base_fingerprint`), they are reused without
    /// touching any shared cache. The variable-index map from these
    /// full-population factor rows to the present shoppers is `present`
    /// itself — row `i` of a sliced solve is `present[i]`.
    pub last_factors: Option<Arc<UtilityFactors>>,
    /// Fingerprint the `last_factors` were computed for.
    pub last_factor_fingerprint: Option<u64>,
}

/// A session's complete transferable state, as produced by
/// [`crate::Engine::export_session`] and consumed by
/// [`crate::Engine::import_session`].
///
/// This is the unit of **live migration**: everything a session is — full
/// instance, active catalogue and λ, present population, unapplied events,
/// the last served solution, the rounding seed and generation — plus its
/// **warm capital**, the LP factors of the last solve and their fingerprint.
/// Importing on another engine continues the session exactly where it left
/// off: solve seeds derive from `(seed, generation)` and factors are
/// byte-identical wherever they are computed, so served configurations are
/// independent of which engine hosts the session. The receiving engine's
/// session-affine reuse layer picks the carried factors up directly, so a
/// migrated session keeps its warm-start behaviour without touching the
/// destination's (cold) caches.
#[derive(Clone, Debug)]
pub struct SessionExport {
    /// Full instance (all shoppers, all items).
    pub full: Arc<SvgicInstance>,
    /// Active catalogue (sorted original item indices).
    pub catalog: Vec<ItemIdx>,
    /// Current trade-off weight.
    pub lambda: f64,
    /// Present shoppers (sorted original user indices).
    pub present: Vec<UserIdx>,
    /// Submitted-but-unapplied events, in arrival order.
    pub pending: Vec<SessionEvent>,
    /// Last served solution, if any.
    pub served: Option<Served>,
    /// Base rounding seed.
    pub seed: u64,
    /// Completed solves.
    pub generation: u64,
    /// Applied events since the last full LP solve.
    pub events_since_full: usize,
    /// Total events applied over the session's lifetime.
    pub lifetime_events: u64,
    /// Warm capital: factors of the last solve, if any.
    pub last_factors: Option<Arc<UtilityFactors>>,
    /// Fingerprint the `last_factors` were computed for.
    pub last_factor_fingerprint: Option<u64>,
}

impl SessionExport {
    /// Whether the export carries reusable LP factors (the warm capital a
    /// migration preserves and a node crash loses).
    pub fn has_warm_capital(&self) -> bool {
        self.last_factors.is_some()
    }
}

impl SessionState {
    /// Creates the state (does not solve). `present` must be sorted/deduped
    /// and within bounds; the caller validates.
    pub fn new(id: SessionId, full: SvgicInstance, present: Vec<UserIdx>, seed: u64) -> Self {
        let catalog: Vec<ItemIdx> = (0..full.num_items()).collect();
        let lambda = full.lambda();
        let full = Arc::new(full);
        let base = Arc::clone(&full);
        let base_fingerprint = instance_fingerprint(&base);
        SessionState {
            id,
            full,
            catalog,
            lambda,
            base,
            base_fingerprint,
            present,
            pending: Vec::new(),
            served: None,
            seed,
            generation: 0,
            events_since_full: 0,
            lifetime_events: 0,
            last_factors: None,
            last_factor_fingerprint: None,
        }
    }

    /// Consumes the state into its transferable form (the id stays behind —
    /// the importing engine assigns its own).
    pub fn into_export(self) -> SessionExport {
        SessionExport {
            full: self.full,
            catalog: self.catalog,
            lambda: self.lambda,
            present: self.present,
            pending: self.pending,
            served: self.served,
            seed: self.seed,
            generation: self.generation,
            events_since_full: self.events_since_full,
            lifetime_events: self.lifetime_events,
            last_factors: self.last_factors,
            last_factor_fingerprint: self.last_factor_fingerprint,
        }
    }

    /// Clones the state into its transferable form without consuming it —
    /// the replication path ([`crate::api::EngineRequest::SnapshotSession`]):
    /// the session keeps serving while the copy travels to a standby. Cheap
    /// relative to a solve: the full instance is `Arc`-shared, so only the
    /// catalogue/population/pending vectors and the served solution clone.
    pub fn to_export(&self) -> SessionExport {
        SessionExport {
            full: Arc::clone(&self.full),
            catalog: self.catalog.clone(),
            lambda: self.lambda,
            present: self.present.clone(),
            pending: self.pending.clone(),
            served: self.served.clone(),
            seed: self.seed,
            generation: self.generation,
            events_since_full: self.events_since_full,
            lifetime_events: self.lifetime_events,
            last_factors: self.last_factors.clone(),
            last_factor_fingerprint: self.last_factor_fingerprint,
        }
    }

    /// Rebuilds a live state from an export under a new local id. The base
    /// instance and its fingerprint are recomputed from (full, catalogue, λ)
    /// — a pure function of the exported fields, so the fingerprint (and with
    /// it every cache key and warm-start decision) is identical on any host.
    pub fn from_export(id: SessionId, export: SessionExport) -> Self {
        let mut state = SessionState {
            id,
            base: Arc::clone(&export.full),
            base_fingerprint: 0,
            full: export.full,
            catalog: export.catalog,
            lambda: export.lambda,
            present: export.present,
            pending: export.pending,
            served: export.served,
            seed: export.seed,
            generation: export.generation,
            events_since_full: export.events_since_full,
            lifetime_events: export.lifetime_events,
            last_factors: export.last_factors,
            last_factor_fingerprint: export.last_factor_fingerprint,
        };
        state.rebuild_base();
        state
    }

    /// Rebuilds `base` (and its fingerprint) after a catalogue or λ change,
    /// sharing `full` when nothing actually diverges and copying at most once.
    pub fn rebuild_base(&mut self) {
        let full_catalog = self.catalog.len() == self.full.num_items();
        let same_lambda = self.lambda == self.full.lambda();
        self.base = match (full_catalog, same_lambda) {
            (true, true) => Arc::clone(&self.full),
            (true, false) => Arc::new(
                self.full
                    .with_lambda(self.lambda)
                    .expect("lambda validated at submit time"),
            ),
            (false, _) => {
                let mut restricted = self.full.restrict_items(&self.catalog);
                if !same_lambda {
                    restricted = restricted
                        .with_lambda(self.lambda)
                        .expect("lambda validated at submit time");
                }
                Arc::new(restricted)
            }
        };
        self.base_fingerprint = instance_fingerprint(&self.base);
    }

    /// Rounding seed for the next solve; changes every generation but is
    /// independent of scheduling/thread timing, keeping the engine
    /// deterministic under a fixed seed.
    pub fn next_solve_seed(&self) -> u64 {
        self.seed
            ^ (self
                .generation
                .wrapping_add(1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The served view (an empty configuration when never solved or dormant).
    pub fn view(&self) -> ConfigurationView {
        match &self.served {
            Some(served) => ConfigurationView {
                session: self.id,
                present: served.present.clone(),
                catalog: served.catalog.clone(),
                configuration: served.configuration.clone(),
                utility: served.utility,
                lp_bound: served.lp_bound,
                staleness: self.pending.len(),
                generation: self.generation,
            },
            None => ConfigurationView {
                session: self.id,
                present: Vec::new(),
                catalog: self.catalog.clone(),
                configuration: Configuration::from_flat(0, self.full.num_slots(), Vec::new()),
                utility: 0.0,
                lp_bound: 0.0,
                staleness: self.pending.len(),
                generation: self.generation,
            },
        }
    }

    /// Relative gap `(bound - utility) / bound` of the served solution, only
    /// when the bound is tight (loose bounds would over-trigger the policy).
    pub fn relative_gap(&self) -> Option<f64> {
        self.served.as_ref().and_then(|served| {
            if served.tight && served.lp_bound > 0.0 {
                Some(((served.lp_bound - served.utility) / served.lp_bound).max(0.0))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;

    #[test]
    fn new_session_covers_everything() {
        let full = running_example();
        let n = full.num_users();
        let state = SessionState::new(SessionId(1), full, (0..n).collect(), 42);
        assert_eq!(state.catalog.len(), state.full.num_items());
        assert_eq!(state.present.len(), n);
        assert!(state.served.is_none());
        assert_eq!(state.view().staleness, 0);
    }

    #[test]
    fn rebuild_base_tracks_catalog_and_lambda() {
        let full = running_example();
        let mut state = SessionState::new(SessionId(1), full, vec![0, 1], 7);
        let original = state.base_fingerprint;
        state.catalog = vec![0, 1, 2];
        state.lambda = 0.25;
        state.rebuild_base();
        assert_ne!(state.base_fingerprint, original);
        assert_eq!(state.base.num_items(), 3);
        assert!((state.base.lambda() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn export_import_roundtrip_preserves_state_and_fingerprint() {
        let full = running_example();
        let mut state = SessionState::new(SessionId(3), full, vec![0, 1, 2], 99);
        state.catalog = vec![0, 1, 2, 3];
        state.lambda = 0.3;
        state.rebuild_base();
        state.generation = 5;
        state.events_since_full = 2;
        state.lifetime_events = 11;
        let fingerprint = state.base_fingerprint;
        let next_seed = state.next_solve_seed();
        let export = state.into_export();
        assert!(!export.has_warm_capital(), "never solved: no factors");
        let restored = SessionState::from_export(SessionId(77), export);
        assert_eq!(restored.id, SessionId(77), "importer assigns the id");
        assert_eq!(restored.base_fingerprint, fingerprint);
        assert_eq!(restored.present, vec![0, 1, 2]);
        assert_eq!(restored.catalog, vec![0, 1, 2, 3]);
        assert_eq!(restored.generation, 5);
        assert_eq!(restored.events_since_full, 2);
        assert_eq!(restored.lifetime_events, 11);
        assert_eq!(
            restored.next_solve_seed(),
            next_seed,
            "solve seeds are host-independent"
        );
    }

    #[test]
    fn snapshot_matches_destructive_export_and_leaves_session_live() {
        let full = running_example();
        let mut state = SessionState::new(SessionId(5), full, vec![0, 1], 13);
        state.generation = 2;
        state.lifetime_events = 4;
        let snapshot = state.to_export();
        assert_eq!(state.id, SessionId(5), "session stays live");
        let export = state.into_export();
        assert_eq!(snapshot.present, export.present);
        assert_eq!(snapshot.catalog, export.catalog);
        assert_eq!(snapshot.generation, export.generation);
        assert_eq!(snapshot.lifetime_events, export.lifetime_events);
        assert_eq!(snapshot.seed, export.seed);
    }

    #[test]
    fn solve_seeds_differ_per_generation() {
        let full = running_example();
        let mut state = SessionState::new(SessionId(1), full, vec![0], 7);
        let first = state.next_solve_seed();
        state.generation += 1;
        assert_ne!(first, state.next_solve_seed());
    }
}
