//! Typed request/response surface of the engine.
//!
//! Every interaction with [`crate::Engine`] is expressible as an
//! [`EngineRequest`] handled by [`crate::Engine::handle`], which makes the
//! engine trivially embeddable behind any transport (an RPC layer, a command
//! log, a fuzzer). Convenience methods on `Engine` wrap the same paths.

use svgic_core::extensions::DynamicEvent;
use svgic_core::{Configuration, ItemIdx, SvgicInstance, UserIdx};

use crate::session::SessionExport;
use crate::stats::StatsSnapshot;

/// Opaque identifier of a live session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// An event submitted against a live session.
///
/// [`DynamicEvent`] joins/leaves are the paper's §5 dynamic scenario; the two
/// extra variants cover online catalogue churn and re-tuning of the
/// preference/social trade-off `λ` without tearing the session down.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionEvent {
    /// A shopper joins or leaves the group (paper extension F).
    Membership(DynamicEvent),
    /// Replaces the active catalogue with the given subset of the session's
    /// full item universe (original item indices, deduplicated, `≥ k` items).
    SetCatalog(Vec<ItemIdx>),
    /// Re-tunes the preference/social trade-off weight `λ ∈ [0, 1]`.
    RetuneLambda(f64),
}

/// Parameters for opening a session.
#[derive(Clone, Debug)]
pub struct CreateSession {
    /// The group's full instance: every shopper that may ever be present and
    /// the full item universe.
    pub instance: SvgicInstance,
    /// Shoppers present at session start (original user indices). Empty means
    /// "everyone".
    pub initial_present: Vec<UserIdx>,
    /// Base seed for this session's randomized rounding.
    pub seed: u64,
}

/// A request against the engine.
///
/// The first five variants are the per-session data plane. The remaining
/// variants complete the surface so that *everything* a driver or a cluster
/// router does to an engine — flushing the batch clock, reading or resetting
/// counters, draining and adopting sessions for live migration, probing the
/// engine's shape — is expressible as one request, which is what makes the
/// engine servable behind a wire protocol (`svgic-net`) without side
/// channels.
#[derive(Clone, Debug)]
pub enum EngineRequest {
    /// Opens a session and schedules its initial solve (boxed: the payload
    /// carries a whole [`SvgicInstance`], far larger than the other variants).
    CreateSession(Box<CreateSession>),
    /// Appends an event to a session's pending queue.
    SubmitEvent(SessionId, SessionEvent),
    /// Reads the last served configuration (possibly stale).
    QueryConfiguration(SessionId),
    /// Flushes the session's pending events and forces a *full* LP re-solve.
    ForceResolve(SessionId),
    /// Closes a session and drops its state.
    CloseSession(SessionId),
    /// Applies every session's pending events in one batched dispatch
    /// ([`crate::Engine::flush`]). Not counted as a request — the flush
    /// clock belongs to the driver, not to traffic accounting.
    Flush,
    /// Reads a point-in-time snapshot of the engine counters.
    QueryStats,
    /// Resets the engine counters (sessions and caches stay) — the warmup
    /// measurement boundary.
    ResetStats,
    /// Drains a session into its transferable [`SessionExport`] form — the
    /// outbound half of a live migration.
    ExportSession(SessionId),
    /// Adopts an exported session under a fresh local id — the inbound half
    /// of a live migration (boxed: carries a whole instance).
    ImportSession(Box<SessionExport>),
    /// Probes the engine's shape and occupancy ([`EngineInfo`]).
    Describe,
    /// Reads the engine's exported metric series — the same ordered
    /// `(name, value)` list `StatsSnapshot::metrics()` produces locally, so
    /// remote scrapers (`loadgen metrics --connect`) need no snapshot codec
    /// knowledge to plot a node.
    QueryMetrics,
    /// Reads the engine's telemetry ring — the per-tick
    /// [`TelemetrySample`](svgic_obs::TelemetrySample) time series — so
    /// remote nodes' history lands in cluster reports and
    /// `loadgen --trace-out` counter tracks.
    QueryTelemetry,
    /// Reads the engine's profile — the per-template cost-attribution
    /// ledger plus the critical path assembled from the flight recorder
    /// (phase aggregates, top-K-slowest request waterfalls, collapsed-stack
    /// export) — behind `loadgen profile --connect`.
    QueryProfile,
    /// Clones a live session into its transferable [`SessionExport`] form
    /// *without* draining it — the replication half of warm standby: the
    /// session keeps serving while a copy travels to its ring-successor.
    /// Answered with [`EngineResponse::SessionExported`], like the
    /// destructive [`EngineRequest::ExportSession`].
    SnapshotSession(SessionId),
    /// Stores a standby replica under a cluster-assigned key. Replicas are
    /// passive payload — they are not sessions, are never solved, and die
    /// with the node holding them (which is what makes the failure
    /// semantics honest). A later put under the same key overwrites.
    PutStandby(u64, Box<SessionExport>),
    /// Removes and returns the standby replica stored under a key (`None`
    /// when absent). Promotion and discard are the same operation: the
    /// router takes the replica either to import it on a surviving node or
    /// to drop a stale copy.
    TakeStandby(u64),
    /// Simulates a node crash: wipes every session, standby replica, cache
    /// and counter, returning the engine to its freshly-constructed state
    /// (worker pool kept). A remote server that handled `Crash` is
    /// indistinguishable from a newly spawned node, which is what lets the
    /// cluster kill and re-join *processes* it cannot actually fork.
    Crash,
}

/// The engine's shape and current occupancy, as answered to
/// [`EngineRequest::Describe`]. Remote drivers use this where in-process
/// callers would read `Engine::workers()` / `session_count()` directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineInfo {
    /// Worker threads the engine resolved (`0` configs resolve to one per
    /// core, so this is never zero).
    pub workers: usize,
    /// Session shards.
    pub shards: usize,
    /// Live sessions right now.
    pub sessions: usize,
    /// Events queued engine-wide awaiting the next flush.
    pub pending_events: usize,
}

/// A view of a session's currently served solution.
#[derive(Clone, Debug)]
pub struct ConfigurationView {
    /// The session.
    pub session: SessionId,
    /// Shoppers the configuration covers, as original user indices;
    /// `configuration` user `i` is `present[i]`.
    pub present: Vec<UserIdx>,
    /// Active catalogue, as original item indices; `configuration` item `c`
    /// is `catalog[c]`.
    pub catalog: Vec<ItemIdx>,
    /// The served SAVG k-configuration (over restricted indices).
    pub configuration: Configuration,
    /// SAVG utility of the served configuration.
    pub utility: f64,
    /// LP upper bound associated with the factors that produced it (for
    /// incremental solves this is the full-population bound, hence loose).
    pub lp_bound: f64,
    /// Number of submitted-but-unapplied events.
    pub staleness: usize,
    /// How many solves this session has gone through.
    pub generation: u64,
}

/// A successful response.
#[derive(Clone, Debug)]
pub enum EngineResponse {
    /// The session was created and initially solved.
    SessionCreated(ConfigurationView),
    /// The event was queued; payload is the session's pending-event count.
    EventAccepted {
        /// The session the event was queued against.
        session: SessionId,
        /// Pending events for that session after queueing.
        pending: usize,
    },
    /// The current (possibly stale) configuration.
    Configuration(ConfigurationView),
    /// The session was re-solved; the view is fresh.
    Resolved(ConfigurationView),
    /// The session was closed.
    SessionClosed {
        /// The closed session.
        session: SessionId,
        /// Events it processed over its lifetime.
        lifetime_events: u64,
    },
    /// The batch flush completed.
    Flushed,
    /// The engine counters (boxed: the snapshot carries per-shard vectors).
    Stats(Box<StatsSnapshot>),
    /// The counters were reset.
    StatsReset,
    /// The drained session state (boxed: carries a whole instance).
    SessionExported(Box<SessionExport>),
    /// The imported session's fresh local id.
    SessionImported(SessionId),
    /// The engine's shape and occupancy.
    Description(EngineInfo),
    /// The engine's exported metric series, in `StatsSnapshot::metrics()`
    /// order.
    Metrics(Vec<(String, f64)>),
    /// The engine's telemetry ring, oldest sample first.
    Telemetry(Vec<svgic_obs::TelemetrySample>),
    /// The engine's profile (boxed: carries ledger entries, waterfalls and
    /// the collapsed-stack text).
    Profile(Box<crate::profile::EngineProfile>),
    /// The standby replica was stored.
    StandbyStored,
    /// The standby replica under the requested key, removed from the store
    /// (`None` when no replica was held; boxed: carries a whole instance).
    StandbyTaken(Option<Box<SessionExport>>),
    /// The engine wiped itself back to its freshly-constructed state.
    Crashed,
}

/// Why a request was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// The session id is not live.
    UnknownSession(SessionId),
    /// The event refers to users/items outside the session's universe or
    /// would leave the session unsolvable (e.g. catalogue smaller than `k`).
    InvalidEvent(String),
    /// The `CreateSession` payload is unusable.
    InvalidSession(String),
    /// The request never reached (or never returned from) the engine: an IO
    /// failure, a malformed frame, or a protocol mismatch on a remote
    /// transport. The in-process engine never returns this variant.
    Transport(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownSession(id) => write!(f, "unknown {id}"),
            EngineError::InvalidEvent(msg) => write!(f, "invalid event: {msg}"),
            EngineError::InvalidSession(msg) => write!(f, "invalid session: {msg}"),
            EngineError::Transport(msg) => write!(f, "transport: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}
