//! Byte-level memory accounting for engine state.
//!
//! Implements [`MemoryFootprint`] (see `svgic_obs::mem` for the accounting
//! convention) across everything long-lived the engine holds: session
//! states, their pending-event queues, served solutions, transferable
//! exports (the cluster router's shadow instances), and the per-shard
//! factor caches. Every footprint is computed **arithmetically from
//! dimensions** — `n`, `m`, `|E|`, queue lengths — in O(1) per structure
//! (O(labels) when an instance carries item labels), never by walking
//! matrix data, so `Engine::stats` can refresh the `mem_*` gauges at
//! snapshot time without touching the serve path.
//!
//! Shared [`Arc`] payloads (a base instance aliasing `full`, factors held
//! by both a session and a cache) are attributed to every holder:
//! capacity accounting answers "what does it cost to hold this state",
//! not "what does the allocator report". The aggregate is pinned within
//! ±15% of an independently computed deep size in
//! `tests/mem_accounting.rs`.

use std::sync::Arc;

use svgic_algorithms::UtilityFactors;
use svgic_core::SvgicInstance;
use svgic_obs::mem::{vec_footprint, MAP_ENTRY_OVERHEAD_BYTES, VEC_HEADER_BYTES};
use svgic_obs::MemoryFootprint;

use crate::api::SessionEvent;
use crate::session::{Served, SessionExport, SessionState};

/// Machine word (`usize`, `f64`, and every index type in the workspace).
const WORD: u64 = 8;

/// Heap bytes of one [`SvgicInstance`]: the `n × m` preference and
/// `|E| × m` social matrices, the graph (edge list, both adjacency lists,
/// the edge-lookup map), the friend-pair index, and item labels when
/// present.
pub fn instance_bytes(instance: &SvgicInstance) -> u64 {
    let n = instance.num_users() as u64;
    let m = instance.num_items() as u64;
    let e = instance.graph().num_edges() as u64;
    // pref (n × m) + tau (|E| × m), both f64.
    let matrices = (n * m + e * m) * WORD;
    // edges: Vec<(usize, usize)>; out_adj/in_adj: Vec<Vec<(usize, usize)>>
    // (an outer header per node plus one pair per edge each); edge_lookup:
    // HashMap<(usize, usize), usize>.
    let graph = e * 2 * WORD
        + 2 * (n * VEC_HEADER_BYTES + e * 2 * WORD)
        + e * (3 * WORD + MAP_ENTRY_OVERHEAD_BYTES);
    // FriendPair is {u, v, edges: Vec<EdgeIdx>} = 40 bytes inline; each
    // graph edge appears in exactly one pair's edge list.
    let pairs = instance.friend_pairs().len() as u64 * (2 * WORD + VEC_HEADER_BYTES) + e * WORD;
    let labels = instance
        .item_labels()
        .map(|labels| {
            labels
                .iter()
                .map(|label| VEC_HEADER_BYTES + label.len() as u64)
                .sum()
        })
        .unwrap_or(0);
    matrices + graph + pairs + labels
}

/// Heap bytes of one [`UtilityFactors`]: the `n × m` aggregate matrix.
pub fn factors_bytes(factors: &UtilityFactors) -> u64 {
    (factors.num_users() * factors.num_items()) as u64 * WORD
}

impl MemoryFootprint for Served {
    /// The served configuration's `n × k` assignment plus the present and
    /// catalogue index vectors frozen at solve time.
    fn footprint_bytes(&self) -> u64 {
        vec_footprint::<usize>(self.configuration.num_users() * self.configuration.num_slots())
            + vec_footprint::<usize>(self.present.len())
            + vec_footprint::<usize>(self.catalog.len())
    }
}

/// Heap bytes of a pending-event queue: the queue's own header, the inline
/// enum rows, and the catalogue payloads `SetCatalog` events carry (header
/// included — at typical queue depths the headers are a real fraction of
/// the cost, so a header-blind count drifts outside the ±15% envelope).
/// An empty queue prices at zero: `Vec::new` owns no heap.
pub fn events_bytes(events: &[SessionEvent]) -> u64 {
    if events.is_empty() {
        return 0;
    }
    let payload: u64 = events
        .iter()
        .map(|event| match event {
            SessionEvent::SetCatalog(items) => {
                VEC_HEADER_BYTES + vec_footprint::<usize>(items.len())
            }
            _ => 0,
        })
        .sum();
    VEC_HEADER_BYTES + vec_footprint::<SessionEvent>(events.len()) + payload
}

/// A session's footprint split the way the `mem_*` gauges split: state
/// (instances, index vectors, warm factors), pending queue, and served
/// solution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionFootprint {
    /// Instances (full, plus base when it diverged), present/catalogue
    /// vectors, and carried warm factors.
    pub session_bytes: u64,
    /// The pending-event queue.
    pub pending_bytes: u64,
    /// The served solution, if any.
    pub served_bytes: u64,
}

impl SessionFootprint {
    /// Sum of the three parts.
    pub fn total(&self) -> u64 {
        self.session_bytes + self.pending_bytes + self.served_bytes
    }
}

/// Splits one live session into the gauge categories. The base instance
/// counts only when it actually diverged from `full` (they alias through
/// one `Arc` otherwise).
pub fn session_footprint(state: &SessionState) -> SessionFootprint {
    let mut session_bytes = instance_bytes(&state.full)
        + vec_footprint::<usize>(state.catalog.len())
        + vec_footprint::<usize>(state.present.len());
    if !Arc::ptr_eq(&state.full, &state.base) {
        session_bytes += instance_bytes(&state.base);
    }
    if let Some(factors) = &state.last_factors {
        session_bytes += factors_bytes(factors);
    }
    SessionFootprint {
        session_bytes,
        pending_bytes: events_bytes(&state.pending),
        served_bytes: state
            .served
            .as_ref()
            .map(MemoryFootprint::footprint_bytes)
            .unwrap_or(0),
    }
}

impl MemoryFootprint for SessionState {
    fn footprint_bytes(&self) -> u64 {
        session_footprint(self).total()
    }
}

impl MemoryFootprint for SessionExport {
    /// What holding this export costs — the cluster router's shadow copy
    /// of a session weighs this much per replica.
    fn footprint_bytes(&self) -> u64 {
        let mut bytes = instance_bytes(&self.full)
            + vec_footprint::<usize>(self.catalog.len())
            + vec_footprint::<usize>(self.present.len())
            + events_bytes(&self.pending);
        if let Some(served) = &self.served {
            bytes += served.footprint_bytes();
        }
        if let Some(factors) = &self.last_factors {
            bytes += factors_bytes(factors);
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SessionId;
    use svgic_core::example::running_example;

    #[test]
    fn instance_bytes_scale_with_dimensions() {
        let instance = running_example();
        let bytes = instance_bytes(&instance);
        let n = instance.num_users() as u64;
        let m = instance.num_items() as u64;
        let e = instance.graph().num_edges() as u64;
        // At minimum the two utility matrices are accounted.
        assert!(bytes >= (n * m + e * m) * 8, "{bytes}");
        // Restricting items shrinks the footprint.
        let restricted = instance.restrict_items(&[0, 1, 2]);
        assert!(instance_bytes(&restricted) < bytes);
    }

    #[test]
    fn session_footprint_tracks_divergence_and_queues() {
        let full = running_example();
        let mut state = SessionState::new(SessionId(1), full, vec![0, 1, 2], 7);
        let aliased = session_footprint(&state);
        assert!(aliased.session_bytes > 0);
        assert_eq!(aliased.pending_bytes, 0);
        assert_eq!(aliased.served_bytes, 0);
        // Diverging the base doubles the instance accounting.
        state.catalog = vec![0, 1, 2];
        state.rebuild_base();
        let diverged = session_footprint(&state);
        assert!(
            diverged.session_bytes > aliased.session_bytes,
            "{} vs {}",
            diverged.session_bytes,
            aliased.session_bytes
        );
        // Pending events weigh in, catalogue payload included.
        state.pending.push(SessionEvent::RetuneLambda(0.5));
        state
            .pending
            .push(SessionEvent::SetCatalog(vec![0, 1, 2, 3]));
        let queued = session_footprint(&state);
        assert_eq!(
            queued.pending_bytes,
            2 * VEC_HEADER_BYTES + 2 * std::mem::size_of::<SessionEvent>() as u64 + 4 * 8
        );
        assert_eq!(queued.total(), queued.session_bytes + queued.pending_bytes);
    }

    #[test]
    fn export_footprint_matches_the_live_session_shape() {
        let full = running_example();
        let state = SessionState::new(SessionId(3), full, vec![0, 1], 9);
        let live = state.footprint_bytes();
        let export = state.into_export();
        // The export drops nothing the live state held (no served/factors
        // here, so the numbers coincide exactly).
        assert_eq!(export.footprint_bytes(), live);
    }
}
